//! Online single-source shortest distances — Table 1's "distributed
//! routing algorithms" as a second vertex program for the engine.
//!
//! The program is distributed Bellman–Ford: the source holds distance 0;
//! whenever a vertex's distance improves or its out-edges change, it
//! *offers* `distance + weight` to each out-neighbor as a computational
//! message; a vertex accepts an offer that beats its current distance.
//! On a static graph this converges to exact shortest distances; on an
//! evolving graph the current distances are the approximation whose
//! freshness depends on backlog, exactly like the rank program.
//!
//! **Monotonicity caveat** (the KickStarter problem the paper's
//! introduction cites): relaxation only ever *lowers* distances, so edge
//! removals and weight increases can leave stale, over-optimistic
//! distances behind. The partition counts such hazards
//! ([`DistancePartition::stale_hazards`]); an analyst triggers a restart
//! (re-relaxation from the source) when the count matters. This is the
//! documented trade-off, not an oversight — trimming-based repair is the
//! subject of dedicated systems (KickStarter).

use std::collections::HashMap;

use gt_core::prelude::*;
use gt_graph::HybridAdjacency;

use crate::program::Partition;

/// A distance offer: the proposing path length.
pub type DistanceOffer = f64;

#[derive(Debug, Clone, Default)]
struct VState {
    dist: Option<f64>,
    out: HybridAdjacency<f64>,
}

/// One worker's share of the online SSSP computation.
#[derive(Debug, Clone)]
pub struct DistancePartition {
    source: VertexId,
    vertices: HashMap<VertexId, VState>,
    stale_hazards: u64,
}

impl DistancePartition {
    /// A partition computing distances from `source`.
    pub fn new(source: VertexId) -> Self {
        DistancePartition {
            source,
            vertices: HashMap::new(),
            stale_hazards: 0,
        }
    }

    /// The configured source vertex.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Edge removals / weight increases seen so far — each may have left
    /// over-optimistic distances behind (restart to repair).
    pub fn stale_hazards(&self) -> u64 {
        self.stale_hazards
    }

    /// Current distance of a local vertex, if known and reached.
    pub fn distance(&self, id: VertexId) -> Option<f64> {
        self.vertices.get(&id).and_then(|s| s.dist)
    }

    fn edge_weight(state: &State) -> f64 {
        state.as_weight().unwrap_or(1.0)
    }

    fn offer_from(&self, id: VertexId, out: &mut Vec<(VertexId, DistanceOffer)>) {
        let Some(state) = self.vertices.get(&id) else {
            return;
        };
        let Some(dist) = state.dist else {
            return;
        };
        for (target, &weight) in state.out.iter() {
            out.push((target, dist + weight));
        }
    }
}

impl Partition for DistancePartition {
    type Msg = DistanceOffer;

    fn apply_event_deferred(&mut self, event: &GraphEvent, dirty: &mut Vec<VertexId>) {
        match event {
            GraphEvent::AddVertex { id, .. } => {
                let source = self.source;
                let entry = self.vertices.entry(*id).or_default();
                if *id == source {
                    entry.dist = Some(0.0);
                }
                dirty.push(*id);
            }
            GraphEvent::RemoveVertex { id } => {
                if self.vertices.remove(id).is_some() {
                    self.stale_hazards += 1;
                }
            }
            GraphEvent::AddEdge { id, state } => {
                if id.is_self_loop() {
                    return;
                }
                let weight = Self::edge_weight(state);
                let Some(vstate) = self.vertices.get_mut(&id.src) else {
                    return;
                };
                if !vstate.out.contains(id.dst) {
                    vstate.out.insert(id.dst, weight);
                    dirty.push(id.src);
                }
            }
            GraphEvent::UpdateEdge { id, state } => {
                let weight = Self::edge_weight(state);
                let Some(vstate) = self.vertices.get_mut(&id.src) else {
                    return;
                };
                let mut hazard = false;
                if let Some(slot) = vstate.out.get_mut(id.dst) {
                    if weight > *slot {
                        hazard = true;
                    }
                    *slot = weight;
                    dirty.push(id.src);
                }
                if hazard {
                    self.stale_hazards += 1;
                }
            }
            GraphEvent::RemoveEdge { id } => {
                let Some(vstate) = self.vertices.get_mut(&id.src) else {
                    return;
                };
                if vstate.out.remove(id.dst).is_some() {
                    self.stale_hazards += 1;
                }
            }
            GraphEvent::UpdateVertex { .. } => {}
        }
    }

    fn receive_deferred(
        &mut self,
        target: VertexId,
        offer: DistanceOffer,
        dirty: &mut Vec<VertexId>,
    ) {
        let Some(state) = self.vertices.get_mut(&target) else {
            return; // vertex vanished; drop the offer
        };
        if state.dist.is_none_or(|d| offer < d) {
            state.dist = Some(offer);
            dirty.push(target);
        }
    }

    fn flush_dirty(&mut self, dirty: &[VertexId], out: &mut Vec<(VertexId, DistanceOffer)>) {
        for &id in dirty {
            self.offer_from(id, out);
        }
    }

    fn purge(&mut self, removed: VertexId, out: &mut Vec<(VertexId, DistanceOffer)>) {
        let _ = out;
        for state in self.vertices.values_mut() {
            if state.out.remove(removed).is_some() {
                self.stale_hazards += 1;
            }
        }
    }

    /// Distances as the board values; unreached vertices report infinity.
    fn summary(&self) -> Vec<(VertexId, f64)> {
        self.vertices
            .iter()
            .map(|(id, s)| (*id, s.dist.unwrap_or(f64::INFINITY)))
            .collect()
    }

    fn structure(&self) -> Vec<(u64, Vec<(u64, u64)>)> {
        self.vertices
            .iter()
            .map(|(id, s)| {
                (
                    id.0,
                    s.out.iter().map(|(t, w)| (t.0, w.to_bits())).collect(),
                )
            })
            .collect()
    }
}

/// An engine running the online SSSP program on every worker.
pub type SsspEngine = crate::engine::Engine<DistancePartition>;

/// Starts an online SSSP engine from `source`.
pub fn start_sssp(
    config: crate::engine::EngineConfig,
    hub: &gt_metrics::MetricsHub,
    source: VertexId,
) -> SsspEngine {
    crate::engine::Engine::start_with(config, hub, move |_| DistancePartition::new(source))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use gt_metrics::MetricsHub;
    use std::time::Duration;

    fn add_v(id: u64) -> GraphEvent {
        GraphEvent::AddVertex {
            id: VertexId(id),
            state: State::empty(),
        }
    }

    fn add_we(s: u64, d: u64, w: f64) -> GraphEvent {
        GraphEvent::AddEdge {
            id: EdgeId::from((s, d)),
            state: State::weight(w),
        }
    }

    /// Single-partition harness mirroring the engine loop.
    fn run_events(partition: &mut DistancePartition, events: &[GraphEvent]) {
        let mut pending: Vec<(VertexId, f64)> = Vec::new();
        let mut dirty = Vec::new();
        for e in events {
            partition.apply_event_deferred(e, &mut dirty);
            partition.flush_dirty(&dirty, &mut pending);
            dirty.clear();
        }
        let mut budget = 1_000_000;
        while let Some((target, offer)) = pending.pop() {
            partition.receive_deferred(target, offer, &mut dirty);
            partition.flush_dirty(&dirty, &mut pending);
            dirty.clear();
            budget -= 1;
            assert!(budget > 0, "relaxation did not terminate");
        }
    }

    #[test]
    fn converges_to_exact_distances_on_weighted_dag() {
        let mut p = DistancePartition::new(VertexId(0));
        run_events(
            &mut p,
            &[
                add_v(0),
                add_v(1),
                add_v(2),
                add_v(3),
                add_we(0, 1, 4.0),
                add_we(0, 2, 1.0),
                add_we(2, 1, 2.0),
                add_we(1, 3, 1.0),
            ],
        );
        assert_eq!(p.distance(VertexId(0)), Some(0.0));
        assert_eq!(p.distance(VertexId(1)), Some(3.0)); // via 2
        assert_eq!(p.distance(VertexId(2)), Some(1.0));
        assert_eq!(p.distance(VertexId(3)), Some(4.0));
        assert_eq!(p.stale_hazards(), 0);
    }

    #[test]
    fn unreached_vertices_have_no_distance() {
        let mut p = DistancePartition::new(VertexId(0));
        run_events(&mut p, &[add_v(0), add_v(9)]);
        assert_eq!(p.distance(VertexId(9)), None);
        // Summary reports them as infinity.
        let summary = Partition::summary(&p);
        let nine = summary.iter().find(|(id, _)| *id == VertexId(9)).unwrap();
        assert!(nine.1.is_infinite());
    }

    #[test]
    fn weight_decrease_improves_distance_online() {
        let mut p = DistancePartition::new(VertexId(0));
        run_events(&mut p, &[add_v(0), add_v(1), add_we(0, 1, 10.0)]);
        assert_eq!(p.distance(VertexId(1)), Some(10.0));
        run_events(
            &mut p,
            &[GraphEvent::UpdateEdge {
                id: EdgeId::from((0, 1)),
                state: State::weight(2.0),
            }],
        );
        assert_eq!(p.distance(VertexId(1)), Some(2.0));
        assert_eq!(p.stale_hazards(), 0);
    }

    #[test]
    fn hazards_counted_on_removal_and_increase() {
        let mut p = DistancePartition::new(VertexId(0));
        run_events(&mut p, &[add_v(0), add_v(1), add_we(0, 1, 1.0)]);
        run_events(
            &mut p,
            &[GraphEvent::UpdateEdge {
                id: EdgeId::from((0, 1)),
                state: State::weight(5.0),
            }],
        );
        assert_eq!(p.stale_hazards(), 1);
        // Stale: still reports the old, now-optimistic distance.
        assert_eq!(p.distance(VertexId(1)), Some(1.0));
        run_events(
            &mut p,
            &[GraphEvent::RemoveEdge {
                id: EdgeId::from((0, 1)),
            }],
        );
        assert_eq!(p.stale_hazards(), 2);
    }

    #[test]
    fn engine_integration_matches_batch_bellman_ford() {
        use gt_algorithms::shortest::bellman_ford;
        use gt_graph::{CsrSnapshot, EvolvingGraph};

        // A weighted random-ish graph streamed into the distributed
        // program; compare against the batch oracle.
        let mut events: Vec<GraphEvent> = (0..40).map(add_v).collect();
        for i in 0..40u64 {
            for j in 1..=3u64 {
                let d = (i * 7 + j * 11) % 40;
                if d != i {
                    events.push(add_we(i, d, ((i + j) % 5 + 1) as f64));
                }
            }
        }

        let hub = MetricsHub::new();
        let engine = start_sssp(EngineConfig::default(), &hub, VertexId(0));
        let mut graph = EvolvingGraph::new();
        for e in &events {
            engine.ingest(e.clone());
            let _ = graph.apply_with(e, gt_graph::ApplyPolicy::Lenient);
        }
        assert!(engine.quiesce(Duration::from_secs(30)));
        let stats = engine.shutdown();

        let csr = CsrSnapshot::from_graph(&graph);
        let oracle = bellman_ford(&csr, csr.index_of(VertexId(0)).unwrap()).unwrap();
        for idx in csr.indices() {
            let id = csr.id_of(idx);
            let online = stats.ranks[&id];
            let exact = oracle.dist[idx as usize];
            if exact.is_finite() {
                assert!(
                    (online - exact).abs() < 1e-9,
                    "vertex {id}: online {online}, exact {exact}"
                );
            } else {
                assert!(online.is_infinite(), "vertex {id} should be unreached");
            }
        }
    }
}

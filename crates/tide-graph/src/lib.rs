#![warn(missing_docs)]

//! # tide-graph
//!
//! A sharded, message-passing, vertex-centric engine for online
//! computations on evolving graphs — the stand-in for **Chronograph**, the
//! paper's second system under test (§5.3.2).
//!
//! Chronograph's experiment instrumented the platform at Level 2 to
//! capture "internal queue lengths and operation throughputs of the
//! workers" while an online influence-rank computation ran against a
//! social-network stream with a pause and a doubled-rate phase. The
//! observed pathology (Figure 3d): *graph evolution and computational
//! messages compete for internal communication resources* — worker queues
//! saturate under the doubled rate and the system keeps computing long
//! after the stream has ended, yielding inaccurate results with high
//! delays.
//!
//! This engine reproduces the architecture that produces that behavior:
//!
//! * `W` worker threads, each owning a hash partition of the vertices,
//! * one unbounded FIFO mailbox per worker carrying **both** mutation
//!   events and computational messages (the shared resource),
//! * an online influence rank implemented as residual forward-push — each
//!   mutation seeds residual mass; pushes fan out as messages to neighbor
//!   owners; the computation converges to (unnormalized) PageRank when the
//!   stream quiesces,
//! * Level-2 instrumentation: per-worker queue-length gauges, operation
//!   counters, busy-time accounting, watermark latency timestamps, and a
//!   shared *result board* the workers update in-source so the harness
//!   can sample intermediate results without queueing behind the backlog.
//!
//! The engine is **programmable** like its archetype: the worker runtime
//! ([`Engine`]) is generic over a vertex program ([`Partition`]). Two
//! programs ship: the influence rank above ([`TideGraph`] =
//! `Engine<RankPartition>`) and online single-source shortest distances
//! ([`SsspEngine`]), Table 1's "distributed routing algorithms".

pub mod connector;
pub mod engine;
pub mod program;
pub mod rank;
pub mod sssp;
pub mod sut;

pub use connector::EngineConnector;
pub use engine::{
    owner, route_target, Engine, EngineConfig, EngineStats, EngineSupervisor, TideGraph,
};
pub use program::Partition;
pub use rank::RankParams;
pub use sssp::{start_sssp, DistancePartition, SsspEngine};
pub use sut::TideGraphSut;

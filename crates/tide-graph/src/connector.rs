//! The replayer connector for the engine.
//!
//! Routes replayed graph events into the worker mailboxes. The mailboxes
//! are unbounded (Chronograph ingested through Kafka, which absorbs
//! bursts), so the replayer never blocks — the stream keeps its pace and
//! the *workers* fall behind, which is precisely the experiment of
//! Figure 3d.

use std::io;
use std::sync::Arc;

use gt_core::prelude::*;
use gt_replayer::EventSink;
use gt_trace::Probe;

use crate::engine::Engine;
use crate::program::Partition;
use crate::rank::RankPartition;

/// An [`EventSink`] feeding a running [`Engine`] (defaults to the
/// influence-rank engine, [`crate::TideGraph`]).
pub struct EngineConnector<P: Partition = RankPartition> {
    engine: Arc<Engine<P>>,
    events_sent: u64,
    trace_probe: Option<Probe>,
}

impl<P: Partition> EngineConnector<P> {
    /// Wraps a shared engine handle.
    pub fn new(engine: Arc<Engine<P>>) -> Self {
        EngineConnector {
            engine,
            events_sent: 0,
            trace_probe: None,
        }
    }

    /// Attaches a Level-2 tracepoint (normally
    /// [`gt_trace::Stage::ConnectorRecv`]) stamped once per received
    /// graph event, in stream order.
    #[must_use]
    pub fn with_trace_probe(mut self, probe: Probe) -> Self {
        self.trace_probe = Some(probe);
        self
    }

    /// Graph events forwarded so far.
    pub fn events_sent(&self) -> u64 {
        self.events_sent
    }

    #[inline]
    fn stamp_recv(&self) {
        if let Some(probe) = &self.trace_probe {
            probe.stamp();
        }
    }
}

impl<P: Partition> EventSink for EngineConnector<P> {
    fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
        match entry {
            StreamEntry::Graph(event) => {
                self.stamp_recv();
                self.engine.ingest(event.clone());
                self.events_sent += 1;
            }
            // Watermarks flow into the worker mailboxes: their processing
            // time (engine marker log) vs. their emission time (replayer
            // report) measures ingestion latency under the current
            // backlog.
            StreamEntry::Marker(name) => self.engine.ingest_marker(name),
            // Control events are handled by the replayer itself.
            StreamEntry::Control(_) => {}
        }
        Ok(())
    }

    fn send_batch(&mut self, batch: &[SharedEntry]) -> io::Result<()> {
        for entry in batch {
            match SharedGraphEvent::from_entry(entry) {
                // The shared handle moves into the owner's mailbox: no
                // per-event payload clone on the batched ingest path.
                Some(event) => {
                    self.stamp_recv();
                    self.engine.ingest_shared(event);
                    self.events_sent += 1;
                }
                None => {
                    if let StreamEntry::Marker(name) = entry.as_ref() {
                        self.engine.ingest_marker(name);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, TideGraph};
    use gt_metrics::MetricsHub;
    use gt_replayer::{Replayer, ReplayerConfig};
    use std::time::Duration;

    #[test]
    fn replayer_to_engine_end_to_end() {
        let hub = MetricsHub::new();
        let engine = Arc::new(TideGraph::start(EngineConfig::default(), &hub));
        let mut connector = EngineConnector::new(Arc::clone(&engine));

        let mut stream = gt_graph::builders::ring(100);
        stream.push(StreamEntry::marker("end"));
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 50_000.0,
            ..Default::default()
        });
        let report = replayer.replay_stream(&stream, &mut connector).unwrap();
        assert_eq!(report.graph_events, 200);
        assert_eq!(connector.events_sent(), 200);

        assert!(engine.quiesce(Duration::from_secs(10)));
        drop(connector);
        let engine = Arc::try_unwrap(engine).ok().expect("sole owner");
        let stats = engine.shutdown();
        assert_eq!(stats.events, 200);
        assert_eq!(stats.ranks.len(), 100);
    }
}

//! The vertex-program abstraction.
//!
//! Chronograph-class engines are *programmable*: the platform owns
//! partitioning, mailboxes, and scheduling, while a vertex program
//! defines how mutations seed computation and how computational messages
//! update vertex state. [`Partition`] is that contract here — one
//! instance per worker, driven by the engine's mailbox loop.
//!
//! Two programs ship with the engine:
//!
//! * [`crate::rank::RankPartition`] — the online influence rank of the
//!   paper's Chronograph experiment (§5.3.2),
//! * [`crate::sssp::DistancePartition`] — online single-source shortest
//!   distances, Table 1's "distributed routing algorithms" example of a
//!   converging computation.

use gt_core::prelude::*;

/// One worker's share of a vertex-centric computation.
///
/// The engine calls the `*_deferred` hooks for every message of a
/// mailbox batch, then [`flush_dirty`](Partition::flush_dirty) once — so
/// programs can coalesce work across a batch (see
/// `EngineConfig::drain_batch`).
pub trait Partition: Send + 'static {
    /// The computational message the program exchanges between vertices.
    type Msg: Send + Clone;

    /// Ingests a locally-owned graph mutation; appends affected vertices
    /// to `dirty`. Must tolerate events referencing unknown vertices.
    fn apply_event_deferred(&mut self, event: &GraphEvent, dirty: &mut Vec<VertexId>);

    /// Ingests one computational message addressed to `target`.
    fn receive_deferred(&mut self, target: VertexId, msg: Self::Msg, dirty: &mut Vec<VertexId>);

    /// Processes the batch's dirty vertices, appending outbound messages
    /// as `(destination vertex, message)` pairs. Duplicate dirty entries
    /// must be harmless.
    fn flush_dirty(&mut self, dirty: &[VertexId], out: &mut Vec<(VertexId, Self::Msg)>);

    /// Handles the broadcast half of a (possibly remote) vertex removal:
    /// strip local references to `removed`, appending repair messages.
    fn purge(&mut self, removed: VertexId, out: &mut Vec<(VertexId, Self::Msg)>);

    /// The current per-vertex result values this partition owns — what
    /// the engine publishes on the shared result board.
    fn summary(&self) -> Vec<(VertexId, f64)>;

    /// The partition's current local out-topology, as `(vertex id,
    /// [(target id, weight bits)])` — the raw material of a
    /// [`gt_sut::StateDigest`]. Weights are captured as `f64::to_bits`
    /// so digest comparison is bit-exact; unweighted programs digest
    /// weight 1.0. Worker partitions own disjoint vertex sets, so the
    /// union of all workers' structures is the engine's full topology.
    /// The default (empty) opts a program out of digest capture.
    fn structure(&self) -> Vec<(u64, Vec<(u64, u64)>)> {
        Vec::new()
    }
}

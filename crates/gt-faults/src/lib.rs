#![warn(missing_docs)]

//! # gt-faults
//!
//! Deterministic, a-priori fault injection on graph streams (paper §3.2,
//! "Streaming Properties").
//!
//! GraphTides requires the replayer itself to provide ordered, reliable,
//! exactly-once delivery — but lets the analyst *derive* weaker streams
//! ahead of a run: "it is straightforward to modify a reliable, ordered
//! stream into an unreliable, unordered stream (e.g., by dropping or
//! duplicating arbitrary events or by shuffling partial streams)". Keeping
//! the transformation outside the replayer keeps every run deterministic
//! and exactly repeatable.
//!
//! All injectors:
//!
//! * act only on **graph events** — markers and control events stay in
//!   their relative positions so experiment phase structure survives,
//! * are **seeded** — the same `(stream, seed)` always yields the same
//!   faulty stream,
//! * compose via [`FaultPipeline`].
//!
//! ```
//! use gt_faults::{DropFaults, FaultInjector};
//! use gt_core::prelude::*;
//!
//! let stream: GraphStream = (0..100u64)
//!     .map(|i| StreamEntry::graph(GraphEvent::AddVertex {
//!         id: VertexId(i),
//!         state: State::empty(),
//!     }))
//!     .collect();
//! let faulty = DropFaults { probability: 0.2 }.inject(stream.clone(), 7);
//! assert!(faulty.len() < stream.len());
//! ```

use gt_core::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// A deterministic stream transformation.
pub trait FaultInjector {
    /// Applies the fault model. Same `(stream, seed)` in, same stream out.
    fn inject(&self, stream: GraphStream, seed: u64) -> GraphStream;

    /// A short human-readable description for logs.
    fn describe(&self) -> String;
}

/// Drops each graph event independently with the given probability
/// (models a lossy transport).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropFaults {
    /// Per-event drop probability in `[0, 1]`.
    pub probability: f64,
}

impl FaultInjector for DropFaults {
    fn inject(&self, stream: GraphStream, seed: u64) -> GraphStream {
        assert!((0.0..=1.0).contains(&self.probability));
        let mut rng = StdRng::seed_from_u64(seed);
        stream
            .into_entries()
            .into_iter()
            .filter(|entry| !(entry.is_graph() && rng.random_bool(self.probability)))
            .collect()
    }

    fn describe(&self) -> String {
        format!("drop(p={})", self.probability)
    }
}

/// Duplicates each graph event independently with the given probability;
/// the duplicate immediately follows the original (models at-least-once
/// delivery with redelivery).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DuplicateFaults {
    /// Per-event duplication probability in `[0, 1]`.
    pub probability: f64,
}

impl FaultInjector for DuplicateFaults {
    fn inject(&self, stream: GraphStream, seed: u64) -> GraphStream {
        assert!((0.0..=1.0).contains(&self.probability));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(stream.len());
        for entry in stream.into_entries() {
            let dup = entry.is_graph() && rng.random_bool(self.probability);
            if dup {
                out.push(entry.clone());
            }
            out.push(entry);
        }
        GraphStream::from_entries(out)
    }

    fn describe(&self) -> String {
        format!("duplicate(p={})", self.probability)
    }
}

/// Shuffles graph events within consecutive windows of the given size
/// ("shuffling partial streams"): ordering violations stay bounded by the
/// window, like a transport that reorders within a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShuffleWindows {
    /// Window length in graph events; must be ≥ 2 to have any effect.
    pub window: usize,
}

impl FaultInjector for ShuffleWindows {
    fn inject(&self, stream: GraphStream, seed: u64) -> GraphStream {
        assert!(self.window >= 1, "window must be at least 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = stream.into_entries();

        // Positions of graph events; shuffle their *contents* window-wise,
        // leaving markers/control events pinned.
        let graph_positions: Vec<usize> = entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.is_graph().then_some(i))
            .collect();

        let mut out = entries.clone();
        for chunk in graph_positions.chunks(self.window) {
            let mut window_entries: Vec<StreamEntry> =
                chunk.iter().map(|&i| entries[i].clone()).collect();
            window_entries.shuffle(&mut rng);
            for (&pos, entry) in chunk.iter().zip(window_entries) {
                out[pos] = entry;
            }
        }
        GraphStream::from_entries(out)
    }

    fn describe(&self) -> String {
        format!("shuffle(window={})", self.window)
    }
}

/// Delays individual graph events by a bounded number of positions: each
/// selected event swaps forward past up to `max_displacement` later graph
/// events (models per-message jitter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayFaults {
    /// Per-event delay probability in `[0, 1]`.
    pub probability: f64,
    /// Maximum forward displacement in graph-event positions (≥ 1).
    pub max_displacement: usize,
}

impl FaultInjector for DelayFaults {
    fn inject(&self, stream: GraphStream, seed: u64) -> GraphStream {
        assert!((0.0..=1.0).contains(&self.probability));
        assert!(self.max_displacement >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = stream.into_entries();
        let graph_positions: Vec<usize> = entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.is_graph().then_some(i))
            .collect();

        let mut out = entries;
        let mut k = 0usize;
        while k < graph_positions.len() {
            if rng.random_bool(self.probability) {
                let displacement = rng.random_range(1..=self.max_displacement);
                let target = (k + displacement).min(graph_positions.len().saturating_sub(1));
                // Bubble the event forward through later graph slots.
                for j in k..target {
                    out.swap(graph_positions[j], graph_positions[j + 1]);
                }
            }
            k += 1;
        }
        GraphStream::from_entries(out)
    }

    fn describe(&self) -> String {
        format!(
            "delay(p={}, max={})",
            self.probability, self.max_displacement
        )
    }
}

/// A sequence of injectors applied left to right, each with a seed derived
/// from the pipeline seed.
#[derive(Default)]
pub struct FaultPipeline {
    stages: Vec<Box<dyn FaultInjector>>,
}

impl FaultPipeline {
    /// An empty pipeline (identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage.
    #[must_use]
    pub fn then(mut self, stage: impl FaultInjector + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

/// Parses a compact CLI fault-pipeline spec into a [`FaultPipeline`].
///
/// The spec is a comma-separated list of stages applied left to right:
///
/// * `drop:P` — [`DropFaults`] with probability `P`,
/// * `dup:P` — [`DuplicateFaults`] with probability `P`,
/// * `shuffle:W` — [`ShuffleWindows`] with window `W`,
/// * `delay:P:N` — [`DelayFaults`] with probability `P` and maximum
///   displacement `N`.
///
/// `parse_pipeline("drop:0.01,dup:0.005,shuffle:64")` builds the §3.2
/// "unreliable, unordered" derivation of a reliable stream. Whitespace
/// around stages is ignored; an empty spec is an error (use no flag at
/// all for the identity pipeline).
pub fn parse_pipeline(spec: &str) -> Result<FaultPipeline, String> {
    let mut pipeline = FaultPipeline::new();
    for stage in spec.split(',') {
        let stage = stage.trim();
        if stage.is_empty() {
            return Err(format!("empty stage in fault spec {spec:?}"));
        }
        let mut parts = stage.split(':');
        let kind = parts.next().unwrap_or_default();
        let args: Vec<&str> = parts.collect();
        let prob = |s: &str| -> Result<f64, String> {
            let p: f64 = s
                .parse()
                .map_err(|_| format!("{stage:?}: {s:?} is not a probability"))?;
            if (0.0..=1.0).contains(&p) {
                Ok(p)
            } else {
                Err(format!("{stage:?}: probability {p} outside [0, 1]"))
            }
        };
        match (kind, args.as_slice()) {
            ("drop", [p]) => {
                pipeline = pipeline.then(DropFaults {
                    probability: prob(p)?,
                });
            }
            ("dup", [p]) | ("duplicate", [p]) => {
                pipeline = pipeline.then(DuplicateFaults {
                    probability: prob(p)?,
                });
            }
            ("shuffle", [w]) => {
                let window: usize = w
                    .parse()
                    .map_err(|_| format!("{stage:?}: {w:?} is not a window size"))?;
                if window < 1 {
                    return Err(format!("{stage:?}: window must be at least 1"));
                }
                pipeline = pipeline.then(ShuffleWindows { window });
            }
            ("delay", [p, n]) => {
                let max_displacement: usize = n
                    .parse()
                    .map_err(|_| format!("{stage:?}: {n:?} is not a displacement"))?;
                if max_displacement < 1 {
                    return Err(format!("{stage:?}: displacement must be at least 1"));
                }
                pipeline = pipeline.then(DelayFaults {
                    probability: prob(p)?,
                    max_displacement,
                });
            }
            _ => {
                return Err(format!(
                    "unknown fault stage {stage:?} (expected drop:P, dup:P, \
                     shuffle:W, or delay:P:N)"
                ));
            }
        }
    }
    if pipeline.is_empty() {
        return Err("fault spec has no stages".to_owned());
    }
    Ok(pipeline)
}

impl FaultInjector for FaultPipeline {
    fn inject(&self, stream: GraphStream, seed: u64) -> GraphStream {
        let mut current = stream;
        for (i, stage) in self.stages.iter().enumerate() {
            // Distinct, deterministic per-stage seeds.
            current = stage.inject(
                current,
                seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64)),
            );
        }
        current
    }

    fn describe(&self) -> String {
        let parts: Vec<String> = self.stages.iter().map(|s| s.describe()).collect();
        parts.join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vertex_stream(n: u64) -> GraphStream {
        (0..n)
            .map(|i| {
                StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                })
            })
            .collect()
    }

    fn stream_with_marker(n: u64) -> GraphStream {
        let mut s = vertex_stream(n);
        s.entries_mut()
            .insert(n as usize / 2, StreamEntry::marker("mid"));
        s
    }

    #[test]
    fn drop_is_deterministic_and_lossy() {
        let stream = vertex_stream(1_000);
        let inj = DropFaults { probability: 0.3 };
        let a = inj.inject(stream.clone(), 42);
        let b = inj.inject(stream.clone(), 42);
        assert_eq!(a, b);
        let frac = a.len() as f64 / stream.len() as f64;
        assert!((0.6..0.8).contains(&frac), "kept fraction {frac}");
        let c = inj.inject(stream, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn drop_extremes() {
        let stream = vertex_stream(50);
        assert_eq!(
            DropFaults { probability: 0.0 }.inject(stream.clone(), 1),
            stream
        );
        assert!(DropFaults { probability: 1.0 }.inject(stream, 1).is_empty());
    }

    #[test]
    fn drop_never_touches_markers() {
        let stream = stream_with_marker(100);
        let out = DropFaults { probability: 1.0 }.inject(stream, 5);
        assert_eq!(out.len(), 1);
        assert!(out.entries()[0].is_marker());
    }

    #[test]
    fn duplicate_places_copies_adjacent() {
        let stream = vertex_stream(200);
        let out = DuplicateFaults { probability: 1.0 }.inject(stream.clone(), 9);
        assert_eq!(out.len(), 400);
        for pair in out.entries().chunks(2) {
            assert_eq!(pair[0], pair[1]);
        }
        // p=0 is identity.
        assert_eq!(
            DuplicateFaults { probability: 0.0 }.inject(stream.clone(), 9),
            stream
        );
    }

    #[test]
    fn shuffle_preserves_multiset_and_markers() {
        let stream = stream_with_marker(101);
        let out = ShuffleWindows { window: 10 }.inject(stream.clone(), 3);
        assert_eq!(out.len(), stream.len());
        // Marker stays at its absolute position.
        assert!(out.entries()[50].is_marker());
        // Multiset of graph events preserved.
        let mut orig: Vec<String> = stream.graph_events().map(|e| format!("{e:?}")).collect();
        let mut shuf: Vec<String> = out.graph_events().map(|e| format!("{e:?}")).collect();
        orig.sort();
        shuf.sort();
        assert_eq!(orig, shuf);
        // And it actually reordered something.
        assert_ne!(out, stream);
    }

    #[test]
    fn shuffle_window_one_is_identity() {
        let stream = vertex_stream(20);
        assert_eq!(
            ShuffleWindows { window: 1 }.inject(stream.clone(), 0),
            stream
        );
    }

    #[test]
    fn delay_bounds_displacement() {
        let stream = vertex_stream(100);
        let out = DelayFaults {
            probability: 0.5,
            max_displacement: 3,
        }
        .inject(stream.clone(), 11);
        assert_eq!(out.len(), stream.len());
        // Every vertex id must appear within 3 + accumulated drift of its
        // original slot; conservatively check multiset equality and bounded
        // per-event displacement for the *first* event.
        let ids: Vec<u64> = out
            .graph_events()
            .filter_map(|e| e.vertex().map(|v| v.0))
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pipeline_composes_deterministically() {
        let stream = vertex_stream(500);
        let make = || {
            FaultPipeline::new()
                .then(DuplicateFaults { probability: 0.1 })
                .then(ShuffleWindows { window: 8 })
                .then(DropFaults { probability: 0.1 })
        };
        let a = make().inject(stream.clone(), 1234);
        let b = make().inject(stream, 1234);
        assert_eq!(a, b);
        assert_eq!(
            make().describe(),
            "duplicate(p=0.1) -> shuffle(window=8) -> drop(p=0.1)"
        );
        assert_eq!(make().len(), 3);
        assert!(!make().is_empty());
    }

    #[test]
    fn parse_pipeline_builds_the_documented_stages() {
        let p = parse_pipeline("drop:0.01, dup:0.005, shuffle:64, delay:0.1:4").unwrap();
        assert_eq!(
            p.describe(),
            "drop(p=0.01) -> duplicate(p=0.005) -> shuffle(window=64) -> delay(p=0.1, max=4)"
        );
        // Parsed and hand-built pipelines agree event for event.
        let hand = FaultPipeline::new()
            .then(DropFaults { probability: 0.01 })
            .then(DuplicateFaults { probability: 0.005 })
            .then(ShuffleWindows { window: 64 })
            .then(DelayFaults {
                probability: 0.1,
                max_displacement: 4,
            });
        let stream = vertex_stream(300);
        assert_eq!(p.inject(stream.clone(), 7), hand.inject(stream, 7));
    }

    #[test]
    fn parse_pipeline_rejects_malformed_specs() {
        for bad in [
            "",
            "drop",
            "drop:1.5",
            "drop:x",
            "shuffle:0",
            "shuffle:ten",
            "delay:0.1",
            "delay:0.1:0",
            "teleport:0.5",
            "drop:0.1,,dup:0.1",
        ] {
            assert!(parse_pipeline(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let stream = vertex_stream(10);
        assert_eq!(FaultPipeline::new().inject(stream.clone(), 0), stream);
    }

    #[test]
    fn faulty_streams_apply_leniently() {
        use gt_graph::{ApplyPolicy, EvolvingGraph};
        // Build a valid stream with edges, inject heavy faults, and check a
        // lenient consumer survives with invariants intact.
        let mut stream = gt_graph::builders::ring(50);
        stream.extend(vertex_stream(20));
        let faulty = FaultPipeline::new()
            .then(DropFaults { probability: 0.3 })
            .then(DuplicateFaults { probability: 0.3 })
            .then(ShuffleWindows { window: 16 })
            .inject(stream, 99);
        let mut g = EvolvingGraph::new();
        for event in faulty.graph_events() {
            let _ = g.apply_with(event, ApplyPolicy::Lenient);
        }
        g.check_invariants().unwrap();
    }
}

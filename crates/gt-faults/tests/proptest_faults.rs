//! Property-based tests of the fault injectors' multiset invariants:
//! drops produce a sub-multiset, duplicates a super-multiset, shuffles an
//! identical multiset — and markers/control events are never touched.

use gt_core::prelude::*;
use gt_faults::{
    DelayFaults, DropFaults, DuplicateFaults, FaultInjector, FaultPipeline, ShuffleWindows,
};
use proptest::prelude::*;

fn entry_strategy() -> impl Strategy<Value = StreamEntry> {
    prop_oneof![
        8 => (0u64..50, "[a-z]{0,4}").prop_map(|(id, s)| StreamEntry::graph(
            GraphEvent::AddVertex { id: VertexId(id), state: State::new(s) }
        )),
        4 => ((0u64..50), (0u64..50)).prop_map(|(s, d)| StreamEntry::graph(
            GraphEvent::AddEdge { id: EdgeId::from((s, d)), state: State::empty() }
        )),
        1 => "[a-z]{1,6}".prop_map(StreamEntry::Marker),
        1 => (1u32..400).prop_map(|f| StreamEntry::speed(f64::from(f) / 100.0)),
    ]
}

fn sorted_graph_events(stream: &GraphStream) -> Vec<String> {
    let mut v: Vec<String> = stream.graph_events().map(|e| format!("{e:?}")).collect();
    v.sort();
    v
}

fn non_graph_entries(stream: &GraphStream) -> Vec<StreamEntry> {
    stream
        .entries()
        .iter()
        .filter(|e| !e.is_graph())
        .cloned()
        .collect()
}

fn is_sub_multiset(sub: &[String], sup: &[String]) -> bool {
    // Both sorted.
    let mut i = 0;
    for x in sub {
        while i < sup.len() && &sup[i] < x {
            i += 1;
        }
        if i >= sup.len() || &sup[i] != x {
            return false;
        }
        i += 1;
    }
    true
}

proptest! {
    #[test]
    fn drop_yields_sub_multiset(
        entries in proptest::collection::vec(entry_strategy(), 0..120),
        p in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let stream = GraphStream::from_entries(entries);
        let out = DropFaults { probability: p }.inject(stream.clone(), seed);
        prop_assert!(is_sub_multiset(
            &sorted_graph_events(&out),
            &sorted_graph_events(&stream)
        ));
        prop_assert_eq!(non_graph_entries(&out), non_graph_entries(&stream));
    }

    #[test]
    fn duplicate_yields_super_multiset(
        entries in proptest::collection::vec(entry_strategy(), 0..120),
        p in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let stream = GraphStream::from_entries(entries);
        let out = DuplicateFaults { probability: p }.inject(stream.clone(), seed);
        prop_assert!(is_sub_multiset(
            &sorted_graph_events(&stream),
            &sorted_graph_events(&out)
        ));
        prop_assert_eq!(non_graph_entries(&out), non_graph_entries(&stream));
    }

    #[test]
    fn shuffle_preserves_multiset(
        entries in proptest::collection::vec(entry_strategy(), 0..120),
        window in 1usize..20,
        seed in any::<u64>(),
    ) {
        let stream = GraphStream::from_entries(entries);
        let out = ShuffleWindows { window }.inject(stream.clone(), seed);
        prop_assert_eq!(out.len(), stream.len());
        prop_assert_eq!(sorted_graph_events(&out), sorted_graph_events(&stream));
        prop_assert_eq!(non_graph_entries(&out), non_graph_entries(&stream));
    }

    #[test]
    fn delay_preserves_multiset(
        entries in proptest::collection::vec(entry_strategy(), 0..120),
        p in 0.0f64..1.0,
        max in 1usize..10,
        seed in any::<u64>(),
    ) {
        let stream = GraphStream::from_entries(entries);
        let out = DelayFaults { probability: p, max_displacement: max }
            .inject(stream.clone(), seed);
        prop_assert_eq!(out.len(), stream.len());
        prop_assert_eq!(sorted_graph_events(&out), sorted_graph_events(&stream));
    }

    #[test]
    fn pipeline_is_deterministic(
        entries in proptest::collection::vec(entry_strategy(), 0..80),
        seed in any::<u64>(),
    ) {
        let stream = GraphStream::from_entries(entries);
        let make = || FaultPipeline::new()
            .then(DuplicateFaults { probability: 0.2 })
            .then(ShuffleWindows { window: 4 })
            .then(DropFaults { probability: 0.2 });
        prop_assert_eq!(
            make().inject(stream.clone(), seed),
            make().inject(stream, seed)
        );
    }
}

//! Property-based tests of the fault injectors' multiset invariants:
//! drops produce a sub-multiset, duplicates a super-multiset, shuffles an
//! identical multiset — and markers/control events are never touched.
//! Plus the reproducibility contract (same `(stream, seed)` → bit-identical
//! output, for every injector and pipeline composition) and the drop-count
//! expectation.

use gt_core::prelude::*;
use gt_faults::{
    DelayFaults, DropFaults, DuplicateFaults, FaultInjector, FaultPipeline, ShuffleWindows,
};
use proptest::prelude::*;

fn entry_strategy() -> impl Strategy<Value = StreamEntry> {
    prop_oneof![
        8 => (0u64..50, "[a-z]{0,4}").prop_map(|(id, s)| StreamEntry::graph(
            GraphEvent::AddVertex { id: VertexId(id), state: State::new(s) }
        )),
        4 => ((0u64..50), (0u64..50)).prop_map(|(s, d)| StreamEntry::graph(
            GraphEvent::AddEdge { id: EdgeId::from((s, d)), state: State::empty() }
        )),
        1 => "[a-z]{1,6}".prop_map(StreamEntry::Marker),
        1 => (1u32..400).prop_map(|f| StreamEntry::speed(f64::from(f) / 100.0)),
    ]
}

fn sorted_graph_events(stream: &GraphStream) -> Vec<String> {
    let mut v: Vec<String> = stream.graph_events().map(|e| format!("{e:?}")).collect();
    v.sort();
    v
}

fn non_graph_entries(stream: &GraphStream) -> Vec<StreamEntry> {
    stream
        .entries()
        .iter()
        .filter(|e| !e.is_graph())
        .cloned()
        .collect()
}

fn is_sub_multiset(sub: &[String], sup: &[String]) -> bool {
    // Both sorted.
    let mut i = 0;
    for x in sub {
        while i < sup.len() && &sup[i] < x {
            i += 1;
        }
        if i >= sup.len() || &sup[i] != x {
            return false;
        }
        i += 1;
    }
    true
}

proptest! {
    #[test]
    fn drop_yields_sub_multiset(
        entries in proptest::collection::vec(entry_strategy(), 0..120),
        p in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let stream = GraphStream::from_entries(entries);
        let out = DropFaults { probability: p }.inject(stream.clone(), seed);
        prop_assert!(is_sub_multiset(
            &sorted_graph_events(&out),
            &sorted_graph_events(&stream)
        ));
        prop_assert_eq!(non_graph_entries(&out), non_graph_entries(&stream));
    }

    #[test]
    fn duplicate_yields_super_multiset(
        entries in proptest::collection::vec(entry_strategy(), 0..120),
        p in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let stream = GraphStream::from_entries(entries);
        let out = DuplicateFaults { probability: p }.inject(stream.clone(), seed);
        prop_assert!(is_sub_multiset(
            &sorted_graph_events(&stream),
            &sorted_graph_events(&out)
        ));
        prop_assert_eq!(non_graph_entries(&out), non_graph_entries(&stream));
    }

    #[test]
    fn shuffle_preserves_multiset(
        entries in proptest::collection::vec(entry_strategy(), 0..120),
        window in 1usize..20,
        seed in any::<u64>(),
    ) {
        let stream = GraphStream::from_entries(entries);
        let out = ShuffleWindows { window }.inject(stream.clone(), seed);
        prop_assert_eq!(out.len(), stream.len());
        prop_assert_eq!(sorted_graph_events(&out), sorted_graph_events(&stream));
        prop_assert_eq!(non_graph_entries(&out), non_graph_entries(&stream));
    }

    #[test]
    fn delay_preserves_multiset(
        entries in proptest::collection::vec(entry_strategy(), 0..120),
        p in 0.0f64..1.0,
        max in 1usize..10,
        seed in any::<u64>(),
    ) {
        let stream = GraphStream::from_entries(entries);
        let out = DelayFaults { probability: p, max_displacement: max }
            .inject(stream.clone(), seed);
        prop_assert_eq!(out.len(), stream.len());
        prop_assert_eq!(sorted_graph_events(&out), sorted_graph_events(&stream));
        // Markers and control events keep their relative order even when
        // graph events are displaced around them.
        prop_assert_eq!(non_graph_entries(&out), non_graph_entries(&stream));
    }

    #[test]
    fn every_injector_is_bit_identical_for_same_stream_and_seed(
        entries in proptest::collection::vec(entry_strategy(), 0..100),
        p in 0.0f64..1.0,
        window in 1usize..20,
        max in 1usize..10,
        seed in any::<u64>(),
    ) {
        let stream = GraphStream::from_entries(entries);
        let injectors: Vec<Box<dyn FaultInjector>> = vec![
            Box::new(DropFaults { probability: p }),
            Box::new(DuplicateFaults { probability: p }),
            Box::new(ShuffleWindows { window }),
            Box::new(DelayFaults { probability: p, max_displacement: max }),
        ];
        for injector in &injectors {
            prop_assert_eq!(
                injector.inject(stream.clone(), seed),
                injector.inject(stream.clone(), seed),
                "{} must be reproducible", injector.describe()
            );
        }
    }

    #[test]
    fn pipeline_composition_is_bit_identical(
        entries in proptest::collection::vec(entry_strategy(), 0..80),
        p1 in 0.0f64..0.5,
        p2 in 0.0f64..0.5,
        window in 1usize..10,
        seed in any::<u64>(),
    ) {
        // Like `pipeline_is_deterministic` below but over *arbitrary*
        // stage parameters, and cross-checking that stage order matters
        // only through the data (two identically built pipelines agree
        // even when a third, reordered one differs).
        let stream = GraphStream::from_entries(entries);
        let make = || FaultPipeline::new()
            .then(DuplicateFaults { probability: p1 })
            .then(ShuffleWindows { window })
            .then(DropFaults { probability: p2 });
        prop_assert_eq!(
            make().inject(stream.clone(), seed),
            make().inject(stream.clone(), seed)
        );
        let reordered = FaultPipeline::new()
            .then(DropFaults { probability: p2 })
            .then(ShuffleWindows { window })
            .then(DuplicateFaults { probability: p1 });
        prop_assert_eq!(
            reordered.inject(stream.clone(), seed),
            reordered.inject(stream, seed)
        );
    }

    #[test]
    fn markers_and_controls_keep_relative_order_through_pipelines(
        entries in proptest::collection::vec(entry_strategy(), 0..100),
        p in 0.0f64..1.0,
        window in 1usize..20,
        seed in any::<u64>(),
    ) {
        let stream = GraphStream::from_entries(entries);
        let pipeline = FaultPipeline::new()
            .then(DuplicateFaults { probability: p })
            .then(DelayFaults { probability: p, max_displacement: window })
            .then(ShuffleWindows { window })
            .then(DropFaults { probability: p });
        let out = pipeline.inject(stream.clone(), seed);
        prop_assert_eq!(non_graph_entries(&out), non_graph_entries(&stream));
    }

    #[test]
    fn drop_count_matches_expectation(
        p in 0.05f64..0.95,
        seed in any::<u64>(),
    ) {
        // Each graph event is dropped by an independent Bernoulli(p)
        // draw, so the kept count is Binomial(n, 1-p): mean n(1-p),
        // sigma sqrt(n p (1-p)). A 6-sigma band keeps the deterministic
        // generated cases far from spurious failure while still catching
        // an off-by-anything in the drop rate.
        let n = 4_000u64;
        let stream: GraphStream = (0..n)
            .map(|i| StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(i),
                state: State::empty(),
            }))
            .collect();
        let out = DropFaults { probability: p }.inject(stream, seed);
        let kept = out.graph_events().count() as f64;
        let expected = n as f64 * (1.0 - p);
        let sigma = (n as f64 * p * (1.0 - p)).sqrt();
        prop_assert!(
            (kept - expected).abs() <= 6.0 * sigma,
            "kept {} of {}, expected {:.0} ± {:.0}", kept, n, expected, 6.0 * sigma
        );
    }

    #[test]
    fn pipeline_is_deterministic(
        entries in proptest::collection::vec(entry_strategy(), 0..80),
        seed in any::<u64>(),
    ) {
        let stream = GraphStream::from_entries(entries);
        let make = || FaultPipeline::new()
            .then(DuplicateFaults { probability: 0.2 })
            .then(ShuffleWindows { window: 4 })
            .then(DropFaults { probability: 0.2 });
        prop_assert_eq!(
            make().inject(stream.clone(), seed),
            make().inject(stream, seed)
        );
    }
}

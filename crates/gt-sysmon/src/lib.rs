#![warn(missing_docs)]

//! # gt-sysmon
//!
//! The **Level-0 black-box process monitor** (paper §4.3: "agnostic
//! profiling tools"): a sampler on a dedicated thread that reads
//! `/proc/<pid>/stat`, `/proc/<pid>/status`, `/proc/<pid>/io`, and the
//! host-wide `/proc/stat` at a configurable cadence and converts raw
//! jiffies and pages into derived resource series —
//!
//! * `cpu_percent` (+ `cpu_user_percent` / `cpu_sys_percent` split),
//! * `rss_bytes` and `threads`,
//! * `io_read_bytes` / `io_write_bytes` (cumulative),
//! * `ctx_voluntary` / `ctx_involuntary` context switches (cumulative),
//! * `host_cpu_percent` (whole-machine utilization),
//!
//! timestamped against the shared run [`gt_metrics::Clock`] and mirrored
//! into [`gt_metrics::MetricsHub`] gauges for live observation. Watching
//! an external pid makes this the only instrumentation a Level-0 system
//! under test needs — stream in, results out, `/proc` alongside.
//!
//! The parsing layer ([`parse`]) is pure `&str -> value` functions and
//! the reader ([`source::ProcSource`]) is injectable, so every format
//! corner is unit-testable without a live `/proc`; on non-Linux hosts the
//! monitor degrades to a typed [`SysmonError::Unavailable`] and an empty
//! series, keeping runs portable.
//!
//! ```
//! use std::sync::Arc;
//! use gt_metrics::{Clock, WallClock};
//! use gt_sysmon::{spawn, SamplerConfig};
//!
//! let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
//! let monitor = spawn(SamplerConfig::default(), clock, None);
//! // ... run the experiment ...
//! let outcome = monitor.stop();
//! // On Linux: cpu/rss series. Elsewhere: empty series + typed error.
//! assert!(outcome.error.is_some() || outcome.ticks > 0);
//! ```

use std::fmt;

pub mod parse;
pub mod sampler;
pub mod source;

pub use parse::{Derived, HostStat, PidIo, PidStat, PidStatus, Sample};
pub use sampler::{
    spawn, spawn_with_source, SamplerConfig, SysmonHandle, SysmonOutcome, SysmonSampler,
};
pub use source::{FakeProc, LiveProc, ProcFile, ProcSource};

/// Why the monitor could not observe its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SysmonError {
    /// The target's `/proc` entry cannot be read at all — non-Linux host,
    /// or the watched pid exited. Level-0 observation is best-effort by
    /// definition, so runs treat this as "no resource series", not a
    /// failure.
    Unavailable {
        /// Which target (`self` or `pid N`).
        target: String,
        /// The underlying I/O error text.
        reason: String,
    },
    /// A `/proc` file was readable but not in the expected shape.
    Parse {
        /// Which file (`pid stat`, `host stat`, …).
        file: String,
        /// What was wrong.
        reason: String,
    },
}

impl SysmonError {
    pub(crate) fn parse(file: impl Into<String>, reason: impl Into<String>) -> Self {
        SysmonError::Parse {
            file: file.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SysmonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysmonError::Unavailable { target, reason } => {
                write!(f, "target {target} unobservable: {reason}")
            }
            SysmonError::Parse { file, reason } => write!(f, "malformed {file}: {reason}"),
        }
    }
}

impl std::error::Error for SysmonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SysmonError::Unavailable {
            target: "pid 7".into(),
            reason: "No such file".into(),
        };
        assert!(e.to_string().contains("pid 7"));
        let p = SysmonError::parse("pid stat", "no comm field");
        assert!(p.to_string().contains("pid stat"));
    }
}

//! The sampling engine: per-tick derivation and the dedicated monitor
//! thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use gt_metrics::hub::Gauge;
use gt_metrics::{Clock, MetricRecord, MetricsHub};

use crate::parse::{
    derive, parse_host_stat, parse_pid_io, parse_pid_stat, parse_pid_status, Sample,
};
use crate::source::{LiveProc, ProcFile, ProcSource};
use crate::SysmonError;

/// Configuration of the Level-0 monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerConfig {
    /// Sampling cadence. The paper's "agnostic profiling tools" sampled
    /// at 1 s; the default here is 50 ms so short scaled-down runs still
    /// get a usable curve. See EXPERIMENTS.md for the overhead trade-off.
    pub cadence: Duration,
    /// Process to watch: `None` = this process (`/proc/self`), `Some` =
    /// an external system under test by pid.
    pub pid: Option<u32>,
    /// Source label on the emitted records (`sysmon` by default).
    pub source: String,
    /// Clock ticks per second for jiffy→seconds conversion (`USER_HZ`,
    /// 100 on every mainstream Linux).
    pub ticks_per_sec: f64,
    /// Page size for the `stat` RSS fallback, bytes.
    pub page_size: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            cadence: Duration::from_millis(50),
            pid: None,
            source: "sysmon".to_owned(),
            ticks_per_sec: 100.0,
            page_size: 4096,
        }
    }
}

impl SamplerConfig {
    /// Watches an external process instead of `/proc/self` (builder
    /// style).
    #[must_use]
    pub fn watching_pid(mut self, pid: u32) -> Self {
        self.pid = Some(pid);
        self
    }

    /// Sets the cadence (builder style).
    #[must_use]
    pub fn every(mut self, cadence: Duration) -> Self {
        self.cadence = cadence;
        self
    }
}

/// Hub gauges mirroring the latest derived values, for live observation
/// by other logger threads. Gauges are integers, so CPU percentages are
/// published rounded.
struct HubGauges {
    cpu_percent: Gauge,
    rss_bytes: Gauge,
    threads: Gauge,
}

impl HubGauges {
    fn register(hub: &MetricsHub, source: &str) -> Self {
        HubGauges {
            cpu_percent: hub.gauge(&format!("{source}.cpu_percent")),
            rss_bytes: hub.gauge(&format!("{source}.rss_bytes")),
            threads: hub.gauge(&format!("{source}.threads")),
        }
    }
}

/// One-process sampling state machine: reads through a [`ProcSource`],
/// keeps the previous raw sample, and turns each tick into metric
/// records. Separate from the thread driver so tests can drive ticks with
/// a manual clock and a fake `/proc`.
pub struct SysmonSampler {
    config: SamplerConfig,
    source: Box<dyn ProcSource>,
    clock: Arc<dyn Clock>,
    prev: Option<Sample>,
    gauges: Option<HubGauges>,
}

impl SysmonSampler {
    /// A sampler reading the live `/proc` per `config`.
    pub fn new(config: SamplerConfig, clock: Arc<dyn Clock>) -> Self {
        let live = match config.pid {
            Some(pid) => LiveProc::pid(pid),
            None => LiveProc::current(),
        };
        Self::with_source(config, Box::new(live), clock)
    }

    /// A sampler reading through an injected source (tests, simulations).
    pub fn with_source(
        config: SamplerConfig,
        source: Box<dyn ProcSource>,
        clock: Arc<dyn Clock>,
    ) -> Self {
        SysmonSampler {
            config,
            source,
            clock,
            prev: None,
            gauges: None,
        }
    }

    /// Mirrors the latest values into `hub` gauges named
    /// `{source}.cpu_percent` / `.rss_bytes` / `.threads` (builder
    /// style).
    #[must_use]
    pub fn with_hub(mut self, hub: &MetricsHub) -> Self {
        self.gauges = Some(HubGauges::register(hub, &self.config.source));
        self
    }

    /// Takes one raw sample. `stat` is required — a failure there means
    /// the target is unobservable (non-Linux host, pid gone) and the
    /// monitor should stop. `status`, `io`, and the host stat degrade
    /// independently.
    fn read_sample(&self) -> Result<Sample, SysmonError> {
        let stat_text =
            self.source
                .read(ProcFile::PidStat)
                .map_err(|e| SysmonError::Unavailable {
                    target: self.source.describe(),
                    reason: e.to_string(),
                })?;
        Ok(Sample {
            t_micros: self.clock.now_micros(),
            stat: parse_pid_stat(&stat_text)?,
            status: self
                .source
                .read(ProcFile::PidStatus)
                .ok()
                .and_then(|t| parse_pid_status(&t).ok()),
            io: self
                .source
                .read(ProcFile::PidIo)
                .ok()
                .and_then(|t| parse_pid_io(&t).ok()),
            host: self
                .source
                .read(ProcFile::HostStat)
                .ok()
                .and_then(|t| parse_host_stat(&t).ok()),
        })
    }

    /// Samples once and returns the records for this tick.
    ///
    /// The first tick yields only instantaneous series (RSS, threads,
    /// cumulative counters); rate series (CPU%) start with the second
    /// tick, once a delta exists.
    pub fn tick(&mut self) -> Result<Vec<MetricRecord>, SysmonError> {
        let curr = self.read_sample()?;
        let src = self.config.source.as_str();
        let mut records = Vec::with_capacity(10);

        match self.prev {
            Some(prev) => {
                if let Some(d) = derive(
                    &prev,
                    &curr,
                    self.config.ticks_per_sec,
                    self.config.page_size,
                ) {
                    let t = d.t_micros;
                    if d.counter_reset {
                        // A cumulative counter went backwards (pid reuse,
                        // proc restart): this instant's rates are clamped
                        // to zero, so mark the series as degraded instead
                        // of letting the zeros masquerade as idleness.
                        records.push(MetricRecord::text(t, src, "degradation", "counter_reset"));
                    }
                    records.push(MetricRecord::float(t, src, "cpu_percent", d.cpu_percent));
                    records.push(MetricRecord::float(
                        t,
                        src,
                        "cpu_user_percent",
                        d.cpu_user_percent,
                    ));
                    records.push(MetricRecord::float(
                        t,
                        src,
                        "cpu_sys_percent",
                        d.cpu_sys_percent,
                    ));
                    if let Some(host) = d.host_cpu_percent {
                        records.push(MetricRecord::float(t, src, "host_cpu_percent", host));
                    }
                    self.push_instantaneous(&mut records, t, &d);
                    if let Some(g) = &self.gauges {
                        g.cpu_percent.set(d.cpu_percent.round() as i64);
                        g.rss_bytes.set(d.rss_bytes as i64);
                        g.threads.set(d.threads as i64);
                    }
                }
            }
            None => {
                // No delta yet: emit what needs no previous sample.
                let page = self.config.page_size;
                let rss = curr
                    .status
                    .and_then(|s| s.vm_rss_bytes)
                    .unwrap_or(curr.stat.rss_pages * page);
                let threads = curr
                    .status
                    .and_then(|s| s.threads)
                    .unwrap_or(curr.stat.num_threads);
                records.push(MetricRecord::int(
                    curr.t_micros,
                    src,
                    "rss_bytes",
                    rss as i64,
                ));
                records.push(MetricRecord::int(
                    curr.t_micros,
                    src,
                    "threads",
                    threads as i64,
                ));
                if let Some(g) = &self.gauges {
                    g.rss_bytes.set(rss as i64);
                    g.threads.set(threads as i64);
                }
            }
        }
        self.prev = Some(curr);
        Ok(records)
    }

    fn push_instantaneous(
        &self,
        records: &mut Vec<MetricRecord>,
        t: u64,
        d: &crate::parse::Derived,
    ) {
        let src = self.config.source.as_str();
        records.push(MetricRecord::int(t, src, "rss_bytes", d.rss_bytes as i64));
        records.push(MetricRecord::int(t, src, "threads", d.threads as i64));
        if let Some(v) = d.read_bytes {
            records.push(MetricRecord::int(t, src, "io_read_bytes", v as i64));
        }
        if let Some(v) = d.write_bytes {
            records.push(MetricRecord::int(t, src, "io_write_bytes", v as i64));
        }
        if let Some(v) = d.voluntary_ctxt_switches {
            records.push(MetricRecord::int(t, src, "ctx_voluntary", v as i64));
        }
        if let Some(v) = d.nonvoluntary_ctxt_switches {
            records.push(MetricRecord::int(t, src, "ctx_involuntary", v as i64));
        }
    }
}

/// What a finished monitor hands back.
#[derive(Debug)]
pub struct SysmonOutcome {
    /// All records collected over the monitor's lifetime, in sample
    /// order.
    pub records: Vec<MetricRecord>,
    /// The error that stopped sampling early, if any. A monitor on a
    /// non-Linux host reports `Unavailable` here and an empty series —
    /// the run itself is unaffected.
    pub error: Option<SysmonError>,
    /// Number of successful sampling ticks.
    pub ticks: u64,
}

/// A running Level-0 monitor thread.
pub struct SysmonHandle {
    stop: Arc<AtomicBool>,
    join: JoinHandle<SysmonOutcome>,
}

impl SysmonHandle {
    /// Signals the thread and collects its outcome (takes one final
    /// sample first so the series covers the run end).
    pub fn stop(self) -> SysmonOutcome {
        self.stop.store(true, Ordering::Relaxed);
        self.join.join().unwrap_or(SysmonOutcome {
            records: Vec::new(),
            error: Some(SysmonError::parse("sysmon", "monitor thread panicked")),
            ticks: 0,
        })
    }
}

/// Spawns the monitor on a dedicated thread sampling at
/// `config.cadence`. `hub` (optional) receives live gauge mirrors.
///
/// On hosts without `/proc` the first tick fails, the thread parks until
/// [`SysmonHandle::stop`], and the outcome carries the typed error with
/// an empty series — runs stay portable.
pub fn spawn(
    config: SamplerConfig,
    clock: Arc<dyn Clock>,
    hub: Option<&MetricsHub>,
) -> SysmonHandle {
    let sampler = SysmonSampler::new(config.clone(), clock);
    spawn_sampler(config, sampler, hub)
}

/// [`spawn`] reading through an injected [`ProcSource`] instead of the
/// live `/proc` — the monitor-thread counterpart of
/// [`SysmonSampler::with_source`], for tests and simulated targets.
pub fn spawn_with_source(
    config: SamplerConfig,
    source: Box<dyn ProcSource>,
    clock: Arc<dyn Clock>,
    hub: Option<&MetricsHub>,
) -> SysmonHandle {
    let sampler = SysmonSampler::with_source(config.clone(), source, clock);
    spawn_sampler(config, sampler, hub)
}

fn spawn_sampler(
    config: SamplerConfig,
    mut sampler: SysmonSampler,
    hub: Option<&MetricsHub>,
) -> SysmonHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    if let Some(hub) = hub {
        sampler = sampler.with_hub(hub);
    }
    let join = std::thread::Builder::new()
        .name("gt-sysmon".into())
        .spawn(move || {
            let mut outcome = SysmonOutcome {
                records: Vec::new(),
                error: None,
                ticks: 0,
            };
            loop {
                match sampler.tick() {
                    Ok(records) => {
                        outcome.records.extend(records);
                        outcome.ticks += 1;
                    }
                    Err(e) => {
                        outcome.error = Some(e);
                        break;
                    }
                }
                if stop_flag.load(Ordering::Relaxed) {
                    return outcome;
                }
                sleep_interruptible(config.cadence, &stop_flag);
                if stop_flag.load(Ordering::Relaxed) {
                    // One final tick so the series covers the run end.
                    if let Ok(records) = sampler.tick() {
                        outcome.records.extend(records);
                        outcome.ticks += 1;
                    }
                    return outcome;
                }
            }
            // Sampling failed; stay parked so `stop` has a thread to join.
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(5));
            }
            outcome
        })
        .expect("spawn gt-sysmon thread");
    SysmonHandle { stop, join }
}

/// Sleeps `total` in short slices, returning early when `stop` is
/// raised, so large cadences don't delay run teardown.
fn sleep_interruptible(total: Duration, stop: &AtomicBool) {
    let slice = Duration::from_millis(10);
    let mut remaining = total;
    while remaining > Duration::ZERO && !stop.load(Ordering::Relaxed) {
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FakeProc;
    use gt_metrics::ManualClock;
    use gt_metrics::MetricValue;

    fn stat_line(utime: u64, stime: u64, threads: u64, rss_pages: u64) -> String {
        format!(
            "1 (gt) S 0 1 1 0 -1 0 0 0 0 0 {utime} {stime} 0 0 20 0 {threads} 0 0 0 {rss_pages} \
             0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0"
        )
    }

    fn fake_with_stat() -> (FakeProc, Arc<ManualClock>) {
        let fake = FakeProc::new();
        fake.set(ProcFile::PidStat, stat_line(0, 0, 4, 1000));
        (fake, Arc::new(ManualClock::new()))
    }

    #[test]
    fn first_tick_emits_instantaneous_only() {
        let (fake, clock) = fake_with_stat();
        let mut sampler = SysmonSampler::with_source(
            SamplerConfig::default(),
            Box::new(fake),
            clock as Arc<dyn Clock>,
        );
        let records = sampler.tick().unwrap();
        let metrics: Vec<&str> = records.iter().map(|r| r.metric.as_str()).collect();
        assert_eq!(metrics, ["rss_bytes", "threads"]);
        assert_eq!(records[0].value, MetricValue::Int(1000 * 4096));
    }

    #[test]
    fn second_tick_derives_cpu_split() {
        let (fake, clock) = fake_with_stat();
        let mut sampler = SysmonSampler::with_source(
            SamplerConfig::default(),
            Box::new(fake.clone()),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        sampler.tick().unwrap();
        // 1 s later: 30 user + 10 sys ticks at 100 Hz = 30% + 10%.
        clock.advance_secs(1.0);
        fake.set(ProcFile::PidStat, stat_line(30, 10, 4, 1200));
        let records = sampler.tick().unwrap();
        let get = |name: &str| {
            records
                .iter()
                .find(|r| r.metric == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .value
                .as_f64()
                .unwrap()
        };
        assert!((get("cpu_percent") - 40.0).abs() < 1e-9);
        assert!((get("cpu_user_percent") - 30.0).abs() < 1e-9);
        assert!((get("cpu_sys_percent") - 10.0).abs() < 1e-9);
        assert_eq!(get("rss_bytes") as u64, 1200 * 4096);
        assert_eq!(records[0].t_micros, 1_000_000);
    }

    #[test]
    fn optional_files_extend_the_series() {
        let (fake, clock) = fake_with_stat();
        fake.set(ProcFile::PidIo, "read_bytes: 111\nwrite_bytes: 222\n");
        fake.set(
            ProcFile::PidStatus,
            "VmRSS:\t2048 kB\nThreads:\t9\nvoluntary_ctxt_switches:\t5\n\
             nonvoluntary_ctxt_switches:\t2\n",
        );
        fake.set(
            ProcFile::HostStat,
            "cpu 100 0 0 900 0\ncpu0 100 0 0 900 0\n",
        );
        let mut sampler = SysmonSampler::with_source(
            SamplerConfig::default(),
            Box::new(fake.clone()),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        sampler.tick().unwrap();
        clock.advance_secs(0.5);
        fake.set(ProcFile::PidStat, stat_line(5, 5, 4, 1000));
        fake.set(
            ProcFile::HostStat,
            "cpu 150 0 0 950 0\ncpu0 150 0 0 950 0\n",
        );
        let records = sampler.tick().unwrap();
        let names: Vec<&str> = records.iter().map(|r| r.metric.as_str()).collect();
        for expected in [
            "cpu_percent",
            "host_cpu_percent",
            "rss_bytes",
            "io_read_bytes",
            "io_write_bytes",
            "ctx_voluntary",
            "ctx_involuntary",
        ] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
        // VmRSS wins over the stat fallback.
        let rss = records
            .iter()
            .find(|r| r.metric == "rss_bytes")
            .unwrap()
            .value
            .as_f64()
            .unwrap();
        assert_eq!(rss as u64, 2048 * 1024);
        // 100 busy of 200 total host ticks.
        let host = records
            .iter()
            .find(|r| r.metric == "host_cpu_percent")
            .unwrap()
            .value
            .as_f64()
            .unwrap();
        assert!((host - 50.0).abs() < 1e-9);
    }

    #[test]
    fn counter_reset_emits_degradation_marker() {
        // Regression: a /proc counter reset between ticks (pid reuse)
        // used to surface only as a silent 0% CPU sample. It must now be
        // accompanied by a typed "degradation" record.
        let (fake, clock) = fake_with_stat();
        fake.set(ProcFile::PidStat, stat_line(500, 500, 4, 1000));
        let mut sampler = SysmonSampler::with_source(
            SamplerConfig::default(),
            Box::new(fake.clone()),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        sampler.tick().unwrap();
        // The counters collapse: a fresh process now owns the pid.
        clock.advance_secs(1.0);
        fake.set(ProcFile::PidStat, stat_line(3, 1, 2, 500));
        let records = sampler.tick().unwrap();
        let degradation = records
            .iter()
            .find(|r| r.metric == "degradation")
            .expect("reset must emit a degradation record");
        assert_eq!(
            degradation.value,
            MetricValue::Text("counter_reset".to_owned())
        );
        // The clamped rates still come through (as zeros), not garbage.
        let cpu = records
            .iter()
            .find(|r| r.metric == "cpu_percent")
            .unwrap()
            .value
            .as_f64()
            .unwrap();
        assert_eq!(cpu, 0.0);
        // A subsequent well-behaved tick emits no degradation record.
        clock.advance_secs(1.0);
        fake.set(ProcFile::PidStat, stat_line(10, 5, 2, 500));
        let records = sampler.tick().unwrap();
        assert!(records.iter().all(|r| r.metric != "degradation"));
    }

    #[test]
    fn missing_stat_is_typed_unavailable() {
        let clock: Arc<dyn Clock> = Arc::new(ManualClock::new());
        let mut sampler =
            SysmonSampler::with_source(SamplerConfig::default(), Box::new(FakeProc::new()), clock);
        match sampler.tick() {
            Err(SysmonError::Unavailable { target, .. }) => assert_eq!(target, "fake"),
            other => panic!("expected Unavailable, got {other:?}"),
        }
    }

    #[test]
    fn hub_gauges_mirror_latest_values() {
        let (fake, clock) = fake_with_stat();
        let hub = MetricsHub::new();
        let mut sampler = SysmonSampler::with_source(
            SamplerConfig::default(),
            Box::new(fake.clone()),
            Arc::clone(&clock) as Arc<dyn Clock>,
        )
        .with_hub(&hub);
        sampler.tick().unwrap();
        assert_eq!(hub.gauge("sysmon.rss_bytes").get(), 1000 * 4096);
        clock.advance_secs(1.0);
        fake.set(ProcFile::PidStat, stat_line(50, 25, 6, 2000));
        sampler.tick().unwrap();
        assert_eq!(hub.gauge("sysmon.cpu_percent").get(), 75);
        assert_eq!(hub.gauge("sysmon.threads").get(), 6);
        assert_eq!(hub.gauge("sysmon.rss_bytes").get(), 2000 * 4096);
    }

    #[test]
    fn spawned_monitor_collects_and_stops() {
        let (fake, clock) = fake_with_stat();
        // Live thread, fake files: drive via a sampler-level spawn.
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let mut sampler = SysmonSampler::with_source(
            SamplerConfig::default().every(Duration::from_millis(5)),
            Box::new(fake.clone()),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let join = std::thread::spawn(move || {
            let mut records = Vec::new();
            while !stop_flag.load(Ordering::Relaxed) {
                records.extend(sampler.tick().unwrap());
                std::thread::sleep(Duration::from_millis(2));
            }
            records
        });
        for i in 1..=5u64 {
            clock.advance_secs(0.01);
            fake.set(ProcFile::PidStat, stat_line(i, i, 4, 1000 + i));
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
        let records = join.join().unwrap();
        assert!(records.iter().any(|r| r.metric == "cpu_percent"));
        assert!(records.iter().filter(|r| r.metric == "rss_bytes").count() >= 2);
    }

    /// A source that panics on every read — the monitor thread dies
    /// mid-run, which must surface as a typed error, never as a
    /// propagated panic in the harness that joins it.
    #[derive(Clone)]
    struct PanickingProc;

    impl ProcSource for PanickingProc {
        fn read(&self, _file: ProcFile) -> std::io::Result<String> {
            panic!("deliberate test panic in proc source");
        }
        fn describe(&self) -> String {
            "panicking".to_owned()
        }
    }

    #[test]
    fn panicking_source_degrades_to_a_typed_error() {
        let clock: Arc<dyn Clock> = Arc::new(ManualClock::new());
        let handle = spawn_with_source(
            SamplerConfig::default().every(Duration::from_millis(5)),
            Box::new(PanickingProc),
            clock,
            None,
        );
        std::thread::sleep(Duration::from_millis(20));
        let outcome = handle.stop();
        assert!(outcome.records.is_empty());
        assert_eq!(outcome.ticks, 0);
        let error = outcome.error.expect("panic must become a typed error");
        assert!(
            error.to_string().contains("panicked"),
            "unexpected error: {error}"
        );
    }

    #[test]
    fn spawn_with_source_samples_injected_files() {
        let (fake, clock) = fake_with_stat();
        let hub = MetricsHub::new();
        let handle = spawn_with_source(
            SamplerConfig::default().every(Duration::from_millis(2)),
            Box::new(fake.clone()),
            Arc::clone(&clock) as Arc<dyn Clock>,
            Some(&hub),
        );
        std::thread::sleep(Duration::from_millis(15));
        clock.advance_secs(1.0);
        fake.set(ProcFile::PidStat, stat_line(25, 25, 4, 1500));
        std::thread::sleep(Duration::from_millis(15));
        let outcome = handle.stop();
        assert!(outcome.error.is_none());
        assert!(outcome.ticks >= 2);
        assert!(outcome.records.iter().any(|r| r.metric == "cpu_percent"));
        // The hub gauges mirror the injected values live.
        assert_eq!(hub.gauge("sysmon.rss_bytes").get(), 1500 * 4096);
    }

    #[test]
    fn spawn_degrades_gracefully_without_proc_stat() {
        // The public spawn() path reads the live /proc; on Linux it
        // samples, elsewhere it reports Unavailable with empty records.
        let clock: Arc<dyn Clock> = Arc::new(ManualClock::new());
        let handle = spawn(
            SamplerConfig::default().every(Duration::from_millis(5)),
            clock,
            None,
        );
        std::thread::sleep(Duration::from_millis(25));
        let outcome = handle.stop();
        if outcome.error.is_some() {
            assert!(outcome.records.is_empty());
        } else {
            assert!(outcome.ticks >= 1);
            assert!(outcome.records.iter().any(|r| r.metric == "rss_bytes"));
        }
    }
}

//! Pure `/proc` text parsers and the derived-series arithmetic.
//!
//! Everything in this module is a `&str -> value` function with no I/O,
//! so every format corner (comm fields with spaces and parentheses,
//! missing optional files, kernel-version field drift) is unit-testable
//! on any OS. The live reader lives in [`crate::source`].

use crate::SysmonError;

/// Parsed subset of `/proc/<pid>/stat` (`man 5 proc`).
///
/// The `comm` field (field 2) is the executable name in parentheses and
/// may itself contain spaces and `)` characters; fields are therefore
/// counted from the *last* closing parenthesis, as every robust parser
/// must.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PidStat {
    /// CPU time spent in user mode, in clock ticks (field 14).
    pub utime_ticks: u64,
    /// CPU time spent in kernel mode, in clock ticks (field 15).
    pub stime_ticks: u64,
    /// Number of threads (field 20).
    pub num_threads: u64,
    /// Resident set size in pages (field 24).
    pub rss_pages: u64,
}

/// Parses the one-line `/proc/<pid>/stat` format.
pub fn parse_pid_stat(text: &str) -> Result<PidStat, SysmonError> {
    // comm is `(...)` and unescaped; split on the last ')'.
    let (_, rest) = text
        .rsplit_once(')')
        .ok_or_else(|| SysmonError::parse("pid stat", "no comm field"))?;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // `rest` starts at field 3 (state), so overall field N is index N - 3.
    let field = |n: usize, name: &str| -> Result<u64, SysmonError> {
        fields
            .get(n - 3)
            .ok_or_else(|| SysmonError::parse("pid stat", format!("missing field {n} ({name})")))?
            .parse::<i64>()
            .map_err(|_| SysmonError::parse("pid stat", format!("non-numeric field {n} ({name})")))
            .map(|v| v.max(0) as u64)
    };
    Ok(PidStat {
        utime_ticks: field(14, "utime")?,
        stime_ticks: field(15, "stime")?,
        num_threads: field(20, "num_threads")?,
        rss_pages: field(24, "rss")?,
    })
}

/// Parsed subset of `/proc/<pid>/status` (key-value lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PidStatus {
    /// `VmRSS` in bytes (the file reports kB).
    pub vm_rss_bytes: Option<u64>,
    /// `Threads` count.
    pub threads: Option<u64>,
    /// `voluntary_ctxt_switches` cumulative count.
    pub voluntary_ctxt_switches: Option<u64>,
    /// `nonvoluntary_ctxt_switches` cumulative count.
    pub nonvoluntary_ctxt_switches: Option<u64>,
}

/// Parses `/proc/<pid>/status`. Unknown keys are skipped; the listed keys
/// are optional because kernels and sandboxes omit some of them.
pub fn parse_pid_status(text: &str) -> Result<PidStatus, SysmonError> {
    let mut out = PidStatus::default();
    for line in text.lines() {
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        let number = || -> Option<u64> { value.split_whitespace().next()?.parse().ok() };
        match key.trim() {
            "VmRSS" => out.vm_rss_bytes = number().map(|kb| kb * 1024),
            "Threads" => out.threads = number(),
            "voluntary_ctxt_switches" => out.voluntary_ctxt_switches = number(),
            "nonvoluntary_ctxt_switches" => out.nonvoluntary_ctxt_switches = number(),
            _ => {}
        }
    }
    Ok(out)
}

/// Parsed subset of `/proc/<pid>/io` (key-value lines; requires no
/// elevated permissions for a process' own entry, but may be absent for
/// foreign pids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PidIo {
    /// Bytes actually fetched from the storage layer (`read_bytes`).
    pub read_bytes: u64,
    /// Bytes sent to the storage layer (`write_bytes`).
    pub write_bytes: u64,
}

/// Parses `/proc/<pid>/io`.
pub fn parse_pid_io(text: &str) -> Result<PidIo, SysmonError> {
    let mut out = PidIo::default();
    let mut seen = 0;
    for line in text.lines() {
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let parse = |v: &str| -> Result<u64, SysmonError> {
            v.trim()
                .parse()
                .map_err(|_| SysmonError::parse("pid io", format!("non-numeric `{}`", v.trim())))
        };
        match key.trim() {
            "read_bytes" => {
                out.read_bytes = parse(value)?;
                seen += 1;
            }
            "write_bytes" => {
                out.write_bytes = parse(value)?;
                seen += 1;
            }
            _ => {}
        }
    }
    if seen < 2 {
        return Err(SysmonError::parse(
            "pid io",
            "missing read_bytes/write_bytes",
        ));
    }
    Ok(out)
}

/// Parsed subset of host-wide `/proc/stat`: the aggregate `cpu` line and
/// the number of per-CPU lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostStat {
    /// Sum of all jiffies on the aggregate `cpu` line (all CPUs, all
    /// states, including idle).
    pub total_ticks: u64,
    /// Idle + iowait jiffies on the aggregate line.
    pub idle_ticks: u64,
    /// Number of `cpuN` lines (logical CPUs).
    pub cpus: u32,
}

/// Parses host `/proc/stat`.
pub fn parse_host_stat(text: &str) -> Result<HostStat, SysmonError> {
    let mut out = HostStat::default();
    let mut found_aggregate = false;
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let Some(label) = parts.next() else { continue };
        if label == "cpu" {
            let ticks: Vec<u64> = parts.map(|f| f.parse().unwrap_or(0)).collect();
            if ticks.len() < 4 {
                return Err(SysmonError::parse("host stat", "short aggregate cpu line"));
            }
            out.total_ticks = ticks.iter().sum();
            // Fields: user nice system idle iowait irq softirq steal ...
            out.idle_ticks = ticks[3] + ticks.get(4).copied().unwrap_or(0);
            found_aggregate = true;
        } else if label.starts_with("cpu") && label[3..].chars().all(|c| c.is_ascii_digit()) {
            out.cpus += 1;
        }
    }
    if !found_aggregate {
        return Err(SysmonError::parse("host stat", "no aggregate cpu line"));
    }
    Ok(out)
}

/// One raw sampling instant: everything read from `/proc` plus the run
/// clock. The optional parts degrade gracefully — `/proc/<pid>/io` is
/// unreadable for foreign pids without privileges, and `status` keys vary
/// by kernel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Sample {
    /// Run-relative timestamp, microseconds.
    pub t_micros: u64,
    /// Per-process scheduler stats (required).
    pub stat: PidStat,
    /// Per-process status keys (optional).
    pub status: Option<PidStatus>,
    /// Per-process I/O accounting (optional).
    pub io: Option<PidIo>,
    /// Host-wide CPU accounting (optional).
    pub host: Option<HostStat>,
}

/// Derived series for one instant, computed from a pair of consecutive
/// [`Sample`]s. Instantaneous values (RSS, threads) come from the current
/// sample; rates (CPU%) need the previous one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Derived {
    /// Run-relative timestamp, microseconds.
    pub t_micros: u64,
    /// Process CPU utilization since the previous sample, percent of one
    /// core (user + sys). 100.0 = one core fully busy.
    pub cpu_percent: f64,
    /// User-mode share of [`Self::cpu_percent`].
    pub cpu_user_percent: f64,
    /// Kernel-mode share of [`Self::cpu_percent`].
    pub cpu_sys_percent: f64,
    /// Host-wide non-idle CPU percent across all cores (0–100), when
    /// `/proc/stat` was readable in both samples.
    pub host_cpu_percent: Option<f64>,
    /// Resident set size, bytes (prefers `VmRSS` from `status`, falls
    /// back to `stat` pages × page size).
    pub rss_bytes: u64,
    /// Thread count.
    pub threads: u64,
    /// Cumulative storage-layer bytes read, when `/proc/<pid>/io` was
    /// readable.
    pub read_bytes: Option<u64>,
    /// Cumulative storage-layer bytes written.
    pub write_bytes: Option<u64>,
    /// Cumulative voluntary context switches.
    pub voluntary_ctxt_switches: Option<u64>,
    /// Cumulative involuntary context switches.
    pub nonvoluntary_ctxt_switches: Option<u64>,
    /// Whether any cumulative counter went *backwards* between the two
    /// samples (pid reuse after a restart, a proc snapshot reset, or
    /// kernel accounting wobble). The affected deltas are clamped to
    /// zero, so rates for this instant are degraded — consumers should
    /// treat them as a gap, not a measurement.
    pub counter_reset: bool,
}

/// Converts a pair of consecutive samples into the derived series.
///
/// Returns `None` when the samples are not strictly ordered in time
/// (rates would divide by zero).
pub fn derive(prev: &Sample, curr: &Sample, ticks_per_sec: f64, page_size: u64) -> Option<Derived> {
    if curr.t_micros <= prev.t_micros || ticks_per_sec <= 0.0 {
        return None;
    }
    let dt_secs = (curr.t_micros - prev.t_micros) as f64 / 1e6;
    let pct = |ticks: u64| 100.0 * (ticks as f64 / ticks_per_sec) / dt_secs;
    // Cumulative counters only ever grow for a live process; a regression
    // means the pid was reused or the source restarted. The saturating
    // diffs clamp the rates to zero (instead of underflowing into
    // astronomical values), and the regression is flagged so the sampler
    // can emit a typed degradation marker.
    let mut counter_reset = curr.stat.utime_ticks < prev.stat.utime_ticks
        || curr.stat.stime_ticks < prev.stat.stime_ticks;
    let user = pct(curr.stat.utime_ticks.saturating_sub(prev.stat.utime_ticks));
    let sys = pct(curr.stat.stime_ticks.saturating_sub(prev.stat.stime_ticks));

    let host_cpu_percent = match (prev.host, curr.host) {
        (Some(a), Some(b)) if b.total_ticks > a.total_ticks => {
            let total = (b.total_ticks - a.total_ticks) as f64;
            let idle = b.idle_ticks.saturating_sub(a.idle_ticks) as f64;
            Some(100.0 * (total - idle).max(0.0) / total)
        }
        (Some(a), Some(b)) => {
            // Host jiffies cannot stand still across a strictly ordered
            // sample pair, let alone shrink: the host stat was reset.
            counter_reset |= b.total_ticks < a.total_ticks;
            None
        }
        _ => None,
    };
    if let (Some(a), Some(b)) = (prev.io, curr.io) {
        counter_reset |= b.read_bytes < a.read_bytes || b.write_bytes < a.write_bytes;
    }
    if let (Some(a), Some(b)) = (prev.status, curr.status) {
        let regressed =
            |x: Option<u64>, y: Option<u64>| matches!((x, y), (Some(x), Some(y)) if y < x);
        counter_reset |= regressed(a.voluntary_ctxt_switches, b.voluntary_ctxt_switches)
            || regressed(a.nonvoluntary_ctxt_switches, b.nonvoluntary_ctxt_switches);
    }

    let rss_bytes = curr
        .status
        .and_then(|s| s.vm_rss_bytes)
        .unwrap_or(curr.stat.rss_pages * page_size);
    let threads = curr
        .status
        .and_then(|s| s.threads)
        .unwrap_or(curr.stat.num_threads);

    Some(Derived {
        t_micros: curr.t_micros,
        cpu_percent: user + sys,
        cpu_user_percent: user,
        cpu_sys_percent: sys,
        host_cpu_percent,
        rss_bytes,
        threads,
        read_bytes: curr.io.map(|io| io.read_bytes),
        write_bytes: curr.io.map(|io| io.write_bytes),
        voluntary_ctxt_switches: curr.status.and_then(|s| s.voluntary_ctxt_switches),
        nonvoluntary_ctxt_switches: curr.status.and_then(|s| s.nonvoluntary_ctxt_switches),
        counter_reset,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A realistic stat line whose comm contains spaces and parentheses.
    const STAT: &str = "12345 (tokio (rt) w-1) S 1 12345 12345 0 -1 4194304 9000 0 12 0 \
                        150 50 0 0 20 0 7 0 100000 210000000 2560 18446744073709551615 \
                        1 1 0 0 0 0 0 0 0 0 0 0 17 3 0 0 0 0 0";

    #[test]
    fn pid_stat_counts_from_last_paren() {
        let s = parse_pid_stat(STAT).unwrap();
        assert_eq!(s.utime_ticks, 150);
        assert_eq!(s.stime_ticks, 50);
        assert_eq!(s.num_threads, 7);
        assert_eq!(s.rss_pages, 2560);
    }

    #[test]
    fn pid_stat_rejects_malformed() {
        assert!(parse_pid_stat("no comm here").is_err());
        assert!(parse_pid_stat("1 (x) S 2 3").is_err()); // too few fields
        let bad = STAT.replace(" 150 ", " nan ");
        assert!(parse_pid_stat(&bad).is_err());
    }

    #[test]
    fn pid_status_extracts_known_keys() {
        let text = "Name:\tgt-bench\nVmPeak:\t  20000 kB\nVmRSS:\t  10240 kB\n\
                    Threads:\t9\nvoluntary_ctxt_switches:\t120\n\
                    nonvoluntary_ctxt_switches:\t7\n";
        let s = parse_pid_status(text).unwrap();
        assert_eq!(s.vm_rss_bytes, Some(10240 * 1024));
        assert_eq!(s.threads, Some(9));
        assert_eq!(s.voluntary_ctxt_switches, Some(120));
        assert_eq!(s.nonvoluntary_ctxt_switches, Some(7));
    }

    #[test]
    fn pid_status_tolerates_missing_keys() {
        let s = parse_pid_status("Name:\tx\nState:\tS (sleeping)\n").unwrap();
        assert_eq!(s, PidStatus::default());
    }

    #[test]
    fn pid_io_requires_byte_counters() {
        let text = "rchar: 100\nwchar: 200\nread_bytes: 4096\nwrite_bytes: 8192\n";
        let io = parse_pid_io(text).unwrap();
        assert_eq!(io.read_bytes, 4096);
        assert_eq!(io.write_bytes, 8192);
        assert!(parse_pid_io("rchar: 100\n").is_err());
        assert!(parse_pid_io("read_bytes: x\nwrite_bytes: 1\n").is_err());
    }

    #[test]
    fn host_stat_totals_and_cpu_count() {
        let text = "cpu  100 0 50 800 50 0 0 0 0 0\n\
                    cpu0 50 0 25 400 25 0 0 0 0 0\n\
                    cpu1 50 0 25 400 25 0 0 0 0 0\n\
                    intr 12345\nctxt 999\n";
        let h = parse_host_stat(text).unwrap();
        assert_eq!(h.total_ticks, 1000);
        assert_eq!(h.idle_ticks, 850);
        assert_eq!(h.cpus, 2);
        assert!(parse_host_stat("intr 1\n").is_err());
        assert!(parse_host_stat("cpu 1 2\n").is_err());
    }

    fn sample(t: u64, utime: u64, stime: u64, rss_pages: u64) -> Sample {
        Sample {
            t_micros: t,
            stat: PidStat {
                utime_ticks: utime,
                stime_ticks: stime,
                num_threads: 4,
                rss_pages,
            },
            status: None,
            io: None,
            host: None,
        }
    }

    #[test]
    fn derive_splits_user_and_sys() {
        // 1 second apart at 100 ticks/s: 60 user + 20 sys ticks = 80% CPU.
        let a = sample(0, 100, 40, 1000);
        let b = sample(1_000_000, 160, 60, 1100);
        let d = derive(&a, &b, 100.0, 4096).unwrap();
        assert!((d.cpu_user_percent - 60.0).abs() < 1e-9);
        assert!((d.cpu_sys_percent - 20.0).abs() < 1e-9);
        assert!((d.cpu_percent - 80.0).abs() < 1e-9);
        assert_eq!(d.rss_bytes, 1100 * 4096);
        assert_eq!(d.threads, 4);
        assert_eq!(d.host_cpu_percent, None);
        assert_eq!(d.read_bytes, None);
    }

    #[test]
    fn derive_prefers_status_rss_and_threads() {
        let a = sample(0, 0, 0, 1000);
        let mut b = sample(500_000, 10, 0, 1000);
        b.status = Some(PidStatus {
            vm_rss_bytes: Some(7_000_000),
            threads: Some(11),
            voluntary_ctxt_switches: Some(3),
            nonvoluntary_ctxt_switches: Some(1),
        });
        b.io = Some(PidIo {
            read_bytes: 42,
            write_bytes: 7,
        });
        let d = derive(&a, &b, 100.0, 4096).unwrap();
        assert_eq!(d.rss_bytes, 7_000_000);
        assert_eq!(d.threads, 11);
        assert_eq!(d.read_bytes, Some(42));
        assert_eq!(d.write_bytes, Some(7));
        assert_eq!(d.voluntary_ctxt_switches, Some(3));
        assert_eq!(d.nonvoluntary_ctxt_switches, Some(1));
        // Half a second, 10 ticks at 100 Hz = 20% of a core.
        assert!((d.cpu_percent - 20.0).abs() < 1e-9);
    }

    #[test]
    fn derive_host_cpu_percent() {
        let mut a = sample(0, 0, 0, 1);
        let mut b = sample(1_000_000, 0, 0, 1);
        a.host = Some(HostStat {
            total_ticks: 1000,
            idle_ticks: 900,
            cpus: 2,
        });
        b.host = Some(HostStat {
            total_ticks: 1200,
            idle_ticks: 1050,
            cpus: 2,
        });
        let d = derive(&a, &b, 100.0, 4096).unwrap();
        // 200 total ticks, 150 idle → 25% busy.
        assert_eq!(d.host_cpu_percent, Some(25.0));
    }

    #[test]
    fn derive_rejects_non_monotone_time() {
        let a = sample(1_000, 0, 0, 1);
        let b = sample(1_000, 1, 0, 1);
        assert!(derive(&a, &b, 100.0, 4096).is_none());
        assert!(derive(&b, &a, 100.0, 4096).is_none());
    }

    #[test]
    fn derive_clamps_counter_regressions() {
        // A pid reuse or counter wobble must not produce negative rates.
        let a = sample(0, 100, 100, 1);
        let b = sample(1_000_000, 50, 50, 1);
        let d = derive(&a, &b, 100.0, 4096).unwrap();
        assert_eq!(d.cpu_percent, 0.0);
        // Regression: the clamp used to be silent — the reset must be
        // flagged so consumers can discard the degraded instant.
        assert!(d.counter_reset);
        // A well-behaved pair stays unflagged.
        let c = sample(2_000_000, 60, 60, 1);
        let d = derive(&b, &c, 100.0, 4096).unwrap();
        assert!(!d.counter_reset);
        assert!(d.cpu_percent > 0.0);
    }

    #[test]
    fn derive_flags_host_and_io_counter_resets() {
        // Host jiffy total going backwards (e.g. a rebooted container's
        // /proc/stat) must flag a reset and withhold host CPU%.
        let mut a = sample(0, 0, 0, 1);
        let mut b = sample(1_000_000, 1, 0, 1);
        a.host = Some(HostStat {
            total_ticks: 5_000,
            idle_ticks: 4_000,
            cpus: 2,
        });
        b.host = Some(HostStat {
            total_ticks: 100,
            idle_ticks: 50,
            cpus: 2,
        });
        let d = derive(&a, &b, 100.0, 4096).unwrap();
        assert!(d.counter_reset);
        assert_eq!(d.host_cpu_percent, None);

        // Cumulative io bytes shrinking (pid reuse) likewise.
        let mut a = sample(0, 0, 0, 1);
        let mut b = sample(1_000_000, 1, 0, 1);
        a.io = Some(PidIo {
            read_bytes: 9_000,
            write_bytes: 9_000,
        });
        b.io = Some(PidIo {
            read_bytes: 10,
            write_bytes: 10,
        });
        let d = derive(&a, &b, 100.0, 4096).unwrap();
        assert!(d.counter_reset);
    }
}

//! Injectable `/proc` readers.
//!
//! The sampler never touches the filesystem directly — it reads through a
//! [`ProcSource`], so the whole derivation pipeline is testable without a
//! live `/proc` (and CI stays green on non-Linux hosts, where the live
//! source simply errors and the monitor degrades to an empty series).

use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex};

/// The four `/proc` files the Level-0 monitor reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcFile {
    /// `/proc/<pid>/stat` — scheduler stats, one line.
    PidStat,
    /// `/proc/<pid>/status` — key-value process status.
    PidStatus,
    /// `/proc/<pid>/io` — I/O accounting.
    PidIo,
    /// `/proc/stat` — host-wide CPU accounting.
    HostStat,
}

/// A source of raw `/proc` file contents.
pub trait ProcSource: Send {
    /// Reads the current contents of `file`.
    fn read(&self, file: ProcFile) -> io::Result<String>;

    /// Short label for error messages (e.g. `pid 4242`, `self`).
    fn describe(&self) -> String;
}

/// The live `/proc` filesystem, watching either the current process or an
/// external pid (the black-box system under test).
#[derive(Debug, Clone, Copy)]
pub struct LiveProc {
    pid: Option<u32>,
}

impl LiveProc {
    /// Watches the current process via `/proc/self`.
    pub fn current() -> Self {
        LiveProc { pid: None }
    }

    /// Watches an external process by pid.
    pub fn pid(pid: u32) -> Self {
        LiveProc { pid: Some(pid) }
    }

    fn path(&self, file: ProcFile) -> String {
        let base = match self.pid {
            Some(pid) => format!("/proc/{pid}"),
            None => "/proc/self".to_owned(),
        };
        match file {
            ProcFile::PidStat => format!("{base}/stat"),
            ProcFile::PidStatus => format!("{base}/status"),
            ProcFile::PidIo => format!("{base}/io"),
            ProcFile::HostStat => "/proc/stat".to_owned(),
        }
    }
}

impl ProcSource for LiveProc {
    fn read(&self, file: ProcFile) -> io::Result<String> {
        std::fs::read_to_string(self.path(file))
    }

    fn describe(&self) -> String {
        match self.pid {
            Some(pid) => format!("pid {pid}"),
            None => "self".to_owned(),
        }
    }
}

/// An in-memory `/proc` for tests and simulations. Cloning shares the
/// underlying files, so a test can update counters while a sampler holds
/// the other handle — exactly how the live `/proc` behaves.
#[derive(Debug, Clone, Default)]
pub struct FakeProc {
    files: Arc<Mutex<HashMap<ProcFile, String>>>,
}

impl FakeProc {
    /// An empty fake: every read fails with `NotFound` until `set`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or replaces) the contents of one file.
    pub fn set(&self, file: ProcFile, contents: impl Into<String>) {
        self.files
            .lock()
            .expect("fake proc poisoned")
            .insert(file, contents.into());
    }

    /// Removes a file, making subsequent reads fail (e.g. to simulate a
    /// pid exiting mid-run or a permission-restricted `io` file).
    pub fn remove(&self, file: ProcFile) {
        self.files.lock().expect("fake proc poisoned").remove(&file);
    }
}

impl ProcSource for FakeProc {
    fn read(&self, file: ProcFile) -> io::Result<String> {
        self.files
            .lock()
            .expect("fake proc poisoned")
            .get(&file)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{file:?} not set")))
    }

    fn describe(&self) -> String {
        "fake".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_paths() {
        let own = LiveProc::current();
        assert_eq!(own.path(ProcFile::PidStat), "/proc/self/stat");
        assert_eq!(own.path(ProcFile::HostStat), "/proc/stat");
        assert_eq!(own.describe(), "self");
        let ext = LiveProc::pid(4242);
        assert_eq!(ext.path(ProcFile::PidIo), "/proc/4242/io");
        assert_eq!(ext.path(ProcFile::PidStatus), "/proc/4242/status");
        assert_eq!(ext.describe(), "pid 4242");
    }

    #[test]
    fn fake_is_shared_and_updatable() {
        let fake = FakeProc::new();
        assert!(fake.read(ProcFile::PidStat).is_err());
        let clone = fake.clone();
        fake.set(ProcFile::PidStat, "a");
        assert_eq!(clone.read(ProcFile::PidStat).unwrap(), "a");
        clone.set(ProcFile::PidStat, "b");
        assert_eq!(fake.read(ProcFile::PidStat).unwrap(), "b");
        fake.remove(ProcFile::PidStat);
        assert!(clone.read(ProcFile::PidStat).is_err());
    }

    #[test]
    fn live_self_reads_on_linux() {
        // Only meaningful where /proc exists; elsewhere the error path is
        // the graceful-degradation contract.
        let live = LiveProc::current();
        if let Ok(stat) = live.read(ProcFile::PidStat) {
            assert!(stat.contains('('), "stat line has a comm field");
        }
    }
}

//! Bootstrap graph builders.
//!
//! The generator splits stream creation into bootstrapping an initial graph
//! with a well-known algorithm and evolving it afterwards (§5.1). This
//! module provides the well-known part: Barabási–Albert preferential
//! attachment (the paper's Table 3 bootstrap), Erdős–Rényi, and a few
//! deterministic fixtures for tests and examples.
//!
//! Every builder emits a [`GraphStream`] of `ADD_VERTEX`/`ADD_EDGE` events
//! that applies cleanly onto an empty [`EvolvingGraph`] under strict
//! semantics.

use gt_core::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::graph::EvolvingGraph;

fn add_vertex(stream: &mut GraphStream, id: u64) {
    stream.push(StreamEntry::graph(GraphEvent::AddVertex {
        id: VertexId(id),
        state: State::empty(),
    }));
}

fn add_edge(stream: &mut GraphStream, src: u64, dst: u64) {
    stream.push(StreamEntry::graph(GraphEvent::AddEdge {
        id: EdgeId::from((src, dst)),
        state: State::empty(),
    }));
}

/// Parameters for Barabási–Albert preferential attachment.
///
/// Table 3 of the paper uses `n = 10_000`, `m0 = 250`, `m = 50`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarabasiAlbert {
    /// Total number of vertices.
    pub n: u64,
    /// Size of the fully wired seed core.
    pub m0: u64,
    /// Edges attached per arriving vertex.
    pub m: u64,
    /// RNG seed for deterministic output.
    pub seed: u64,
}

impl BarabasiAlbert {
    /// The configuration of the paper's Table 3.
    pub fn table3() -> Self {
        BarabasiAlbert {
            n: 10_000,
            m0: 250,
            m: 50,
            seed: 18,
        }
    }

    /// Generates the bootstrap stream.
    ///
    /// The seed core is a ring (so every seed vertex starts with degree 2),
    /// then each arriving vertex `v` draws `m` distinct targets with
    /// probability proportional to current degree, emitting directed edges
    /// `v -> target`.
    ///
    /// # Panics
    /// If `m0 < 2`, `m == 0`, `m > m0`, or `n < m0`.
    pub fn generate(&self) -> GraphStream {
        assert!(self.m0 >= 2, "seed core needs at least two vertices");
        assert!(self.m >= 1, "each vertex must attach at least one edge");
        assert!(
            self.m <= self.m0,
            "cannot attach more edges than seed vertices"
        );
        assert!(self.n >= self.m0, "n must be at least m0");

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut stream = GraphStream::new();

        // `targets` holds one entry per edge endpoint, so uniform sampling
        // from it is sampling proportional to degree.
        let mut endpoint_pool: Vec<u64> = Vec::with_capacity((self.n * 2) as usize);

        for id in 0..self.m0 {
            add_vertex(&mut stream, id);
        }
        // Ring seed core.
        for id in 0..self.m0 {
            let next = (id + 1) % self.m0;
            add_edge(&mut stream, id, next);
            endpoint_pool.push(id);
            endpoint_pool.push(next);
        }

        let mut chosen: Vec<u64> = Vec::with_capacity(self.m as usize);
        for id in self.m0..self.n {
            add_vertex(&mut stream, id);
            chosen.clear();
            while (chosen.len() as u64) < self.m {
                let pick = endpoint_pool[rng.random_range(0..endpoint_pool.len())];
                if pick != id && !chosen.contains(&pick) {
                    chosen.push(pick);
                }
            }
            for &target in &chosen {
                add_edge(&mut stream, id, target);
                endpoint_pool.push(id);
                endpoint_pool.push(target);
            }
        }
        stream
    }
}

/// Parameters for an Erdős–Rényi `G(n, p)` graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErdosRenyi {
    /// Number of vertices.
    pub n: u64,
    /// Probability of each directed edge (self loops excluded).
    pub p: f64,
    /// RNG seed for deterministic output.
    pub seed: u64,
}

impl ErdosRenyi {
    /// Generates the bootstrap stream.
    ///
    /// # Panics
    /// If `p` is not within `[0, 1]`.
    pub fn generate(&self) -> GraphStream {
        assert!((0.0..=1.0).contains(&self.p), "p must be a probability");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut stream = GraphStream::new();
        for id in 0..self.n {
            add_vertex(&mut stream, id);
        }
        for src in 0..self.n {
            for dst in 0..self.n {
                if src != dst && rng.random_bool(self.p) {
                    add_edge(&mut stream, src, dst);
                }
            }
        }
        stream
    }
}

/// A directed path `0 -> 1 -> ... -> n-1`.
pub fn path(n: u64) -> GraphStream {
    let mut stream = GraphStream::new();
    for id in 0..n {
        add_vertex(&mut stream, id);
    }
    for id in 1..n {
        add_edge(&mut stream, id - 1, id);
    }
    stream
}

/// A directed ring `0 -> 1 -> ... -> n-1 -> 0` (requires `n >= 3` for a
/// loop-free ring; smaller `n` degenerates to a path).
pub fn ring(n: u64) -> GraphStream {
    let mut stream = path(n);
    if n >= 3 {
        add_edge(&mut stream, n - 1, 0);
    }
    stream
}

/// A star: center `0` with spokes `0 -> i` for `i in 1..n`.
pub fn star(n: u64) -> GraphStream {
    let mut stream = GraphStream::new();
    for id in 0..n {
        add_vertex(&mut stream, id);
    }
    for id in 1..n {
        add_edge(&mut stream, 0, id);
    }
    stream
}

/// A complete directed graph on `n` vertices (both directions, no loops).
pub fn complete(n: u64) -> GraphStream {
    let mut stream = GraphStream::new();
    for id in 0..n {
        add_vertex(&mut stream, id);
    }
    for src in 0..n {
        for dst in 0..n {
            if src != dst {
                add_edge(&mut stream, src, dst);
            }
        }
    }
    stream
}

/// A `rows x cols` grid with edges right and down (ids row-major).
pub fn grid(rows: u64, cols: u64) -> GraphStream {
    let mut stream = GraphStream::new();
    for id in 0..rows * cols {
        add_vertex(&mut stream, id);
    }
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                add_edge(&mut stream, id, id + 1);
            }
            if r + 1 < rows {
                add_edge(&mut stream, id, id + cols);
            }
        }
    }
    stream
}

/// Materializes a bootstrap stream into a graph (strict application).
pub fn materialize(stream: &GraphStream) -> EvolvingGraph {
    EvolvingGraph::from_stream(stream).expect("builder streams apply cleanly")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = materialize(&path(5));
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(EdgeId::from((0, 1))));
        assert!(!g.has_edge(EdgeId::from((1, 0))));
    }

    #[test]
    fn ring_closes_the_loop() {
        let g = materialize(&ring(4));
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(EdgeId::from((3, 0))));
    }

    #[test]
    fn star_degrees() {
        let g = materialize(&star(6));
        assert_eq!(g.out_degree(VertexId(0)), Some(5));
        assert_eq!(g.in_degree(VertexId(3)), Some(1));
    }

    #[test]
    fn complete_edge_count() {
        let g = materialize(&complete(5));
        assert_eq!(g.edge_count(), 20);
    }

    #[test]
    fn grid_shape() {
        let g = materialize(&grid(3, 4));
        assert_eq!(g.vertex_count(), 12);
        // Horizontal: 3 rows * 3, vertical: 2 rows * 4.
        assert_eq!(g.edge_count(), 9 + 8);
        assert!(g.has_edge(EdgeId::from((0, 1))));
        assert!(g.has_edge(EdgeId::from((0, 4))));
    }

    #[test]
    fn barabasi_albert_applies_cleanly_and_has_expected_size() {
        let ba = BarabasiAlbert {
            n: 300,
            m0: 10,
            m: 3,
            seed: 7,
        };
        let stream = ba.generate();
        let g = materialize(&stream);
        assert_eq!(g.vertex_count(), 300);
        // Ring core has m0 edges, every later vertex adds exactly m.
        assert_eq!(g.edge_count() as u64, ba.m0 + (ba.n - ba.m0) * ba.m);
        g.check_invariants().unwrap();
    }

    #[test]
    fn barabasi_albert_is_deterministic_per_seed() {
        let ba = BarabasiAlbert {
            n: 100,
            m0: 5,
            m: 2,
            seed: 42,
        };
        assert_eq!(ba.generate(), ba.generate());
        let other = BarabasiAlbert { seed: 43, ..ba };
        assert_ne!(ba.generate(), other.generate());
    }

    #[test]
    fn barabasi_albert_prefers_high_degree() {
        // With preferential attachment, the seed core should end up with a
        // much higher mean degree than late arrivals.
        let ba = BarabasiAlbert {
            n: 2_000,
            m0: 10,
            m: 4,
            seed: 1,
        };
        let g = materialize(&ba.generate());
        let core_mean: f64 = (0..ba.m0)
            .map(|id| g.degree(VertexId(id)).unwrap() as f64)
            .sum::<f64>()
            / ba.m0 as f64;
        let tail_mean: f64 = (ba.n - 100..ba.n)
            .map(|id| g.degree(VertexId(id)).unwrap() as f64)
            .sum::<f64>()
            / 100.0;
        assert!(
            core_mean > tail_mean * 5.0,
            "core mean {core_mean} vs tail mean {tail_mean}"
        );
    }

    #[test]
    fn erdos_renyi_density_close_to_p() {
        let er = ErdosRenyi {
            n: 200,
            p: 0.05,
            seed: 3,
        };
        let g = materialize(&er.generate());
        let possible = (er.n * (er.n - 1)) as f64;
        let density = g.edge_count() as f64 / possible;
        assert!((density - er.p).abs() < 0.01, "density {density}");
    }

    #[test]
    fn erdos_renyi_extremes() {
        let empty = ErdosRenyi {
            n: 20,
            p: 0.0,
            seed: 0,
        };
        assert_eq!(materialize(&empty.generate()).edge_count(), 0);
        let full = ErdosRenyi {
            n: 10,
            p: 1.0,
            seed: 0,
        };
        assert_eq!(materialize(&full.generate()).edge_count(), 90);
    }

    #[test]
    #[should_panic(expected = "cannot attach more edges")]
    fn barabasi_albert_rejects_m_larger_than_core() {
        BarabasiAlbert {
            n: 10,
            m0: 3,
            m: 5,
            seed: 0,
        }
        .generate();
    }
}

//! Epoch snapshot management.
//!
//! The paper's background (§1) describes systems that capture graph
//! dynamicity "often by periodically creating snapshots", then process
//! "graph snapshots of different points in time … in batches to perform
//! temporal graph computation" (Kineograph's epoch snapshots, Chronos).
//! Offline computations in the GraphTides model run on exactly such
//! snapshots (§4.4.2).
//!
//! [`SnapshotStore`] ingests the event stream, cuts an immutable
//! [`CsrSnapshot`] every `epoch_len` events (plus on demand), retains a
//! bounded history, and serves temporal queries: per-epoch property
//! series and epoch-to-epoch entity diffs.

use std::collections::BTreeSet;
use std::sync::Arc;

use gt_core::prelude::*;

use crate::apply::ApplyPolicy;
use crate::csr::CsrSnapshot;
use crate::graph::EvolvingGraph;

/// One retained epoch.
#[derive(Debug, Clone)]
pub struct Epoch {
    /// Epoch sequence number (0 = first cut).
    pub seq: u64,
    /// Graph events ingested when the snapshot was cut.
    pub events: u64,
    /// The frozen graph.
    pub snapshot: Arc<CsrSnapshot>,
}

/// The difference between two epochs' entity sets.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EpochDiff {
    /// Vertices present in the newer epoch only.
    pub added_vertices: Vec<VertexId>,
    /// Vertices present in the older epoch only.
    pub removed_vertices: Vec<VertexId>,
    /// Net edge-count change (newer − older).
    pub edge_delta: i64,
}

/// Ingests events, cuts periodic snapshots, retains a bounded history.
#[derive(Debug)]
pub struct SnapshotStore {
    live: EvolvingGraph,
    epoch_len: u64,
    retain: usize,
    events: u64,
    next_seq: u64,
    epochs: Vec<Epoch>,
}

impl SnapshotStore {
    /// A store cutting a snapshot every `epoch_len` events, retaining the
    /// most recent `retain` epochs.
    ///
    /// # Panics
    /// If `epoch_len` is zero or `retain` is zero.
    pub fn new(epoch_len: u64, retain: usize) -> Self {
        assert!(epoch_len > 0, "epoch length must be positive");
        assert!(retain > 0, "must retain at least one epoch");
        SnapshotStore {
            live: EvolvingGraph::new(),
            epoch_len,
            retain,
            events: 0,
            next_seq: 0,
            epochs: Vec::new(),
        }
    }

    /// Ingests one event (lenient semantics); cuts an epoch when the
    /// period elapses. Returns the new epoch if one was cut.
    pub fn ingest(&mut self, event: &GraphEvent) -> Option<&Epoch> {
        let _ = self.live.apply_with(event, ApplyPolicy::Lenient);
        self.events += 1;
        if self.events % self.epoch_len == 0 {
            Some(self.cut())
        } else {
            None
        }
    }

    /// Forces an epoch cut now (e.g. at a stream marker).
    pub fn cut(&mut self) -> &Epoch {
        let epoch = Epoch {
            seq: self.next_seq,
            events: self.events,
            snapshot: Arc::new(CsrSnapshot::from_graph(&self.live)),
        };
        self.next_seq += 1;
        self.epochs.push(epoch);
        if self.epochs.len() > self.retain {
            let excess = self.epochs.len() - self.retain;
            self.epochs.drain(..excess);
        }
        self.epochs.last().expect("just pushed")
    }

    /// The live (up-to-the-event) graph.
    pub fn live(&self) -> &EvolvingGraph {
        &self.live
    }

    /// Retained epochs, oldest first.
    pub fn epochs(&self) -> &[Epoch] {
        &self.epochs
    }

    /// The most recent epoch, if any was cut.
    pub fn latest(&self) -> Option<&Epoch> {
        self.epochs.last()
    }

    /// A per-epoch time series of some snapshot property:
    /// `(events_at_cut, value)`.
    pub fn property_series(&self, f: impl Fn(&CsrSnapshot) -> f64) -> Vec<(f64, f64)> {
        self.epochs
            .iter()
            .map(|e| (e.events as f64, f(&e.snapshot)))
            .collect()
    }

    /// Entity diff between two retained epochs (by sequence number).
    /// `None` if either epoch is no longer retained or the order is
    /// reversed.
    pub fn diff(&self, older: u64, newer: u64) -> Option<EpochDiff> {
        if older > newer {
            return None;
        }
        let find = |seq: u64| self.epochs.iter().find(|e| e.seq == seq);
        let old = find(older)?;
        let new = find(newer)?;
        let old_ids: BTreeSet<VertexId> = old.snapshot.ids().iter().copied().collect();
        let new_ids: BTreeSet<VertexId> = new.snapshot.ids().iter().copied().collect();
        Some(EpochDiff {
            added_vertices: new_ids.difference(&old_ids).copied().collect(),
            removed_vertices: old_ids.difference(&new_ids).copied().collect(),
            edge_delta: new.snapshot.edge_count() as i64 - old.snapshot.edge_count() as i64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_v(id: u64) -> GraphEvent {
        GraphEvent::AddVertex {
            id: VertexId(id),
            state: State::empty(),
        }
    }

    fn add_e(s: u64, d: u64) -> GraphEvent {
        GraphEvent::AddEdge {
            id: EdgeId::from((s, d)),
            state: State::empty(),
        }
    }

    #[test]
    fn cuts_epochs_on_period() {
        let mut store = SnapshotStore::new(10, 8);
        for i in 0..25u64 {
            let cut = store.ingest(&add_v(i)).is_some();
            assert_eq!(cut, (i + 1) % 10 == 0, "event {i}");
        }
        assert_eq!(store.epochs().len(), 2);
        assert_eq!(store.epochs()[0].snapshot.vertex_count(), 10);
        assert_eq!(store.epochs()[1].snapshot.vertex_count(), 20);
        assert_eq!(store.live().vertex_count(), 25);
    }

    #[test]
    fn snapshots_are_immutable_views() {
        let mut store = SnapshotStore::new(5, 4);
        for i in 0..5u64 {
            store.ingest(&add_v(i));
        }
        let first = Arc::clone(&store.latest().unwrap().snapshot);
        for i in 5..10u64 {
            store.ingest(&add_v(i));
        }
        // The earlier epoch still sees the old world.
        assert_eq!(first.vertex_count(), 5);
        assert_eq!(store.latest().unwrap().snapshot.vertex_count(), 10);
    }

    #[test]
    fn retention_drops_oldest() {
        let mut store = SnapshotStore::new(2, 3);
        for i in 0..20u64 {
            store.ingest(&add_v(i));
        }
        assert_eq!(store.epochs().len(), 3);
        let seqs: Vec<u64> = store.epochs().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [7, 8, 9]);
    }

    #[test]
    fn diff_between_epochs() {
        let mut store = SnapshotStore::new(3, 10);
        store.ingest(&add_v(1));
        store.ingest(&add_v(2));
        store.ingest(&add_e(1, 2)); // epoch 0: {1,2}, 1 edge
        store.ingest(&add_v(3));
        store.ingest(&GraphEvent::RemoveVertex { id: VertexId(1) });
        store.ingest(&add_v(4)); // epoch 1: {2,3,4}, 0 edges
        let diff = store.diff(0, 1).unwrap();
        assert_eq!(diff.added_vertices, [VertexId(3), VertexId(4)]);
        assert_eq!(diff.removed_vertices, [VertexId(1)]);
        assert_eq!(diff.edge_delta, -1);
        assert!(store.diff(1, 0).is_none());
        assert!(store.diff(0, 9).is_none());
    }

    #[test]
    fn property_series_over_epochs() {
        let mut store = SnapshotStore::new(4, 10);
        for i in 0..12u64 {
            store.ingest(&add_v(i));
        }
        let series = store.property_series(|s| s.vertex_count() as f64);
        assert_eq!(series, [(4.0, 4.0), (8.0, 8.0), (12.0, 12.0)]);
    }

    #[test]
    fn forced_cut_at_marker() {
        let mut store = SnapshotStore::new(1_000, 4);
        store.ingest(&add_v(1));
        let epoch = store.cut();
        assert_eq!(epoch.events, 1);
        assert_eq!(epoch.snapshot.vertex_count(), 1);
    }

    #[test]
    #[should_panic(expected = "epoch length")]
    fn zero_epoch_len_rejected() {
        SnapshotStore::new(0, 1);
    }
}

//! Compact read-only snapshots in compressed-sparse-row (CSR) form.
//!
//! Offline computations in the paper's model run on snapshots reconstructed
//! from the stream (§4.4.2). [`CsrSnapshot`] freezes an [`EvolvingGraph`]
//! into dense index space so the reference algorithms in `gt-algorithms` can
//! iterate adjacency without hashing or tree walks.

use std::collections::BTreeMap;

use gt_core::prelude::*;

use crate::graph::EvolvingGraph;

/// A frozen snapshot: vertices renumbered `0..n`, adjacency in CSR layout,
/// with both forward (out) and reverse (in) edges, plus edge weights parsed
/// from edge state (defaulting to `1.0` where the state is not numeric).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrSnapshot {
    /// Dense index → original vertex id, ascending.
    ids: Vec<VertexId>,
    /// Original vertex id → dense index.
    index: BTreeMap<VertexId, u32>,
    /// CSR row offsets into `out_targets`, length `n + 1`.
    out_offsets: Vec<u32>,
    /// Flattened out-neighbor indices.
    out_targets: Vec<u32>,
    /// Weight per out-edge, parallel to `out_targets`.
    out_weights: Vec<f64>,
    /// CSR row offsets into `in_targets`, length `n + 1`.
    in_offsets: Vec<u32>,
    /// Flattened in-neighbor indices.
    in_targets: Vec<u32>,
}

impl CsrSnapshot {
    /// Freezes the given graph.
    pub fn from_graph(graph: &EvolvingGraph) -> Self {
        let ids: Vec<VertexId> = graph.vertices().collect();
        let index: BTreeMap<VertexId, u32> = ids
            .iter()
            .enumerate()
            .map(|(i, id)| (*id, i as u32))
            .collect();

        let n = ids.len();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_targets = Vec::with_capacity(graph.edge_count());
        let mut out_weights = Vec::with_capacity(graph.edge_count());
        out_offsets.push(0u32);
        for &id in &ids {
            for (dst, state) in graph.out_edges(id) {
                out_targets.push(index[&dst]);
                out_weights.push(state.as_weight().unwrap_or(1.0));
            }
            out_offsets.push(out_targets.len() as u32);
        }

        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut in_targets = Vec::with_capacity(graph.edge_count());
        in_offsets.push(0u32);
        for &id in &ids {
            for src in graph.in_neighbors(id) {
                in_targets.push(index[&src]);
            }
            in_offsets.push(in_targets.len() as u32);
        }

        CsrSnapshot {
            ids,
            index,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_targets,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.ids.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Original vertex id for a dense index.
    ///
    /// # Panics
    /// If `idx >= vertex_count()`.
    pub fn id_of(&self, idx: u32) -> VertexId {
        self.ids[idx as usize]
    }

    /// Dense index for an original vertex id, if present in the snapshot.
    pub fn index_of(&self, id: VertexId) -> Option<u32> {
        self.index.get(&id).copied()
    }

    /// Out-neighbors (dense indices) of a dense vertex index.
    pub fn out_neighbors(&self, idx: u32) -> &[u32] {
        let lo = self.out_offsets[idx as usize] as usize;
        let hi = self.out_offsets[idx as usize + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// Weights parallel to [`Self::out_neighbors`].
    pub fn out_weights(&self, idx: u32) -> &[f64] {
        let lo = self.out_offsets[idx as usize] as usize;
        let hi = self.out_offsets[idx as usize + 1] as usize;
        &self.out_weights[lo..hi]
    }

    /// In-neighbors (dense indices) of a dense vertex index.
    pub fn in_neighbors(&self, idx: u32) -> &[u32] {
        let lo = self.in_offsets[idx as usize] as usize;
        let hi = self.in_offsets[idx as usize + 1] as usize;
        &self.in_targets[lo..hi]
    }

    /// Out-degree of a dense vertex index.
    pub fn out_degree(&self, idx: u32) -> usize {
        self.out_neighbors(idx).len()
    }

    /// In-degree of a dense vertex index.
    pub fn in_degree(&self, idx: u32) -> usize {
        self.in_neighbors(idx).len()
    }

    /// Iterates over all dense indices.
    pub fn indices(&self) -> impl Iterator<Item = u32> {
        0..self.vertex_count() as u32
    }

    /// All original ids, ascending (parallel to dense indices).
    pub fn ids(&self) -> &[VertexId] {
        &self.ids
    }
}

impl From<&EvolvingGraph> for CsrSnapshot {
    fn from(g: &EvolvingGraph) -> Self {
        CsrSnapshot::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> EvolvingGraph {
        // 1 -> 2 -> 4, 1 -> 3 -> 4, weights = dst as f64
        let mut g = EvolvingGraph::new();
        for id in 1..=4 {
            g.apply(&GraphEvent::AddVertex {
                id: VertexId(id),
                state: State::empty(),
            })
            .unwrap();
        }
        for (s, d) in [(1u64, 2u64), (1, 3), (2, 4), (3, 4)] {
            g.apply(&GraphEvent::AddEdge {
                id: EdgeId::from((s, d)),
                state: State::weight(d as f64),
            })
            .unwrap();
        }
        g
    }

    #[test]
    fn csr_mirrors_graph() {
        let g = diamond();
        let csr = CsrSnapshot::from_graph(&g);
        assert_eq!(csr.vertex_count(), 4);
        assert_eq!(csr.edge_count(), 4);
        let i1 = csr.index_of(VertexId(1)).unwrap();
        let i4 = csr.index_of(VertexId(4)).unwrap();
        assert_eq!(csr.out_degree(i1), 2);
        assert_eq!(csr.in_degree(i1), 0);
        assert_eq!(csr.out_degree(i4), 0);
        assert_eq!(csr.in_degree(i4), 2);
        let out1: Vec<VertexId> = csr
            .out_neighbors(i1)
            .iter()
            .map(|&i| csr.id_of(i))
            .collect();
        assert_eq!(out1, [VertexId(2), VertexId(3)]);
        assert_eq!(csr.out_weights(i1), [2.0, 3.0]);
    }

    #[test]
    fn ids_are_ascending_and_indexable() {
        let g = diamond();
        let csr = CsrSnapshot::from_graph(&g);
        for (i, id) in csr.ids().iter().enumerate() {
            assert_eq!(csr.index_of(*id), Some(i as u32));
            assert_eq!(csr.id_of(i as u32), *id);
        }
        assert_eq!(csr.index_of(VertexId(99)), None);
    }

    #[test]
    fn empty_graph() {
        let csr = CsrSnapshot::from_graph(&EvolvingGraph::new());
        assert_eq!(csr.vertex_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(csr.indices().count(), 0);
    }

    #[test]
    fn non_numeric_weights_default_to_one() {
        let mut g = EvolvingGraph::new();
        for id in [1u64, 2] {
            g.apply(&GraphEvent::AddVertex {
                id: VertexId(id),
                state: State::empty(),
            })
            .unwrap();
        }
        g.apply(&GraphEvent::AddEdge {
            id: EdgeId::from((1, 2)),
            state: State::new("friend"),
        })
        .unwrap();
        let csr = CsrSnapshot::from_graph(&g);
        let i1 = csr.index_of(VertexId(1)).unwrap();
        assert_eq!(csr.out_weights(i1), [1.0]);
    }

    #[test]
    fn edge_counts_sum_over_rows() {
        let g = diamond();
        let csr = CsrSnapshot::from_graph(&g);
        let out_sum: usize = csr.indices().map(|i| csr.out_degree(i)).sum();
        let in_sum: usize = csr.indices().map(|i| csr.in_degree(i)).sum();
        assert_eq!(out_sum, csr.edge_count());
        assert_eq!(in_sum, csr.edge_count());
    }
}

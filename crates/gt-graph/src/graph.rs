//! The evolving property graph.
//!
//! Storage is ordered so that iteration order — and with it every
//! downstream computation and simulated experiment — is fully
//! deterministic for a given event sequence. The vertex index is a
//! `BTreeMap`; per-vertex adjacency is a degree-adaptive
//! [`HybridAdjacency`] (inline sorted array for the small-degree common
//! case, map for hubs) that preserves the same ascending iteration order
//! in both representations.

use std::collections::{BTreeMap, BTreeSet};

use gt_core::prelude::*;

use crate::apply::{Applied, ApplyError, ApplyPolicy};
use crate::hybrid::HybridAdjacency;

#[derive(Debug, Clone, PartialEq, Default)]
struct VertexData {
    state: State,
    /// Outgoing adjacency with per-edge state.
    out: HybridAdjacency<State>,
    /// Incoming adjacency (reverse index for O(deg) vertex removal and
    /// in-degree queries).
    inc: HybridAdjacency<()>,
}

/// A directed, stateful graph that evolves by applying stream events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EvolvingGraph {
    vertices: BTreeMap<VertexId, VertexData>,
    edge_count: usize,
    /// Total graph events successfully applied (mutating or not).
    applied_events: u64,
}

impl EvolvingGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a graph by strictly applying every graph event of a stream.
    pub fn from_stream(stream: &GraphStream) -> Result<Self, ApplyError> {
        let mut g = EvolvingGraph::new();
        for event in stream.graph_events() {
            g.apply(event)?;
        }
        Ok(g)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Total graph events applied so far.
    pub fn applied_events(&self) -> u64 {
        self.applied_events
    }

    /// Whether the vertex exists.
    pub fn has_vertex(&self, id: VertexId) -> bool {
        self.vertices.contains_key(&id)
    }

    /// Whether the directed edge exists.
    pub fn has_edge(&self, id: EdgeId) -> bool {
        self.vertices
            .get(&id.src)
            .is_some_and(|v| v.out.contains(id.dst))
    }

    /// The state of a vertex, if it exists.
    pub fn vertex_state(&self, id: VertexId) -> Option<&State> {
        self.vertices.get(&id).map(|v| &v.state)
    }

    /// The state of an edge, if it exists.
    pub fn edge_state(&self, id: EdgeId) -> Option<&State> {
        self.vertices.get(&id.src).and_then(|v| v.out.get(id.dst))
    }

    /// Out-degree of a vertex (`None` if it does not exist).
    pub fn out_degree(&self, id: VertexId) -> Option<usize> {
        self.vertices.get(&id).map(|v| v.out.len())
    }

    /// In-degree of a vertex (`None` if it does not exist).
    pub fn in_degree(&self, id: VertexId) -> Option<usize> {
        self.vertices.get(&id).map(|v| v.inc.len())
    }

    /// Total degree (in + out), `None` if the vertex does not exist.
    pub fn degree(&self, id: VertexId) -> Option<usize> {
        self.vertices.get(&id).map(|v| v.out.len() + v.inc.len())
    }

    /// Iterates over all vertex ids in ascending order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices.keys().copied()
    }

    /// Iterates over `(id, state)` for all vertices in ascending id order.
    pub fn vertices_with_state(&self) -> impl Iterator<Item = (VertexId, &State)> {
        self.vertices.iter().map(|(id, v)| (*id, &v.state))
    }

    /// Iterates over all directed edges `(edge, state)` in deterministic
    /// (src, dst) order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &State)> {
        self.vertices.iter().flat_map(|(src, v)| {
            v.out
                .iter()
                .map(move |(dst, s)| (EdgeId::new(*src, dst), s))
        })
    }

    /// Out-neighbors of a vertex in ascending order (empty if missing).
    pub fn out_neighbors(&self, id: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices
            .get(&id)
            .into_iter()
            .flat_map(|v| v.out.keys())
    }

    /// Out-neighbors with edge state.
    pub fn out_edges(&self, id: VertexId) -> impl Iterator<Item = (VertexId, &State)> {
        self.vertices
            .get(&id)
            .into_iter()
            .flat_map(|v| v.out.iter())
    }

    /// In-neighbors of a vertex in ascending order (empty if missing).
    pub fn in_neighbors(&self, id: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices
            .get(&id)
            .into_iter()
            .flat_map(|v| v.inc.keys())
    }

    /// All neighbors, ignoring direction, deduplicated, ascending.
    pub fn undirected_neighbors(&self, id: VertexId) -> Vec<VertexId> {
        let Some(v) = self.vertices.get(&id) else {
            return Vec::new();
        };
        let mut all: BTreeSet<VertexId> = v.out.keys().collect();
        all.extend(v.inc.keys());
        all.into_iter().collect()
    }

    /// Applies one event with [`ApplyPolicy::Strict`] semantics.
    pub fn apply(&mut self, event: &GraphEvent) -> Result<Applied, ApplyError> {
        self.apply_with(event, ApplyPolicy::Strict)
    }

    /// Applies one event under the given policy.
    pub fn apply_with(
        &mut self,
        event: &GraphEvent,
        policy: ApplyPolicy,
    ) -> Result<Applied, ApplyError> {
        let lenient = policy == ApplyPolicy::Lenient;
        let outcome = match event {
            GraphEvent::AddVertex { id, state } => {
                if self.vertices.contains_key(id) {
                    if lenient {
                        Applied::noop()
                    } else {
                        return Err(ApplyError::VertexExists(*id));
                    }
                } else {
                    self.vertices.insert(
                        *id,
                        VertexData {
                            state: state.clone(),
                            ..VertexData::default()
                        },
                    );
                    Applied::mutated()
                }
            }
            GraphEvent::RemoveVertex { id } => {
                if !self.vertices.contains_key(id) {
                    if lenient {
                        Applied::noop()
                    } else {
                        return Err(ApplyError::MissingVertex(*id));
                    }
                } else {
                    let cascaded = self.remove_vertex_cascading(*id);
                    Applied {
                        mutated: true,
                        cascaded_edge_removals: cascaded,
                    }
                }
            }
            GraphEvent::UpdateVertex { id, state } => match self.vertices.get_mut(id) {
                Some(v) => {
                    v.state = state.clone();
                    Applied::mutated()
                }
                None if lenient => Applied::noop(),
                None => return Err(ApplyError::MissingVertex(*id)),
            },
            GraphEvent::AddEdge { id, state } => {
                if id.is_self_loop() {
                    return Err(ApplyError::SelfLoop(id.src));
                }
                if !self.vertices.contains_key(&id.src) {
                    if lenient {
                        return Ok(Applied::noop());
                    }
                    return Err(ApplyError::MissingVertex(id.src));
                }
                if !self.vertices.contains_key(&id.dst) {
                    if lenient {
                        return Ok(Applied::noop());
                    }
                    return Err(ApplyError::MissingVertex(id.dst));
                }
                if self.has_edge(*id) {
                    if lenient {
                        Applied::noop()
                    } else {
                        return Err(ApplyError::EdgeExists(*id));
                    }
                } else {
                    self.vertices
                        .get_mut(&id.src)
                        .expect("src checked above")
                        .out
                        .insert(id.dst, state.clone());
                    self.vertices
                        .get_mut(&id.dst)
                        .expect("dst checked above")
                        .inc
                        .insert(id.src, ());
                    self.edge_count += 1;
                    Applied::mutated()
                }
            }
            GraphEvent::RemoveEdge { id } => {
                if !self.has_edge(*id) {
                    if lenient {
                        Applied::noop()
                    } else {
                        return Err(ApplyError::MissingEdge(*id));
                    }
                } else {
                    self.vertices
                        .get_mut(&id.src)
                        .expect("edge exists")
                        .out
                        .remove(id.dst);
                    self.vertices
                        .get_mut(&id.dst)
                        .expect("edge exists")
                        .inc
                        .remove(id.src);
                    self.edge_count -= 1;
                    Applied::mutated()
                }
            }
            GraphEvent::UpdateEdge { id, state } => {
                let exists = self.has_edge(*id);
                if !exists {
                    if lenient {
                        Applied::noop()
                    } else {
                        return Err(ApplyError::MissingEdge(*id));
                    }
                } else {
                    *self
                        .vertices
                        .get_mut(&id.src)
                        .expect("edge exists")
                        .out
                        .get_mut(id.dst)
                        .expect("edge exists") = state.clone();
                    Applied::mutated()
                }
            }
        };
        self.applied_events += 1;
        Ok(outcome)
    }

    /// Removes a vertex together with all incident edges; returns how many
    /// edges were removed.
    fn remove_vertex_cascading(&mut self, id: VertexId) -> usize {
        let data = self.vertices.remove(&id).expect("caller checked existence");
        let mut removed = 0;
        for dst in data.out.keys() {
            if let Some(v) = self.vertices.get_mut(&dst) {
                v.inc.remove(id);
                removed += 1;
            }
        }
        for src in data.inc.keys() {
            if let Some(v) = self.vertices.get_mut(&src) {
                v.out.remove(id);
                removed += 1;
            }
        }
        self.edge_count -= removed;
        removed
    }

    /// A deep copy of the current graph (an "epoch snapshot" in
    /// Kineograph terms — §4.4.2).
    pub fn snapshot(&self) -> EvolvingGraph {
        self.clone()
    }

    /// Checks internal consistency: the reverse index mirrors the forward
    /// adjacency and the edge count matches. Intended for tests and
    /// debugging; O(V + E).
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut forward = 0usize;
        for (src, v) in &self.vertices {
            for dst in v.out.keys() {
                forward += 1;
                let Some(d) = self.vertices.get(&dst) else {
                    return Err(format!("edge {src}-{dst} points at missing vertex"));
                };
                if !d.inc.contains(*src) {
                    return Err(format!("edge {src}-{dst} missing from reverse index"));
                }
            }
            for src2 in v.inc.keys() {
                let Some(s) = self.vertices.get(&src2) else {
                    return Err(format!("reverse edge {src2}->{src} from missing vertex"));
                };
                if !s.out.contains(*src) {
                    return Err(format!("reverse edge {src2}->{src} has no forward edge"));
                }
            }
        }
        if forward != self.edge_count {
            return Err(format!(
                "edge count {} does not match adjacency ({forward})",
                self.edge_count
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_v(g: &mut EvolvingGraph, id: u64) {
        g.apply(&GraphEvent::AddVertex {
            id: VertexId(id),
            state: State::empty(),
        })
        .unwrap();
    }

    fn add_e(g: &mut EvolvingGraph, src: u64, dst: u64) {
        g.apply(&GraphEvent::AddEdge {
            id: EdgeId::from((src, dst)),
            state: State::empty(),
        })
        .unwrap();
    }

    #[test]
    fn add_and_query_vertices() {
        let mut g = EvolvingGraph::new();
        add_v(&mut g, 1);
        add_v(&mut g, 2);
        assert_eq!(g.vertex_count(), 2);
        assert!(g.has_vertex(VertexId(1)));
        assert!(!g.has_vertex(VertexId(3)));
        assert_eq!(g.vertices().collect::<Vec<_>>(), [VertexId(1), VertexId(2)]);
    }

    #[test]
    fn duplicate_vertex_rejected_strict_tolerated_lenient() {
        let mut g = EvolvingGraph::new();
        add_v(&mut g, 1);
        let dup = GraphEvent::AddVertex {
            id: VertexId(1),
            state: State::new("other"),
        };
        assert_eq!(g.apply(&dup), Err(ApplyError::VertexExists(VertexId(1))));
        let lenient = g.apply_with(&dup, ApplyPolicy::Lenient).unwrap();
        assert!(!lenient.mutated);
        // Lenient duplicate add must not clobber existing state.
        assert_eq!(g.vertex_state(VertexId(1)).unwrap().as_str(), "");
    }

    #[test]
    fn edges_require_endpoints() {
        let mut g = EvolvingGraph::new();
        add_v(&mut g, 1);
        let e = GraphEvent::AddEdge {
            id: EdgeId::from((1, 2)),
            state: State::empty(),
        };
        assert_eq!(g.apply(&e), Err(ApplyError::MissingVertex(VertexId(2))));
        assert!(!g.apply_with(&e, ApplyPolicy::Lenient).unwrap().mutated);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn self_loops_always_rejected() {
        let mut g = EvolvingGraph::new();
        add_v(&mut g, 1);
        let e = GraphEvent::AddEdge {
            id: EdgeId::from((1, 1)),
            state: State::empty(),
        };
        assert_eq!(g.apply(&e), Err(ApplyError::SelfLoop(VertexId(1))));
        assert_eq!(
            g.apply_with(&e, ApplyPolicy::Lenient),
            Err(ApplyError::SelfLoop(VertexId(1)))
        );
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = EvolvingGraph::new();
        add_v(&mut g, 1);
        add_v(&mut g, 2);
        add_e(&mut g, 1, 2);
        let e = GraphEvent::AddEdge {
            id: EdgeId::from((1, 2)),
            state: State::empty(),
        };
        assert_eq!(
            g.apply(&e),
            Err(ApplyError::EdgeExists(EdgeId::from((1, 2))))
        );
        // Reverse direction is a distinct edge.
        add_e(&mut g, 2, 1);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn degrees_and_neighbors() {
        let mut g = EvolvingGraph::new();
        for id in 1..=4 {
            add_v(&mut g, id);
        }
        add_e(&mut g, 1, 2);
        add_e(&mut g, 1, 3);
        add_e(&mut g, 4, 1);
        assert_eq!(g.out_degree(VertexId(1)), Some(2));
        assert_eq!(g.in_degree(VertexId(1)), Some(1));
        assert_eq!(g.degree(VertexId(1)), Some(3));
        assert_eq!(
            g.out_neighbors(VertexId(1)).collect::<Vec<_>>(),
            [VertexId(2), VertexId(3)]
        );
        assert_eq!(
            g.in_neighbors(VertexId(1)).collect::<Vec<_>>(),
            [VertexId(4)]
        );
        assert_eq!(
            g.undirected_neighbors(VertexId(1)),
            [VertexId(2), VertexId(3), VertexId(4)]
        );
        assert_eq!(g.out_degree(VertexId(99)), None);
    }

    #[test]
    fn vertex_removal_cascades_edges() {
        let mut g = EvolvingGraph::new();
        for id in 1..=4 {
            add_v(&mut g, id);
        }
        add_e(&mut g, 1, 2);
        add_e(&mut g, 3, 1);
        add_e(&mut g, 1, 4);
        add_e(&mut g, 2, 3); // unrelated edge
        let applied = g
            .apply(&GraphEvent::RemoveVertex { id: VertexId(1) })
            .unwrap();
        assert_eq!(applied.cascaded_edge_removals, 3);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_vertex(VertexId(1)));
        assert!(g.has_edge(EdgeId::from((2, 3))));
        g.check_invariants().unwrap();
    }

    #[test]
    fn state_updates() {
        let mut g = EvolvingGraph::new();
        add_v(&mut g, 1);
        add_v(&mut g, 2);
        add_e(&mut g, 1, 2);
        g.apply(&GraphEvent::UpdateVertex {
            id: VertexId(1),
            state: State::new("v1"),
        })
        .unwrap();
        g.apply(&GraphEvent::UpdateEdge {
            id: EdgeId::from((1, 2)),
            state: State::weight(9.0),
        })
        .unwrap();
        assert_eq!(g.vertex_state(VertexId(1)).unwrap().as_str(), "v1");
        assert_eq!(
            g.edge_state(EdgeId::from((1, 2))).unwrap().as_weight(),
            Some(9.0)
        );

        assert_eq!(
            g.apply(&GraphEvent::UpdateVertex {
                id: VertexId(9),
                state: State::empty(),
            }),
            Err(ApplyError::MissingVertex(VertexId(9)))
        );
        assert_eq!(
            g.apply(&GraphEvent::UpdateEdge {
                id: EdgeId::from((2, 1)),
                state: State::empty(),
            }),
            Err(ApplyError::MissingEdge(EdgeId::from((2, 1))))
        );
    }

    #[test]
    fn remove_edge() {
        let mut g = EvolvingGraph::new();
        add_v(&mut g, 1);
        add_v(&mut g, 2);
        add_e(&mut g, 1, 2);
        g.apply(&GraphEvent::RemoveEdge {
            id: EdgeId::from((1, 2)),
        })
        .unwrap();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(
            g.apply(&GraphEvent::RemoveEdge {
                id: EdgeId::from((1, 2)),
            }),
            Err(ApplyError::MissingEdge(EdgeId::from((1, 2))))
        );
        g.check_invariants().unwrap();
    }

    #[test]
    fn from_stream_builds_graph() {
        let stream = GraphStream::from_entries(vec![
            StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(1),
                state: State::empty(),
            }),
            StreamEntry::marker("mid"),
            StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(2),
                state: State::empty(),
            }),
            StreamEntry::graph(GraphEvent::AddEdge {
                id: EdgeId::from((1, 2)),
                state: State::empty(),
            }),
        ]);
        let g = EvolvingGraph::from_stream(&stream).unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.applied_events(), 3);
    }

    #[test]
    fn edges_iterator_is_deterministic() {
        let mut g = EvolvingGraph::new();
        for id in [5, 3, 1] {
            add_v(&mut g, id);
        }
        add_e(&mut g, 5, 1);
        add_e(&mut g, 3, 5);
        add_e(&mut g, 3, 1);
        let edges: Vec<_> = g.edges().map(|(e, _)| e).collect();
        assert_eq!(
            edges,
            [
                EdgeId::from((3, 1)),
                EdgeId::from((3, 5)),
                EdgeId::from((5, 1)),
            ]
        );
    }

    #[test]
    fn snapshot_is_independent() {
        let mut g = EvolvingGraph::new();
        add_v(&mut g, 1);
        let snap = g.snapshot();
        add_v(&mut g, 2);
        assert_eq!(snap.vertex_count(), 1);
        assert_eq!(g.vertex_count(), 2);
    }
}

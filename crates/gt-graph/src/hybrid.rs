//! Hybrid per-vertex adjacency storage (GraphTango-style).
//!
//! Streaming graphs are heavy-tailed: the overwhelming majority of
//! vertices keep a handful of neighbors while a few hubs accumulate
//! thousands. A one-size-fits-all map pays pointer-chasing and per-node
//! allocation for the common small case. [`HybridAdjacency`] switches the
//! representation *per vertex*:
//!
//! * **Inline** — up to [`HybridAdjacency::INLINE_CAP`] entries live in a
//!   fixed-size array embedded in the struct, kept sorted by neighbor id.
//!   Lookups are a short linear scan over hot cache lines and inserts
//!   allocate nothing.
//! * **Hub** — past the inline capacity the entries are promoted into a
//!   `BTreeMap`, trading the scan for logarithmic operations on high
//!   degrees.
//!
//! Promotion happens transparently on the insert that would overflow the
//! inline array; demotion happens when a hub shrinks back to
//! [`HybridAdjacency::DEMOTE_AT`] entries. The demotion threshold sits
//! well below the promotion threshold (hysteresis) so a vertex oscillating
//! around the boundary does not thrash between representations.
//!
//! Both representations iterate in **ascending neighbor-id order**, so the
//! deterministic-iteration guarantee of the evolving graph (and with it
//! the `StateDigest` canonicalization of the differential oracle) is
//! independent of which representation a vertex happens to be in.

use std::collections::BTreeMap;
use std::fmt;

use gt_core::prelude::VertexId;

/// Entries held inline before promotion to a map.
const INLINE_CAP: usize = 8;

/// Hub entry count at (or below) which a hub demotes back to inline.
const DEMOTE_AT: usize = 4;

/// Per-vertex adjacency that switches representation with degree.
///
/// Maps neighbor [`VertexId`]s to a per-edge payload `T` (edge state,
/// weight, or `()` for plain neighbor sets). See the module docs for the
/// representation-switching rules.
#[derive(Clone)]
pub struct HybridAdjacency<T> {
    repr: Repr<T>,
}

#[derive(Clone)]
enum Repr<T> {
    Inline {
        len: usize,
        slots: [Option<(VertexId, T)>; INLINE_CAP],
    },
    Hub(BTreeMap<VertexId, T>),
}

impl<T> HybridAdjacency<T> {
    /// Maximum entries held in the inline representation.
    pub const INLINE_CAP: usize = INLINE_CAP;

    /// Hub size at or below which [`remove`](Self::remove) demotes back to
    /// the inline representation.
    pub const DEMOTE_AT: usize = DEMOTE_AT;

    /// Creates an empty adjacency (inline representation).
    pub fn new() -> Self {
        Self {
            repr: Repr::Inline {
                len: 0,
                slots: std::array::from_fn(|_| None),
            },
        }
    }

    /// Number of neighbors.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len,
            Repr::Hub(map) => map.len(),
        }
    }

    /// Whether there are no neighbors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the inline (small-degree) representation is active.
    /// Exposed so tests and benches can pin the promotion boundary.
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// Whether `id` is a neighbor.
    pub fn contains(&self, id: VertexId) -> bool {
        self.get(id).is_some()
    }

    /// The payload stored for neighbor `id`, if present.
    pub fn get(&self, id: VertexId) -> Option<&T> {
        match &self.repr {
            Repr::Inline { len, slots } => slots[..*len].iter().find_map(|slot| {
                let (k, v) = slot.as_ref().expect("slot below len is occupied");
                (*k == id).then_some(v)
            }),
            Repr::Hub(map) => map.get(&id),
        }
    }

    /// Mutable access to the payload stored for neighbor `id`.
    pub fn get_mut(&mut self, id: VertexId) -> Option<&mut T> {
        match &mut self.repr {
            Repr::Inline { len, slots } => slots[..*len].iter_mut().find_map(|slot| {
                let (k, v) = slot.as_mut().expect("slot below len is occupied");
                (*k == id).then_some(v)
            }),
            Repr::Hub(map) => map.get_mut(&id),
        }
    }

    /// Inserts (or replaces) the payload for neighbor `id`, returning the
    /// previous payload if one existed. Promotes to the hub representation
    /// when the insert would overflow the inline array.
    pub fn insert(&mut self, id: VertexId, value: T) -> Option<T> {
        match &mut self.repr {
            Repr::Inline { len, slots } => {
                // Sorted position (first slot with key >= id).
                let mut pos = 0;
                while pos < *len {
                    let (k, _) = slots[pos].as_ref().expect("slot below len is occupied");
                    match (*k).cmp(&id) {
                        std::cmp::Ordering::Less => pos += 1,
                        std::cmp::Ordering::Equal => {
                            let (_, old) = slots[pos].replace((id, value)).expect("occupied");
                            return Some(old);
                        }
                        std::cmp::Ordering::Greater => break,
                    }
                }
                if *len < INLINE_CAP {
                    // Shift the tail one slot right, insert in order.
                    for j in (pos..*len).rev() {
                        slots[j + 1] = slots[j].take();
                    }
                    slots[pos] = Some((id, value));
                    *len += 1;
                    None
                } else {
                    // Promote: drain the inline array into a map.
                    let mut map = BTreeMap::new();
                    for slot in slots.iter_mut() {
                        let (k, v) = slot.take().expect("full inline array");
                        map.insert(k, v);
                    }
                    map.insert(id, value);
                    self.repr = Repr::Hub(map);
                    None
                }
            }
            Repr::Hub(map) => map.insert(id, value),
        }
    }

    /// Removes neighbor `id`, returning its payload. Demotes a hub back to
    /// the inline representation once it shrinks to
    /// [`DEMOTE_AT`](Self::DEMOTE_AT) entries.
    pub fn remove(&mut self, id: VertexId) -> Option<T> {
        match &mut self.repr {
            Repr::Inline { len, slots } => {
                let pos = slots[..*len]
                    .iter()
                    .position(|slot| slot.as_ref().expect("slot below len is occupied").0 == id)?;
                let (_, old) = slots[pos].take().expect("position found above");
                for j in pos..*len - 1 {
                    slots[j] = slots[j + 1].take();
                }
                *len -= 1;
                Some(old)
            }
            Repr::Hub(map) => {
                let old = map.remove(&id);
                if old.is_some() && map.len() <= DEMOTE_AT {
                    let map = std::mem::take(map);
                    let mut slots: [Option<(VertexId, T)>; INLINE_CAP] =
                        std::array::from_fn(|_| None);
                    let mut len = 0;
                    // BTreeMap iterates ascending, so the array stays sorted.
                    for (k, v) in map {
                        slots[len] = Some((k, v));
                        len += 1;
                    }
                    self.repr = Repr::Inline { len, slots };
                }
                old
            }
        }
    }

    /// Removes all neighbors, resetting to the inline representation.
    pub fn clear(&mut self) {
        *self = Self::new();
    }

    /// Iterates `(neighbor, &payload)` in ascending neighbor-id order.
    pub fn iter(&self) -> Iter<'_, T> {
        match &self.repr {
            Repr::Inline { len, slots } => Iter::Inline(slots[..*len].iter()),
            Repr::Hub(map) => Iter::Hub(map.iter()),
        }
    }

    /// Iterates neighbor ids in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.iter().map(|(id, _)| id)
    }

    /// Iterates payloads in ascending neighbor-id order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.iter().map(|(_, v)| v)
    }
}

/// Ascending-order iterator over a [`HybridAdjacency`].
pub enum Iter<'a, T> {
    /// Iterating the inline sorted array.
    Inline(std::slice::Iter<'a, Option<(VertexId, T)>>),
    /// Iterating the hub map.
    Hub(std::collections::btree_map::Iter<'a, VertexId, T>),
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (VertexId, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            Iter::Inline(it) => it.next().map(|slot| {
                let (k, v) = slot.as_ref().expect("slot below len is occupied");
                (*k, v)
            }),
            Iter::Hub(it) => it.next().map(|(k, v)| (*k, v)),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Iter::Inline(it) => it.size_hint(),
            Iter::Hub(it) => it.size_hint(),
        }
    }
}

impl<T> Default for HybridAdjacency<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for HybridAdjacency<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// Equality is on logical contents, independent of representation: an
/// inline adjacency equals a hub holding the same `(id, payload)` pairs.
impl<T: PartialEq> PartialEq for HybridAdjacency<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<T: Eq> Eq for HybridAdjacency<T> {}

impl<T> FromIterator<(VertexId, T)> for HybridAdjacency<T> {
    fn from_iter<I: IntoIterator<Item = (VertexId, T)>>(iter: I) -> Self {
        let mut adj = Self::new();
        for (id, value) in iter {
            adj.insert(id, value);
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(adj: &HybridAdjacency<u32>) -> Vec<u64> {
        adj.keys().map(|v| v.0).collect()
    }

    #[test]
    fn insert_get_remove_small() {
        let mut adj = HybridAdjacency::new();
        assert!(adj.is_empty());
        assert_eq!(adj.insert(VertexId(5), 50), None);
        assert_eq!(adj.insert(VertexId(1), 10), None);
        assert_eq!(adj.insert(VertexId(3), 30), None);
        assert!(adj.is_inline());
        assert_eq!(adj.len(), 3);
        assert_eq!(adj.get(VertexId(3)), Some(&30));
        assert_eq!(adj.get(VertexId(4)), None);
        assert_eq!(ids(&adj), [1, 3, 5]);
        assert_eq!(adj.remove(VertexId(3)), Some(30));
        assert_eq!(adj.remove(VertexId(3)), None);
        assert_eq!(ids(&adj), [1, 5]);
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut adj = HybridAdjacency::new();
        adj.insert(VertexId(1), 10);
        assert_eq!(adj.insert(VertexId(1), 11), Some(10));
        assert_eq!(adj.len(), 1);
        assert_eq!(adj.get(VertexId(1)), Some(&11));
        *adj.get_mut(VertexId(1)).unwrap() = 12;
        assert_eq!(adj.get(VertexId(1)), Some(&12));
    }

    #[test]
    fn promotes_past_inline_cap() {
        let mut adj = HybridAdjacency::new();
        for i in 0..HybridAdjacency::<u32>::INLINE_CAP as u64 {
            adj.insert(VertexId(i), i as u32);
            assert!(adj.is_inline());
        }
        adj.insert(VertexId(99), 99);
        assert!(!adj.is_inline());
        assert_eq!(adj.len(), INLINE_CAP + 1);
        // All entries survive the promotion, in order.
        let mut expect: Vec<u64> = (0..INLINE_CAP as u64).collect();
        expect.push(99);
        assert_eq!(ids(&adj), expect);
    }

    #[test]
    fn demotes_with_hysteresis() {
        let mut adj = HybridAdjacency::new();
        for i in 0..12u64 {
            adj.insert(VertexId(i), i as u32);
        }
        assert!(!adj.is_inline());
        // Shrinking to DEMOTE_AT + 1 keeps the hub (hysteresis band).
        while adj.len() > HybridAdjacency::<u32>::DEMOTE_AT + 1 {
            let first = adj.keys().next().unwrap();
            adj.remove(first);
        }
        assert!(!adj.is_inline());
        // One more removal crosses the threshold and demotes.
        let first = adj.keys().next().unwrap();
        adj.remove(first);
        assert!(adj.is_inline());
        assert_eq!(adj.len(), HybridAdjacency::<u32>::DEMOTE_AT);
        assert_eq!(ids(&adj), [8, 9, 10, 11]);
    }

    #[test]
    fn ascending_iteration_in_both_representations() {
        let mut inline: HybridAdjacency<u32> = HybridAdjacency::new();
        for i in [7u64, 2, 9, 4] {
            inline.insert(VertexId(i), 0);
        }
        assert!(inline.is_inline());
        assert_eq!(ids(&inline), [2, 4, 7, 9]);

        let mut hub: HybridAdjacency<u32> = HybridAdjacency::new();
        for i in [20u64, 3, 15, 8, 1, 12, 6, 18, 10, 4] {
            hub.insert(VertexId(i), 0);
        }
        assert!(!hub.is_inline());
        assert_eq!(ids(&hub), [1, 3, 4, 6, 8, 10, 12, 15, 18, 20]);
    }

    #[test]
    fn equality_ignores_representation() {
        let inline: HybridAdjacency<u32> = (0..4u64).map(|i| (VertexId(i), i as u32)).collect();
        let mut hub: HybridAdjacency<u32> = (0..12u64).map(|i| (VertexId(i), i as u32)).collect();
        for i in 4..12u64 {
            hub.remove(VertexId(i));
        }
        // hub demoted on the way down, but force the comparison anyway —
        // equality must hold whatever the internal representation.
        assert_eq!(inline, hub);
        assert_eq!(inline.len(), hub.len());
    }

    #[test]
    fn duplicate_inserts_never_promote() {
        let mut adj = HybridAdjacency::new();
        for _ in 0..100 {
            adj.insert(VertexId(1), 1u32);
            adj.insert(VertexId(2), 2u32);
        }
        assert!(adj.is_inline());
        assert_eq!(adj.len(), 2);
    }

    #[test]
    fn clear_resets_to_inline() {
        let mut adj: HybridAdjacency<u32> = (0..20u64).map(|i| (VertexId(i), 0)).collect();
        assert!(!adj.is_inline());
        adj.clear();
        assert!(adj.is_inline());
        assert!(adj.is_empty());
    }
}

#![warn(missing_docs)]

//! # gt-graph
//!
//! The evolving, directed, stateful property graph at the heart of the
//! GraphTides system model, plus:
//!
//! * strict/lenient application of graph stream events ([`apply`]),
//! * degree-adaptive per-vertex adjacency storage ([`hybrid`]),
//! * a compact read-only snapshot in CSR form for analytics ([`csr`]),
//! * classic bootstrap-graph builders — Barabási–Albert, Erdős–Rényi, and
//!   deterministic fixtures ([`builders`]),
//! * structural property measurements ([`properties`]).
//!
//! The graph follows the paper's model (§3.2 “Graph Types”): directed,
//! stateful vertices and edges, unique vertex IDs, no multigraphs, no self
//! loops. Undirected workloads are modeled by ignoring direction; stateless
//! ones by ignoring payloads.
//!
//! ```
//! use gt_core::prelude::*;
//! use gt_graph::EvolvingGraph;
//!
//! let mut g = EvolvingGraph::new();
//! g.apply(&GraphEvent::AddVertex { id: VertexId(1), state: State::empty() }).unwrap();
//! g.apply(&GraphEvent::AddVertex { id: VertexId(2), state: State::empty() }).unwrap();
//! g.apply(&GraphEvent::AddEdge {
//!     id: EdgeId::new(VertexId(1), VertexId(2)),
//!     state: State::weight(0.5),
//! }).unwrap();
//! assert_eq!(g.vertex_count(), 2);
//! assert_eq!(g.edge_count(), 1);
//! ```

pub mod apply;
pub mod builders;
pub mod csr;
pub mod graph;
pub mod hybrid;
pub mod properties;
pub mod snapshots;

pub use apply::{Applied, ApplyError, ApplyPolicy};
pub use csr::CsrSnapshot;
pub use graph::EvolvingGraph;
pub use hybrid::HybridAdjacency;
pub use properties::{DegreeDistribution, GraphProperties};
pub use snapshots::{Epoch, EpochDiff, SnapshotStore};

//! Event application semantics.
//!
//! The paper requires ordered, reliable, exactly-once streams because
//! "operations might fail due to violated preconditions caused by lost
//! preceding events" (§3.2). [`ApplyError`] enumerates exactly those
//! precondition violations; [`ApplyPolicy`] lets a system under test choose
//! whether to reject them ([`ApplyPolicy::Strict`]) or skip/coerce them the
//! way a lenient platform would ([`ApplyPolicy::Lenient`]) — which is what
//! makes fault-injected streams (drops, duplicates, reordering) replayable.

use std::fmt;

use gt_core::prelude::*;

/// Why a graph event could not be applied under strict semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApplyError {
    /// `ADD_VERTEX` for an id that already exists.
    VertexExists(VertexId),
    /// Operation referenced a vertex that does not exist.
    MissingVertex(VertexId),
    /// `ADD_EDGE` for an edge that already exists (no multigraphs).
    EdgeExists(EdgeId),
    /// Operation referenced an edge that does not exist.
    MissingEdge(EdgeId),
    /// `ADD_EDGE` with identical endpoints (no self loops).
    SelfLoop(VertexId),
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::VertexExists(v) => write!(f, "vertex {v} already exists"),
            ApplyError::MissingVertex(v) => write!(f, "vertex {v} does not exist"),
            ApplyError::EdgeExists(e) => write!(f, "edge {e} already exists"),
            ApplyError::MissingEdge(e) => write!(f, "edge {e} does not exist"),
            ApplyError::SelfLoop(v) => write!(f, "self loop on vertex {v} is not allowed"),
        }
    }
}

impl std::error::Error for ApplyError {}

/// How the graph reacts to precondition violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApplyPolicy {
    /// Reject the event with an [`ApplyError`]. This is the reference
    /// semantics for reliable, exactly-once streams.
    #[default]
    Strict,
    /// Tolerate violations the way a forgiving platform would:
    /// duplicate adds and updates of missing entities become no-ops;
    /// removes of missing entities become no-ops; edges to missing
    /// vertices are dropped. Self loops are always rejected.
    Lenient,
}

/// The outcome of successfully applying an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Applied {
    /// Whether the event changed the graph at all (lenient no-ops report
    /// `false`).
    pub mutated: bool,
    /// Incident edges removed as a side effect of `REMOVE_VERTEX`.
    pub cascaded_edge_removals: usize,
}

impl Applied {
    /// An application that changed the graph, with no cascades.
    pub fn mutated() -> Self {
        Applied {
            mutated: true,
            cascaded_edge_removals: 0,
        }
    }

    /// A lenient no-op.
    pub fn noop() -> Self {
        Applied::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ApplyError::VertexExists(VertexId(1)).to_string(),
            "vertex 1 already exists"
        );
        assert_eq!(
            ApplyError::MissingEdge(EdgeId::from((1, 2))).to_string(),
            "edge 1-2 does not exist"
        );
        assert_eq!(
            ApplyError::SelfLoop(VertexId(7)).to_string(),
            "self loop on vertex 7 is not allowed"
        );
    }

    #[test]
    fn default_policy_is_strict() {
        assert_eq!(ApplyPolicy::default(), ApplyPolicy::Strict);
    }
}

//! Structural graph property measurements (§3.2 "Graph Evolution
//! Properties"): vertex/edge counts, degree distributions, and density.
//! Temporal property tracking over a stream lives in `gt-analysis`; these
//! are the per-snapshot structural measures.

use std::collections::BTreeMap;

use gt_core::prelude::*;

use crate::graph::EvolvingGraph;

/// A degree histogram: `degree -> number of vertices`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DegreeDistribution {
    counts: BTreeMap<usize, usize>,
    total_vertices: usize,
}

impl DegreeDistribution {
    /// Builds the total-degree (in + out) distribution.
    pub fn total(graph: &EvolvingGraph) -> Self {
        Self::build(graph, |g, v| g.degree(v).unwrap_or(0))
    }

    /// Builds the out-degree distribution.
    pub fn out(graph: &EvolvingGraph) -> Self {
        Self::build(graph, |g, v| g.out_degree(v).unwrap_or(0))
    }

    /// Builds the in-degree distribution.
    pub fn incoming(graph: &EvolvingGraph) -> Self {
        Self::build(graph, |g, v| g.in_degree(v).unwrap_or(0))
    }

    fn build(graph: &EvolvingGraph, f: impl Fn(&EvolvingGraph, VertexId) -> usize) -> Self {
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for v in graph.vertices() {
            *counts.entry(f(graph, v)).or_insert(0) += 1;
        }
        DegreeDistribution {
            counts,
            total_vertices: graph.vertex_count(),
        }
    }

    /// Vertices with exactly this degree.
    pub fn count(&self, degree: usize) -> usize {
        self.counts.get(&degree).copied().unwrap_or(0)
    }

    /// The largest observed degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.counts.keys().next_back().copied().unwrap_or(0)
    }

    /// The smallest observed degree (0 for an empty graph).
    pub fn min_degree(&self) -> usize {
        self.counts.keys().next().copied().unwrap_or(0)
    }

    /// Mean degree over all vertices.
    pub fn mean(&self) -> f64 {
        if self.total_vertices == 0 {
            return 0.0;
        }
        let sum: usize = self.counts.iter().map(|(d, c)| d * c).sum();
        sum as f64 / self.total_vertices as f64
    }

    /// Iterates over `(degree, count)` in ascending degree order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.counts.iter().map(|(&d, &c)| (d, c))
    }

    /// Complementary cumulative distribution: fraction of vertices with
    /// degree ≥ `d`.
    pub fn ccdf(&self, d: usize) -> f64 {
        if self.total_vertices == 0 {
            return 0.0;
        }
        let at_least: usize = self.counts.range(d..).map(|(_, &c)| c).sum();
        at_least as f64 / self.total_vertices as f64
    }
}

/// A bundle of global structural properties of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphProperties {
    /// Vertex count.
    pub vertices: usize,
    /// Directed edge count.
    pub edges: usize,
    /// Edge density relative to `n * (n - 1)` possible directed edges.
    pub density: f64,
    /// Mean total degree.
    pub mean_degree: f64,
    /// Maximum total degree.
    pub max_degree: usize,
}

impl GraphProperties {
    /// Measures the given graph.
    pub fn measure(graph: &EvolvingGraph) -> Self {
        let n = graph.vertex_count();
        let m = graph.edge_count();
        let possible = if n > 1 { (n * (n - 1)) as f64 } else { 0.0 };
        let dist = DegreeDistribution::total(graph);
        GraphProperties {
            vertices: n,
            edges: m,
            density: if possible > 0.0 {
                m as f64 / possible
            } else {
                0.0
            },
            mean_degree: dist.mean(),
            max_degree: dist.max_degree(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn star_distribution() {
        let g = builders::materialize(&builders::star(5));
        let dist = DegreeDistribution::total(&g);
        // Center has degree 4, spokes degree 1.
        assert_eq!(dist.count(4), 1);
        assert_eq!(dist.count(1), 4);
        assert_eq!(dist.max_degree(), 4);
        assert_eq!(dist.min_degree(), 1);
        assert!((dist.mean() - 8.0 / 5.0).abs() < 1e-12);

        let out = DegreeDistribution::out(&g);
        assert_eq!(out.count(4), 1);
        assert_eq!(out.count(0), 4);
        let inc = DegreeDistribution::incoming(&g);
        assert_eq!(inc.count(0), 1);
        assert_eq!(inc.count(1), 4);
    }

    #[test]
    fn ccdf_is_monotone() {
        let g = builders::materialize(&builders::star(10));
        let dist = DegreeDistribution::total(&g);
        assert_eq!(dist.ccdf(0), 1.0);
        assert!(dist.ccdf(1) >= dist.ccdf(2));
        assert_eq!(dist.ccdf(dist.max_degree() + 1), 0.0);
    }

    #[test]
    fn properties_of_complete_graph() {
        let g = builders::materialize(&builders::complete(6));
        let p = GraphProperties::measure(&g);
        assert_eq!(p.vertices, 6);
        assert_eq!(p.edges, 30);
        assert!((p.density - 1.0).abs() < 1e-12);
        assert_eq!(p.max_degree, 10);
        assert!((p.mean_degree - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_properties() {
        let p = GraphProperties::measure(&EvolvingGraph::new());
        assert_eq!(p.vertices, 0);
        assert_eq!(p.edges, 0);
        assert_eq!(p.density, 0.0);
        assert_eq!(p.mean_degree, 0.0);
        let dist = DegreeDistribution::total(&EvolvingGraph::new());
        assert_eq!(dist.mean(), 0.0);
        assert_eq!(dist.ccdf(0), 0.0);
    }
}

//! Property-based tests of the evolving graph: arbitrary *valid* event
//! sequences keep the invariants (reverse index consistent, no dangling
//! edges, counts accurate), and arbitrary *hostile* event sequences applied
//! leniently never corrupt the graph.

use gt_core::prelude::*;
use gt_graph::{ApplyPolicy, EvolvingGraph};
use proptest::prelude::*;

/// An arbitrary event over a small id universe — most will violate
/// preconditions, which is the point for the lenient test.
fn arbitrary_event() -> impl Strategy<Value = GraphEvent> {
    let vid = (0u64..20).prop_map(VertexId);
    let eid = ((0u64..20), (0u64..20)).prop_map(EdgeId::from);
    prop_oneof![
        (vid.clone(), "[a-z]{0,6}").prop_map(|(id, s)| GraphEvent::AddVertex {
            id,
            state: State::new(s)
        }),
        vid.clone().prop_map(|id| GraphEvent::RemoveVertex { id }),
        (vid, "[a-z]{0,6}").prop_map(|(id, s)| GraphEvent::UpdateVertex {
            id,
            state: State::new(s)
        }),
        (eid.clone(), "[a-z]{0,6}").prop_map(|(id, s)| GraphEvent::AddEdge {
            id,
            state: State::new(s)
        }),
        eid.clone().prop_map(|id| GraphEvent::RemoveEdge { id }),
        (eid, "[a-z]{0,6}").prop_map(|(id, s)| GraphEvent::UpdateEdge {
            id,
            state: State::new(s)
        }),
    ]
}

proptest! {
    /// Lenient application of any event sequence keeps internal invariants.
    #[test]
    fn lenient_application_never_corrupts(events in proptest::collection::vec(arbitrary_event(), 0..200)) {
        let mut g = EvolvingGraph::new();
        for event in &events {
            match g.apply_with(event, ApplyPolicy::Lenient) {
                Ok(_) => {}
                // Self loops are the only error lenient mode reports.
                Err(e) => prop_assert!(matches!(e, gt_graph::ApplyError::SelfLoop(_))),
            }
        }
        prop_assert!(g.check_invariants().is_ok(), "{:?}", g.check_invariants());
    }

    /// Replaying the accepted prefix of events strictly gives the same graph.
    #[test]
    fn lenient_equals_strict_on_accepted_events(events in proptest::collection::vec(arbitrary_event(), 0..150)) {
        let mut lenient = EvolvingGraph::new();
        let mut accepted = Vec::new();
        for event in &events {
            if let Ok(applied) = lenient.apply_with(event, ApplyPolicy::Lenient) {
                if applied.mutated {
                    accepted.push(event.clone());
                }
            }
        }
        let mut strict = EvolvingGraph::new();
        for event in &accepted {
            strict.apply(event).expect("accepted events must replay strictly");
        }
        prop_assert_eq!(strict.vertex_count(), lenient.vertex_count());
        prop_assert_eq!(strict.edge_count(), lenient.edge_count());
        // Full state equivalence, not only counts.
        let sv: Vec<_> = strict.vertices_with_state().map(|(v, s)| (v, s.clone())).collect();
        let lv: Vec<_> = lenient.vertices_with_state().map(|(v, s)| (v, s.clone())).collect();
        prop_assert_eq!(sv, lv);
        let se: Vec<_> = strict.edges().map(|(e, s)| (e, s.clone())).collect();
        let le: Vec<_> = lenient.edges().map(|(e, s)| (e, s.clone())).collect();
        prop_assert_eq!(se, le);
    }

    /// Degree sums always equal edge counts.
    #[test]
    fn degree_sums_match_edges(events in proptest::collection::vec(arbitrary_event(), 0..200)) {
        let mut g = EvolvingGraph::new();
        for event in &events {
            let _ = g.apply_with(event, ApplyPolicy::Lenient);
        }
        let out_sum: usize = g.vertices().map(|v| g.out_degree(v).unwrap()).sum();
        let in_sum: usize = g.vertices().map(|v| g.in_degree(v).unwrap()).sum();
        prop_assert_eq!(out_sum, g.edge_count());
        prop_assert_eq!(in_sum, g.edge_count());
    }

    /// CSR snapshots mirror the graph they were taken from.
    #[test]
    fn csr_matches_graph(events in proptest::collection::vec(arbitrary_event(), 0..150)) {
        let mut g = EvolvingGraph::new();
        for event in &events {
            let _ = g.apply_with(event, ApplyPolicy::Lenient);
        }
        let csr = gt_graph::CsrSnapshot::from_graph(&g);
        prop_assert_eq!(csr.vertex_count(), g.vertex_count());
        prop_assert_eq!(csr.edge_count(), g.edge_count());
        for idx in csr.indices() {
            let id = csr.id_of(idx);
            prop_assert_eq!(csr.out_degree(idx), g.out_degree(id).unwrap());
            prop_assert_eq!(csr.in_degree(idx), g.in_degree(id).unwrap());
            let csr_out: Vec<VertexId> =
                csr.out_neighbors(idx).iter().map(|&i| csr.id_of(i)).collect();
            let g_out: Vec<VertexId> = g.out_neighbors(id).collect();
            prop_assert_eq!(csr_out, g_out);
        }
    }
}

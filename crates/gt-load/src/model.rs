//! Client models: how a load client couples its arrivals to SUT progress.

use std::fmt;
use std::str::FromStr;

/// How a client couples event arrivals to SUT progress.
///
/// The distinction decides what a latency number means when the SUT
/// falls behind (the coordinated-omission problem): an open-loop client
/// keeps offering load on schedule and charges the SUT for queueing
/// delay, a closed-loop client silently stops offering and reports only
/// service time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopModel {
    /// Arrivals follow the precomputed schedule regardless of SUT
    /// progress; un-acked events queue client-side as counted backlog.
    Open,
    /// The next event is sent only after the previous write completed
    /// (send-after-ack); the schedule supplies think time between sends.
    Closed,
    /// Open-loop arrivals, but the generator stalls once the un-acked
    /// backlog reaches `window` events, bounding client memory at the
    /// cost of schedule slip under sustained overload.
    PartialOpen {
        /// Maximum un-acked events queued client-side before the
        /// generator stalls.
        window: usize,
    },
}

impl LoopModel {
    /// Whether arrivals decouple from SUT progress (open and partial-open).
    pub fn is_open(&self) -> bool {
        !matches!(self, LoopModel::Closed)
    }
}

impl fmt::Display for LoopModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoopModel::Open => f.write_str("open"),
            LoopModel::Closed => f.write_str("closed"),
            LoopModel::PartialOpen { window } => write!(f, "partial:{window}"),
        }
    }
}

impl FromStr for LoopModel {
    type Err = String;

    /// Parses `open`, `closed`, or `partial:<window>`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "open" => Ok(LoopModel::Open),
            "closed" => Ok(LoopModel::Closed),
            other => match other.strip_prefix("partial:") {
                Some(window) => {
                    let window: usize = window
                        .parse()
                        .map_err(|e| format!("bad partial-open window `{window}`: {e}"))?;
                    if window == 0 {
                        return Err("partial-open window must be positive".into());
                    }
                    Ok(LoopModel::PartialOpen { window })
                }
                None => Err(format!(
                    "unknown loop model `{other}` (expected open, closed, or partial:<window>)"
                )),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_models() {
        assert_eq!("open".parse::<LoopModel>().unwrap(), LoopModel::Open);
        assert_eq!("closed".parse::<LoopModel>().unwrap(), LoopModel::Closed);
        assert_eq!(
            "partial:128".parse::<LoopModel>().unwrap(),
            LoopModel::PartialOpen { window: 128 }
        );
    }

    #[test]
    fn rejects_malformed_models() {
        assert!("halfopen".parse::<LoopModel>().is_err());
        assert!("partial:0".parse::<LoopModel>().is_err());
        assert!("partial:x".parse::<LoopModel>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for model in [
            LoopModel::Open,
            LoopModel::Closed,
            LoopModel::PartialOpen { window: 7 },
        ] {
            assert_eq!(model.to_string().parse::<LoopModel>().unwrap(), model);
        }
    }

    #[test]
    fn openness() {
        assert!(LoopModel::Open.is_open());
        assert!(LoopModel::PartialOpen { window: 1 }.is_open());
        assert!(!LoopModel::Closed.is_open());
    }
}

//! The SUT-side multi-connection listener.
//!
//! Replaces the single-accept TCP front-end
//! ([`gt_replayer::spawn_tcp_source`]) for load runs: a nonblocking
//! accept loop admits N client connections, one reader thread per
//! connection parses the line protocol and feeds a *per-connection*
//! platform connector through the batched [`EventSink`] path, and a
//! marker barrier re-establishes the total marker order the single
//! connection used to provide for free.
//!
//! # Marker ordering
//!
//! The load partitioner broadcasts every marker to every substream, so
//! each connection carries the same marker sequence interleaved with its
//! share of the graph events. When a reader hits its k-th marker it
//! flushes its connector (everything it streamed before the marker is
//! now in the platform) and arrives at barrier k; the last arriver
//! forwards the marker — exactly once — through a dedicated control
//! connector and releases the others. No event that follows marker k on
//! any connection is delivered before marker k itself: the platform's
//! existing sequencer therefore sees markers totally ordered against all
//! events, exactly as in single-connection replay. Connections that
//! disconnect early are excused from later barriers; a connection whose
//! k-th marker name disagrees with the sequence is counted as a marker
//! violation.

use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use gt_core::format::parse_line;
use gt_core::prelude::*;
use gt_metrics::Clock;
use gt_replayer::EventSink;

/// How a listener builds one platform connector per accepted connection.
pub type ConnectorFn = Box<dyn FnMut() -> io::Result<Box<dyn EventSink + Send>> + Send>;

/// Events per batch handed to a connector's [`EventSink::send_batch`].
const READER_BATCH: usize = 64;

/// Connection-lifecycle tuning for a load listener.
///
/// The defaults are generous enough that healthy runs never trip them; they
/// exist so a partitioned or killed client degrades typed — a
/// `connections_lost` counter plus a degradation record — instead of wedging
/// the marker barrier or the reader join forever.
#[derive(Debug, Clone, Copy)]
pub struct ListenerConfig {
    /// Per-read socket timeout; the granularity at which readers notice
    /// stalls and stop requests.
    pub read_timeout: Duration,
    /// Continuous idle time after which a reader counts one stall episode.
    pub stall_warn: Duration,
    /// Continuous idle time after which a reader gives its connection up
    /// for dead.
    pub stall_limit: Duration,
    /// How long an arrived reader waits at a marker barrier before the
    /// laggards are excused and the marker quorum-forwards.
    pub barrier_deadline: Duration,
}

impl Default for ListenerConfig {
    fn default() -> Self {
        ListenerConfig {
            read_timeout: Duration::from_millis(100),
            stall_warn: Duration::from_secs(1),
            stall_limit: Duration::from_secs(10),
            barrier_deadline: Duration::from_secs(15),
        }
    }
}

/// What the listener saw over a whole run.
#[derive(Debug, Clone, Default)]
pub struct ListenerReport {
    /// Connections accepted.
    pub connections: u64,
    /// Stream entries parsed across all connections.
    pub entries: u64,
    /// Graph events delivered to connectors.
    pub graph_events: u64,
    /// Lines that failed to parse (counted, not fatal).
    pub parse_errors: u64,
    /// Markers forwarded, in delivery order, with run-clock timestamps.
    pub markers: Vec<(String, u64)>,
    /// Marker-sequence disagreements between connections.
    pub marker_violations: u64,
    /// Connections excused from the run after dying, stalling past the
    /// stall limit, or holding a marker barrier past its deadline.
    pub connections_lost: u64,
    /// Stall episodes (continuous idle past `stall_warn`) across readers.
    pub reader_stalls: u64,
    /// Typed degradations, `(description, t_micros)` in occurrence order.
    pub degradations: Vec<(String, u64)>,
}

/// Shared marker-barrier state.
struct BarrierInner {
    /// Markers each connection has announced.
    reached: Vec<u64>,
    /// Whether each connection is still reading.
    active: Vec<bool>,
    /// Markers forwarded to the control connector so far.
    delivered: u64,
    /// The marker-name sequence, as first announced.
    names: Vec<String>,
    /// Name disagreements seen.
    violations: u64,
    /// `(name, t_micros)` per forwarded marker.
    log: Vec<(String, u64)>,
    /// Set when the control connector failed; readers give up waiting.
    poisoned: bool,
    /// Connections excused after dying or stalling.
    lost: u64,
    /// Per-connection flag: already counted in `lost` (prevents a stall
    /// give-up after a deadline excusal from double-counting).
    lost_counted: Vec<bool>,
    /// Typed degradation records, `(description, t_micros)`.
    degradations: Vec<(String, u64)>,
}

struct Barrier {
    inner: Mutex<BarrierInner>,
    cond: Condvar,
    control: Mutex<Box<dyn EventSink + Send>>,
    clock: Arc<dyn Clock>,
    /// Max wait at one barrier before laggards are excused.
    deadline: Duration,
}

impl Barrier {
    fn new(
        connections: usize,
        control: Box<dyn EventSink + Send>,
        clock: Arc<dyn Clock>,
        deadline: Duration,
    ) -> Self {
        Barrier {
            inner: Mutex::new(BarrierInner {
                reached: vec![0; connections],
                active: vec![true; connections],
                delivered: 0,
                names: Vec::new(),
                violations: 0,
                log: Vec::new(),
                poisoned: false,
                lost: 0,
                lost_counted: vec![false; connections],
                degradations: Vec::new(),
            }),
            cond: Condvar::new(),
            control: Mutex::new(control),
            clock,
            deadline,
        }
    }

    /// Forwards every marker all active connections have passed. Called
    /// with the state lock held; takes the control-sink lock inside.
    fn deliver_ready(&self, inner: &mut BarrierInner) {
        loop {
            let next = inner.delivered;
            if (next as usize) >= inner.names.len() {
                return;
            }
            let all_arrived = inner
                .reached
                .iter()
                .zip(&inner.active)
                .filter(|&(_, active)| *active)
                .all(|(&reached, _)| reached > next);
            if !all_arrived {
                return;
            }
            let name = inner.names[next as usize].clone();
            let marker = StreamEntry::marker(name.clone());
            let mut control = self.control.lock().unwrap();
            let sent = control.send(&marker).and_then(|()| control.flush());
            drop(control);
            if sent.is_err() {
                inner.poisoned = true;
                self.cond.notify_all();
                return;
            }
            inner.log.push((name, self.clock.now_micros()));
            inner.delivered += 1;
            self.cond.notify_all();
        }
    }

    /// Connection `conn` announced its next marker `name`; blocks until
    /// that marker has been forwarded (or the barrier is poisoned).
    fn arrive(&self, conn: usize, name: &str) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.reached[conn] += 1;
        let k = inner.reached[conn];
        if inner.names.len() < k as usize {
            inner.names.push(name.to_owned());
        } else if inner.names[k as usize - 1] != name {
            inner.violations += 1;
        }
        self.deliver_ready(&mut inner);
        while inner.delivered < k && !inner.poisoned {
            let (guard, timeout) = self.cond.wait_timeout(inner, self.deadline).unwrap();
            inner = guard;
            if timeout.timed_out() && inner.delivered < k && !inner.poisoned {
                // Deadline: some active connection never arrived at barrier
                // `delivered + 1`. Excuse the laggards and quorum-forward so
                // the run degrades typed instead of hanging.
                let next = inner.delivered;
                let excused: Vec<usize> = (0..inner.reached.len())
                    .filter(|&i| inner.active[i] && inner.reached[i] <= next)
                    .collect();
                if excused.is_empty() {
                    continue;
                }
                for &i in &excused {
                    inner.active[i] = false;
                    inner.lost += 1;
                    inner.lost_counted[i] = true;
                }
                inner.degradations.push((
                    format!(
                        "barrier_deadline: excused connections {excused:?} \
                         waiting for marker {}",
                        next + 1
                    ),
                    self.clock.now_micros(),
                ));
                self.deliver_ready(&mut inner);
                self.cond.notify_all();
            }
        }
        if inner.poisoned {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "marker control connector failed",
            ));
        }
        Ok(())
    }

    /// Connection `conn` finished; later barriers no longer wait for it.
    fn leave(&self, conn: usize) {
        let mut inner = self.inner.lock().unwrap();
        inner.active[conn] = false;
        self.deliver_ready(&mut inner);
        self.cond.notify_all();
    }

    /// Connection `conn` died or stalled out: excuse it and record a typed
    /// degradation so the run completes with evidence instead of an error.
    fn abandon(&self, conn: usize, reason: &str) {
        let mut inner = self.inner.lock().unwrap();
        inner.active[conn] = false;
        if !inner.lost_counted[conn] {
            inner.lost += 1;
            inner.lost_counted[conn] = true;
        }
        inner.degradations.push((
            format!("connection {conn} lost: {reason}"),
            self.clock.now_micros(),
        ));
        self.deliver_ready(&mut inner);
        self.cond.notify_all();
    }

    fn finish(&self) -> BarrierOutcome {
        let mut inner = self.inner.lock().unwrap();
        // Every connection carries every marker, so a connection that ended
        // (even with a clean EOF — which is what a netem kill looks like
        // from this side of the proxy) having announced fewer markers than
        // the stream contains died mid-stream. Count it as lost.
        let total = inner.names.len() as u64;
        for conn in 0..inner.reached.len() {
            if !inner.lost_counted[conn] && inner.reached[conn] < total {
                inner.lost += 1;
                inner.lost_counted[conn] = true;
                let announced = inner.reached[conn];
                inner.degradations.push((
                    format!(
                        "connection {conn} ended early: announced {announced} \
                         of {total} markers"
                    ),
                    self.clock.now_micros(),
                ));
            }
        }
        BarrierOutcome {
            markers: inner.log.clone(),
            violations: inner.violations,
            lost: inner.lost,
            degradations: inner.degradations.clone(),
        }
    }
}

/// What the marker barrier observed over the whole run, drained once at
/// listener shutdown.
struct BarrierOutcome {
    markers: Vec<(String, u64)>,
    violations: u64,
    lost: u64,
    degradations: Vec<(String, u64)>,
}

/// Per-run totals shared by the reader threads.
#[derive(Default)]
struct Totals {
    entries: AtomicU64,
    graph_events: AtomicU64,
    parse_errors: AtomicU64,
    reader_stalls: AtomicU64,
}

/// A bound, not-yet-started multi-connection listener.
pub struct LoadListener {
    listener: TcpListener,
}

impl LoadListener {
    /// Binds on an OS-assigned localhost port.
    pub fn bind() -> io::Result<Self> {
        Self::bind_to("127.0.0.1:0")
    }

    /// Binds on an explicit address.
    pub fn bind_to(addr: &str) -> io::Result<Self> {
        Ok(LoadListener {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address clients connect to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the accept loop: admits exactly `expected` connections,
    /// building one platform connector per connection via `connect` (plus
    /// one up-front control connector for markers), and returns a handle
    /// to join for the final report.
    pub fn start(
        self,
        expected: usize,
        connect: ConnectorFn,
        clock: Arc<dyn Clock>,
    ) -> io::Result<ListenerHandle> {
        self.start_with_config(expected, connect, clock, ListenerConfig::default())
    }

    /// [`LoadListener::start`] with explicit connection-lifecycle tuning.
    pub fn start_with_config(
        self,
        expected: usize,
        mut connect: ConnectorFn,
        clock: Arc<dyn Clock>,
        config: ListenerConfig,
    ) -> io::Result<ListenerHandle> {
        let control = connect()?;
        let barrier = Arc::new(Barrier::new(
            expected,
            control,
            clock,
            config.barrier_deadline,
        ));
        let totals = Arc::new(Totals::default());
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_barrier = Arc::clone(&barrier);
        let accept_totals = Arc::clone(&totals);
        let listener = self.listener;
        listener.set_nonblocking(true)?;
        let handle = thread::Builder::new()
            .name("gt-load-accept".into())
            .spawn(move || {
                accept_loop(
                    listener,
                    expected,
                    &mut connect,
                    accept_barrier,
                    accept_totals,
                    accept_stop,
                    config,
                )
            })?;
        Ok(ListenerHandle { handle, stop })
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    expected: usize,
    connect: &mut ConnectorFn,
    barrier: Arc<Barrier>,
    totals: Arc<Totals>,
    stop: Arc<AtomicBool>,
    config: ListenerConfig,
) -> io::Result<ListenerReport> {
    let mut readers = Vec::with_capacity(expected);
    while readers.len() < expected && !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nodelay(true).ok();
                let conn = readers.len();
                let sink = connect()?;
                let barrier = Arc::clone(&barrier);
                let totals = Arc::clone(&totals);
                readers.push(
                    thread::Builder::new()
                        .name(format!("gt-load-reader-{conn}"))
                        .spawn(move || {
                            reader_loop(conn, stream, sink, &barrier, &totals, config)
                        })?,
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
    let accepted = readers.len();
    let mut first_error = None;
    for reader in readers {
        match reader.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => first_error = first_error.or(Some(e)),
            Err(_) => {
                first_error =
                    first_error.or_else(|| Some(io::Error::other("listener reader panicked")))
            }
        }
    }
    {
        let mut control = barrier.control.lock().unwrap();
        control.close()?;
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    let outcome = barrier.finish();
    Ok(ListenerReport {
        connections: accepted as u64,
        entries: totals.entries.load(Ordering::Relaxed),
        graph_events: totals.graph_events.load(Ordering::Relaxed),
        parse_errors: totals.parse_errors.load(Ordering::Relaxed),
        markers: outcome.markers,
        marker_violations: outcome.violations,
        connections_lost: outcome.lost,
        reader_stalls: totals.reader_stalls.load(Ordering::Relaxed),
        degradations: outcome.degradations,
    })
}

/// Why a reader stopped short of a clean EOF.
enum ReadAbort {
    /// The client-side connection died or stalled out: a degradation, not a
    /// run failure.
    Stream(io::Error),
    /// The platform connector (or the marker control path) failed: fatal —
    /// the measurement itself is broken.
    Sink(io::Error),
}

/// Reads one connection to EOF, feeding the batched connector path.
/// Stream-side failures abandon the connection with a typed degradation;
/// sink-side failures propagate as run errors.
fn reader_loop(
    conn: usize,
    stream: TcpStream,
    mut sink: Box<dyn EventSink + Send>,
    barrier: &Barrier,
    totals: &Totals,
    config: ListenerConfig,
) -> io::Result<()> {
    let result = read_connection(conn, stream, &mut sink, barrier, totals, config);
    match &result {
        Ok(()) => barrier.leave(conn),
        Err(ReadAbort::Stream(e)) => barrier.abandon(conn, &e.to_string()),
        Err(ReadAbort::Sink(_)) => barrier.leave(conn),
    }
    let close = sink.close();
    match result {
        Ok(()) => close,
        Err(ReadAbort::Stream(_)) => Ok(()),
        Err(ReadAbort::Sink(e)) => Err(e),
    }
}

fn read_connection(
    conn: usize,
    stream: TcpStream,
    sink: &mut Box<dyn EventSink + Send>,
    barrier: &Barrier,
    totals: &Totals,
    config: ListenerConfig,
) -> Result<(), ReadAbort> {
    sink.open().map_err(ReadAbort::Sink)?;
    stream
        .set_read_timeout(Some(config.read_timeout))
        .map_err(ReadAbort::Stream)?;
    let mut reader = BufReader::new(stream);
    let mut batch: Vec<SharedEntry> = Vec::with_capacity(READER_BATCH);
    // One reused line buffer per connection instead of `BufRead::lines`'s
    // fresh `String` per line — under `--clients M` the fan-in side would
    // otherwise allocate per event per connection.
    let mut line = String::with_capacity(128);
    // Continuous idle time; one stall episode is counted per continuous
    // stretch past `stall_warn`, and `stall_limit` gives the connection up.
    let mut idle = Duration::ZERO;
    let mut stall_counted = false;
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                idle = Duration::ZERO;
                stall_counted = false;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Valid-UTF-8 partial bytes stay in `line` across timeouts;
                // the next successful read completes the same line.
                idle += config.read_timeout;
                if !stall_counted && idle >= config.stall_warn {
                    totals.reader_stalls.fetch_add(1, Ordering::Relaxed);
                    stall_counted = true;
                }
                if idle >= config.stall_limit {
                    return Err(ReadAbort::Stream(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("reader idle for {:.1}s, giving up", idle.as_secs_f64()),
                    )));
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // The whole physical line (delimiter included) was consumed
                // and discarded by the UTF-8 check; drop any stale partial
                // prefix of the same line and count one reject.
                totals.parse_errors.fetch_add(1, Ordering::Relaxed);
                line.clear();
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadAbort::Stream(e)),
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        let entry = match parse_line(trimmed) {
            Ok(Some(entry)) => entry,
            Ok(None) => {
                line.clear();
                continue;
            }
            Err(_) => {
                totals.parse_errors.fetch_add(1, Ordering::Relaxed);
                line.clear();
                continue;
            }
        };
        line.clear();
        totals.entries.fetch_add(1, Ordering::Relaxed);
        match &entry {
            StreamEntry::Graph(_) => {
                batch.push(SharedEntry::new(entry));
                if batch.len() >= READER_BATCH {
                    totals
                        .graph_events
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    sink.send_batch(&batch).map_err(ReadAbort::Sink)?;
                    batch.clear();
                }
            }
            StreamEntry::Marker(name) => {
                if !batch.is_empty() {
                    totals
                        .graph_events
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    sink.send_batch(&batch).map_err(ReadAbort::Sink)?;
                    batch.clear();
                }
                sink.flush().map_err(ReadAbort::Sink)?;
                let name = name.clone();
                barrier.arrive(conn, &name).map_err(ReadAbort::Sink)?;
            }
            StreamEntry::Control(_) => {
                // Control events are per-connection pacing hints; forward
                // them in position on this connection's connector.
                if !batch.is_empty() {
                    totals
                        .graph_events
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    sink.send_batch(&batch).map_err(ReadAbort::Sink)?;
                    batch.clear();
                }
                sink.send(&entry).map_err(ReadAbort::Sink)?;
            }
        }
    }
    if !batch.is_empty() {
        totals
            .graph_events
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        sink.send_batch(&batch).map_err(ReadAbort::Sink)?;
        batch.clear();
    }
    sink.flush().map_err(ReadAbort::Sink)
}

/// A running listener; join it after the clients finish.
pub struct ListenerHandle {
    handle: thread::JoinHandle<io::Result<ListenerReport>>,
    stop: Arc<AtomicBool>,
}

impl ListenerHandle {
    /// Asks the accept loop to stop admitting new connections.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Waits for all connections to finish and returns the report.
    pub fn join(self) -> io::Result<ListenerReport> {
        self.handle
            .join()
            .map_err(|_| io::Error::other("listener accept thread panicked"))?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::format::entry_to_line;
    use gt_metrics::WallClock;
    use std::io::Write;
    use std::sync::Mutex as StdMutex;

    /// A connector collecting everything into a shared, tagged log.
    #[derive(Clone)]
    struct SharedCollect {
        log: Arc<StdMutex<Vec<(usize, StreamEntry)>>>,
        tag: usize,
    }

    impl EventSink for SharedCollect {
        fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
            self.log.lock().unwrap().push((self.tag, entry.clone()));
            Ok(())
        }

        fn send_batch(&mut self, batch: &[SharedEntry]) -> io::Result<()> {
            let mut log = self.log.lock().unwrap();
            for entry in batch {
                log.push((self.tag, (**entry).clone()));
            }
            Ok(())
        }
    }

    fn write_lines(stream: &mut TcpStream, entries: &[StreamEntry]) {
        for entry in entries {
            let mut line = entry_to_line(entry);
            line.push('\n');
            stream.write_all(line.as_bytes()).unwrap();
        }
        stream.flush().unwrap();
    }

    #[test]
    fn markers_totally_ordered_across_connections() {
        let log = Arc::new(StdMutex::new(Vec::new()));
        let listener = LoadListener::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
        let connectors = Arc::new(StdMutex::new(0usize));
        let factory_log = Arc::clone(&log);
        let handle = listener
            .start(
                3,
                Box::new(move || {
                    let mut n = connectors.lock().unwrap();
                    let tag = *n;
                    *n += 1;
                    Ok(Box::new(SharedCollect {
                        log: Arc::clone(&factory_log),
                        tag,
                    }) as Box<dyn EventSink + Send>)
                }),
                clock,
            )
            .unwrap();

        let mut streams: Vec<TcpStream> =
            (0..3).map(|_| TcpStream::connect(addr).unwrap()).collect();
        // Each connection: its own events, then the same two markers,
        // then more events after the first marker.
        for (i, stream) in streams.iter_mut().enumerate() {
            let base = (i as u64) * 100;
            let mut entries = Vec::new();
            for k in 0..10 {
                entries.push(StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(base + k),
                    state: State::empty(),
                }));
            }
            entries.push(StreamEntry::marker("m1"));
            for k in 10..20 {
                entries.push(StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(base + k),
                    state: State::empty(),
                }));
            }
            entries.push(StreamEntry::marker("m2"));
            let stream_clone = stream.try_clone().unwrap();
            let mut stream = stream_clone;
            thread::spawn(move || {
                write_lines(&mut stream, &entries);
            });
        }
        drop(streams);
        let report = handle.join().unwrap();
        assert_eq!(report.connections, 3);
        assert_eq!(report.graph_events, 60);
        assert_eq!(report.marker_violations, 0);
        assert_eq!(
            report
                .markers
                .iter()
                .map(|(name, _)| name.as_str())
                .collect::<Vec<_>>(),
            vec!["m1", "m2"]
        );

        // Total order: in the merged log, no event streamed after m1 on
        // any connection may precede m1, and all 30 pre-m1 events must.
        let log = log.lock().unwrap();
        let m1_pos = log
            .iter()
            .position(|(_, e)| matches!(e, StreamEntry::Marker(n) if n == "m1"))
            .expect("m1 delivered");
        let before: Vec<u64> = log[..m1_pos]
            .iter()
            .filter_map(|(_, e)| e.as_graph())
            .map(|g| match g {
                GraphEvent::AddVertex { id, .. } => id.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(before.len(), 30, "all pre-m1 events precede m1");
        assert!(
            before.iter().all(|&v| v % 100 < 10),
            "only pre-m1 events precede m1: {before:?}"
        );
    }

    #[test]
    fn early_disconnect_does_not_deadlock_barriers() {
        let log = Arc::new(StdMutex::new(Vec::new()));
        let listener = LoadListener::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
        let factory_log = Arc::clone(&log);
        let handle = listener
            .start(
                2,
                Box::new(move || {
                    Ok(Box::new(SharedCollect {
                        log: Arc::clone(&factory_log),
                        tag: 0,
                    }) as Box<dyn EventSink + Send>)
                }),
                clock,
            )
            .unwrap();
        // Connection A sends one event and disconnects without markers;
        // connection B sends a marker that must still be delivered.
        let mut a = TcpStream::connect(addr).unwrap();
        let mut b = TcpStream::connect(addr).unwrap();
        write_lines(
            &mut a,
            &[StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(1),
                state: State::empty(),
            })],
        );
        drop(a);
        thread::sleep(Duration::from_millis(50));
        write_lines(&mut b, &[StreamEntry::marker("only")]);
        drop(b);
        let report = handle.join().unwrap();
        assert_eq!(report.markers.len(), 1);
        assert_eq!(report.marker_violations, 0);
    }

    // Regression: a connection that dies before reaching a marker used to
    // wedge the other readers' condvar waits forever — only the harness
    // watchdog saved the run. Now the dead connection must be excused with
    // a typed `connections_lost` degradation and the marker must still
    // deliver.
    #[test]
    fn killed_connection_is_excused_and_markers_still_deliver() {
        let log = Arc::new(StdMutex::new(Vec::new()));
        let listener = LoadListener::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
        let factory_log = Arc::clone(&log);
        let config = ListenerConfig {
            read_timeout: Duration::from_millis(10),
            stall_warn: Duration::from_millis(50),
            stall_limit: Duration::from_millis(500),
            barrier_deadline: Duration::from_millis(500),
        };
        let handle = listener
            .start_with_config(
                4,
                Box::new(move || {
                    Ok(Box::new(SharedCollect {
                        log: Arc::clone(&factory_log),
                        tag: 0,
                    }) as Box<dyn EventSink + Send>)
                }),
                clock,
                config,
            )
            .unwrap();

        let mut streams: Vec<TcpStream> =
            (0..4).map(|_| TcpStream::connect(addr).unwrap()).collect();
        // Connections 1-3 send events then the marker; connection 0 sends
        // events and is killed abruptly (unread data queued → RST) before
        // ever reaching the marker.
        for (i, stream) in streams.iter_mut().enumerate().skip(1) {
            let base = (i as u64) * 100;
            let mut entries = Vec::new();
            for k in 0..5 {
                entries.push(StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(base + k),
                    state: State::empty(),
                }));
            }
            entries.push(StreamEntry::marker("mid"));
            write_lines(stream, &entries);
        }
        write_lines(
            &mut streams[0],
            &[StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(1),
                state: State::empty(),
            })],
        );
        // Abrupt kill of connection 0 mid-stream.
        drop(streams.remove(0));
        drop(streams);

        let report = handle.join().unwrap();
        assert_eq!(report.connections, 4);
        assert_eq!(
            report
                .markers
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["mid"],
            "marker delivers despite the dead connection"
        );
        assert_eq!(report.marker_violations, 0);
        // The killed connection is excused exactly once — either its reader
        // observed the death directly or the barrier deadline excused it.
        assert_eq!(report.connections_lost, 1);
        assert!(
            !report.degradations.is_empty(),
            "a typed degradation is recorded"
        );
    }

    // A connection that goes idle while staying open (a blackholed client)
    // must be given up after `stall_limit` — with a stall episode counted —
    // instead of wedging the reader join.
    #[test]
    fn idle_open_connection_stalls_out_typed() {
        let log = Arc::new(StdMutex::new(Vec::new()));
        let listener = LoadListener::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
        let factory_log = Arc::clone(&log);
        let config = ListenerConfig {
            read_timeout: Duration::from_millis(10),
            stall_warn: Duration::from_millis(30),
            stall_limit: Duration::from_millis(200),
            barrier_deadline: Duration::from_millis(300),
        };
        let handle = listener
            .start_with_config(
                2,
                Box::new(move || {
                    Ok(Box::new(SharedCollect {
                        log: Arc::clone(&factory_log),
                        tag: 0,
                    }) as Box<dyn EventSink + Send>)
                }),
                clock,
                config,
            )
            .unwrap();

        let mut healthy = TcpStream::connect(addr).unwrap();
        let idle = TcpStream::connect(addr).unwrap();
        write_lines(
            &mut healthy,
            &[
                StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(7),
                    state: State::empty(),
                }),
                StreamEntry::marker("only"),
            ],
        );
        drop(healthy);
        // `idle` stays open and silent; the run must still complete.
        let report = handle.join().unwrap();
        drop(idle);
        assert_eq!(report.markers.len(), 1);
        assert_eq!(report.connections_lost, 1);
        assert!(report.reader_stalls >= 1, "stall episode counted");
        assert!(report
            .degradations
            .iter()
            .any(|(d, _)| d.contains("lost") || d.contains("barrier_deadline")));
    }
}

//! The composed fan-out: partition the stream, start the listener, drive
//! all clients, and collect both sides' reports.

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use gt_core::prelude::*;
use gt_metrics::Clock;
use gt_netem::{NetemProxy, NetemReport};
use gt_replayer::TcpSink;

use crate::client::{run_client, ClientConfig, ClientReport};
use crate::listener::{ListenerReport, LoadListener};
use crate::partition::SeededPartitioner;
use crate::plan::LoadPlan;

/// How the runner builds one platform connector per accepted connection
/// (re-export of the listener's factory type).
pub type ConnectorFactory = crate::listener::ConnectorFn;

/// Attempts a client makes to reach the listener before giving up —
/// hundreds of simultaneous connects can transiently overflow the accept
/// backlog.
const CONNECT_ATTEMPTS: u32 = 100;
const CONNECT_RETRY_DELAY: Duration = Duration::from_millis(10);

/// Write timeout on client sockets when a netem proxy is in the path: a
/// blackholed connection must surface as a typed timeout error, not a
/// client thread wedged in `write(2)` forever.
const NETEM_WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Both sides of a finished load run.
#[derive(Debug)]
pub struct LoadOutcome {
    /// Per-client reports, in connection order (class mix order). Clients
    /// that failed (e.g. killed by a netem fault) are absent here and
    /// listed in [`LoadOutcome::client_failures`] instead.
    pub clients: Vec<ClientReport>,
    /// `(connection index, error)` per client whose run ended in an I/O
    /// error. Non-empty failures degrade the outcome instead of failing
    /// the whole run — unless *every* client failed.
    pub client_failures: Vec<(usize, String)>,
    /// The SUT-side listener's report.
    pub listener: ListenerReport,
    /// Traffic counters of the fault proxy, when the plan carried one.
    pub netem: Option<NetemReport>,
}

impl LoadOutcome {
    /// Graph events offered across all clients.
    pub fn offered(&self) -> u64 {
        self.clients.iter().map(|c| c.offered).sum()
    }

    /// Graph events written across all clients.
    pub fn sent(&self) -> u64 {
        self.clients.iter().map(|c| c.sent).sum()
    }

    /// Aggregate offered rate, events per second (earliest client start
    /// to latest client finish).
    pub fn offered_rate(&self) -> f64 {
        self.aggregate_rate(|c| c.offered)
    }

    /// Aggregate achieved (written) rate, events per second.
    pub fn achieved_rate(&self) -> f64 {
        self.aggregate_rate(|c| c.sent)
    }

    /// Achieved/offered ratio in [0, 1]; 1.0 when nothing was offered.
    pub fn achieved_ratio(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            return 1.0;
        }
        self.sent() as f64 / offered as f64
    }

    fn aggregate_rate(&self, count: impl Fn(&ClientReport) -> u64) -> f64 {
        let start = self.clients.iter().map(|c| c.started_micros).min();
        let end = self.clients.iter().map(|c| c.finished_micros).max();
        match (start, end) {
            (Some(start), Some(end)) if end > start => {
                let total: u64 = self.clients.iter().map(count).sum();
                total as f64 / ((end - start) as f64 / 1e6)
            }
            _ => 0.0,
        }
    }

    /// The reports of one client class.
    pub fn class_reports<'a>(&'a self, class: &'a str) -> impl Iterator<Item = &'a ClientReport> {
        self.clients.iter().filter(move |c| c.class == class)
    }
}

/// Connects to the listener with bounded retries.
fn connect_with_retry(addr: SocketAddr, write_timeout: Option<Duration>) -> io::Result<TcpSink> {
    let mut last = None;
    for _ in 0..CONNECT_ATTEMPTS {
        match TcpSink::connect_with(addr, write_timeout) {
            Ok(sink) => return Ok(sink),
            Err(e) => {
                last = Some(e);
                thread::sleep(CONNECT_RETRY_DELAY);
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("listener unreachable")))
}

/// Runs a full load experiment: splits `stream` into one substream per
/// connection (markers broadcast), starts the multi-connection listener
/// with one platform connector per connection from `connect`, drives
/// every client of every class concurrently over TCP, and returns both
/// sides' reports.
///
/// Client `i` gets arrival-schedule seed `plan.seed + i`, so schedules
/// are distinct but the whole run is a deterministic function of the
/// plan (modulo wall-clock scheduling).
pub fn run_load(
    stream: &GraphStream,
    plan: &LoadPlan,
    connect: ConnectorFactory,
    clock: Arc<dyn Clock>,
) -> io::Result<LoadOutcome> {
    let total = plan.total_connections();
    if total == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "load plan has no connections",
        ));
    }
    let substreams = SeededPartitioner::new(total, plan.seed).split(stream);
    let listener = LoadListener::bind()?;
    let addr = listener.local_addr()?;
    let handle = listener.start(total, connect, Arc::clone(&clock))?;

    // With a netem plan, clients dial the fault proxy instead of the
    // listener directly, and carry a write timeout so a blackholed
    // connection errors out instead of wedging its thread.
    let netem_handle = match &plan.netem {
        Some(netem) => Some(NetemProxy::start(addr, netem, Arc::clone(&clock))?),
        None => None,
    };
    let (dial_addr, write_timeout) = match &netem_handle {
        Some(proxy) => (proxy.local_addr(), Some(NETEM_WRITE_TIMEOUT)),
        None => (addr, None),
    };

    let mut workers = Vec::with_capacity(total);
    let mut conn = 0usize;
    for class in &plan.classes {
        for _ in 0..class.connections {
            let entries = substreams[conn].entries().to_vec();
            let config = ClientConfig::new(
                class.name.clone(),
                class.model,
                class.rate_per_connection,
                plan.seed.wrapping_add(conn as u64),
            )
            .with_pattern(plan.pattern.clone());
            let clock = Arc::clone(&clock);
            workers.push((
                conn,
                thread::Builder::new()
                    .name(format!("gt-load-client-{conn}"))
                    .spawn(move || -> io::Result<ClientReport> {
                        let sink = connect_with_retry(dial_addr, write_timeout)?;
                        run_client(&entries, &config, Box::new(sink), clock)
                    })?,
            ));
            conn += 1;
        }
    }

    let mut clients = Vec::with_capacity(total);
    let mut client_failures = Vec::new();
    for (conn, worker) in workers {
        match worker.join() {
            Ok(Ok(report)) => clients.push(report),
            Ok(Err(e)) => client_failures.push((conn, e.to_string())),
            Err(_) => client_failures.push((conn, "client panicked".to_owned())),
        }
    }

    // Client sockets are closed now. Stop the proxy first — a forwarder
    // mid-partition isn't reading, so only the stop flag guarantees the
    // proxied sockets close and the listener's readers reach EOF.
    let netem_report = match netem_handle {
        Some(proxy) => {
            proxy.stop();
            Some(proxy.join()?)
        }
        None => None,
    };
    handle.stop();
    let listener_report = handle.join()?;

    // Failed clients degrade the outcome (typed, alongside the listener's
    // `connections_lost`); only a fully failed fleet fails the run.
    if clients.is_empty() {
        let detail = client_failures
            .first()
            .map(|(conn, e)| format!("all {total} clients failed; first: conn {conn}: {e}"))
            .unwrap_or_else(|| "no clients ran".to_owned());
        return Err(io::Error::other(detail));
    }
    Ok(LoadOutcome {
        clients,
        client_failures,
        listener: listener_report,
        netem: netem_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LoopModel;
    use gt_metrics::WallClock;
    use gt_replayer::EventSink;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// A connector counting events and recording markers globally.
    struct CountingSink {
        events: Arc<AtomicU64>,
        markers: Arc<Mutex<Vec<String>>>,
    }

    impl EventSink for CountingSink {
        fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
            match entry {
                StreamEntry::Graph(_) => {
                    self.events.fetch_add(1, Ordering::Relaxed);
                }
                StreamEntry::Marker(name) => self.markers.lock().unwrap().push(name.clone()),
                StreamEntry::Control(_) => {}
            }
            Ok(())
        }

        fn send_batch(&mut self, batch: &[SharedEntry]) -> io::Result<()> {
            for entry in batch {
                self.send(entry)?;
            }
            Ok(())
        }
    }

    fn sample_stream(n: u64) -> GraphStream {
        let mut stream = GraphStream::new();
        for i in 0..n {
            stream.push(StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(i),
                state: State::empty(),
            }));
            if i == n / 2 {
                stream.push(StreamEntry::marker("mid"));
            }
        }
        stream.push(StreamEntry::marker("end"));
        stream
    }

    #[test]
    fn fan_out_delivers_every_event_once_and_markers_once() {
        let events = Arc::new(AtomicU64::new(0));
        let markers = Arc::new(Mutex::new(Vec::new()));
        let stream = sample_stream(600);
        let plan = LoadPlan::single(6, 120_000.0, LoopModel::Open, 11);
        let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
        let factory_events = Arc::clone(&events);
        let factory_markers = Arc::clone(&markers);
        let outcome = run_load(
            &stream,
            &plan,
            Box::new(move || {
                Ok(Box::new(CountingSink {
                    events: Arc::clone(&factory_events),
                    markers: Arc::clone(&factory_markers),
                }) as Box<dyn EventSink + Send>)
            }),
            clock,
        )
        .unwrap();
        assert_eq!(outcome.offered(), 600);
        assert_eq!(outcome.sent(), 600);
        assert_eq!(
            events.load(Ordering::Relaxed),
            600,
            "each event exactly once"
        );
        assert_eq!(
            markers.lock().unwrap().as_slice(),
            &["mid".to_owned(), "end".to_owned()],
            "each marker exactly once, in order"
        );
        assert_eq!(outcome.listener.connections, 6);
        assert_eq!(outcome.listener.marker_violations, 0);
        assert!(outcome.achieved_ratio() > 0.999);
    }

    #[test]
    fn class_mix_reports_per_class() {
        let events = Arc::new(AtomicU64::new(0));
        let markers = Arc::new(Mutex::new(Vec::new()));
        let stream = sample_stream(300);
        let plan = LoadPlan::single(3, 60_000.0, LoopModel::Open, 5).with_class(
            crate::plan::ClientClass::new("probe", 1, 20_000.0, LoopModel::Closed),
        );
        let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
        let factory_events = Arc::clone(&events);
        let factory_markers = Arc::clone(&markers);
        let outcome = run_load(
            &stream,
            &plan,
            Box::new(move || {
                Ok(Box::new(CountingSink {
                    events: Arc::clone(&factory_events),
                    markers: Arc::clone(&factory_markers),
                }) as Box<dyn EventSink + Send>)
            }),
            clock,
        )
        .unwrap();
        assert_eq!(outcome.clients.len(), 4);
        assert_eq!(outcome.class_reports("main").count(), 3);
        assert_eq!(outcome.class_reports("probe").count(), 1);
        let probe = outcome.class_reports("probe").next().unwrap();
        assert_eq!(probe.model, LoopModel::Closed);
        assert_eq!(outcome.offered(), 300);
    }

    // Satellite regression: kill 1 of 4 clients mid-stream through the
    // fault proxy. The run must complete with the death typed — a
    // `client_failures` entry, a listener `connections_lost` count — and
    // the surviving connections' markers must still deliver in order.
    #[test]
    fn netem_kill_degrades_one_client_without_failing_the_run() {
        let events = Arc::new(AtomicU64::new(0));
        let markers = Arc::new(Mutex::new(Vec::new()));
        let stream = sample_stream(400);
        let netem = gt_netem::NetemPlan::new(
            gt_netem::NetemSchedule::parse("kill@300ms,mode=rst,conns=0", 3).unwrap(),
        );
        let journal = netem.journal.clone();
        let plan = LoadPlan::single(4, 400.0, LoopModel::Open, 11).with_netem(netem);
        let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
        let factory_events = Arc::clone(&events);
        let factory_markers = Arc::clone(&markers);
        let outcome = run_load(
            &stream,
            &plan,
            Box::new(move || {
                Ok(Box::new(CountingSink {
                    events: Arc::clone(&factory_events),
                    markers: Arc::clone(&factory_markers),
                }) as Box<dyn EventSink + Send>)
            }),
            clock,
        )
        .unwrap();
        assert_eq!(outcome.clients.len() + outcome.client_failures.len(), 4);
        assert_eq!(
            outcome.client_failures.len(),
            1,
            "exactly the killed client fails: {:?}",
            outcome.client_failures
        );
        let netem_report = outcome.netem.as_ref().expect("netem report present");
        assert_eq!(netem_report.kills_rst, 1);
        assert_eq!(netem_report.connections, 4);
        assert!(outcome.listener.connections_lost >= 1);
        assert_eq!(outcome.listener.marker_violations, 0);
        assert_eq!(
            markers.lock().unwrap().as_slice(),
            &["mid".to_owned(), "end".to_owned()],
            "surviving connections still deliver every marker once"
        );
        let signature = journal.signature();
        assert_eq!(signature.len(), 1);
        assert_eq!(signature[0].0, 300);
        assert!(signature[0].1.contains("kill"), "{signature:?}");
    }

    #[test]
    fn empty_plan_rejected() {
        let stream = sample_stream(1);
        let plan = LoadPlan {
            classes: Vec::new(),
            seed: 0,
            pattern: gt_replayer::pattern::RatePattern::Uniform,
            netem: None,
        };
        let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
        let err = run_load(&stream, &plan, Box::new(|| unreachable!()), clock).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}

#![warn(missing_docs)]

//! # gt-load
//!
//! The multi-client traffic layer: fans one generated graph stream (or N
//! deterministically partitioned substreams) across many concurrent TCP
//! connections, each driven by an explicit client model, and receives it
//! on the SUT side through a multi-connection listener that feeds the
//! platform's batched [`gt_replayer::EventSink`] connectors while keeping
//! markers totally ordered.
//!
//! The paper's §4.4 rate-controlled replay drives a SUT through a single
//! paced connection — a closed feedback loop in which a stalled SUT
//! silently throttles the offered load, hiding exactly the latency spikes
//! an evaluation should surface (coordinated omission). This crate makes
//! the client model explicit:
//!
//! * **open loop** — arrivals follow a precomputed, seeded schedule that
//!   advances regardless of SUT progress; what the SUT cannot absorb is
//!   *counted as backlog*, and each event's sojourn latency is measured
//!   from its scheduled arrival, so stalls surface as tail latency.
//! * **closed loop** — the next event is sent only after the previous
//!   write completed (send-after-ack); offered load adapts to the SUT.
//! * **partial open loop** — open-loop arrivals, but the generator blocks
//!   once the un-acked backlog reaches a window, bounding client memory.
//!
//! Modules:
//!
//! * [`model`] — the three client models ([`LoopModel`]).
//! * [`schedule`] — the pure seeded [`ArrivalSchedule`] (the
//!   coordinated-omission guard: bit-identical however the SUT behaves).
//! * [`partition`] — the seeded entity partitioner splitting one stream
//!   into per-connection substreams with broadcast markers.
//! * [`client`] — one load client driving one connection.
//! * [`listener`] — the SUT-side multi-connection listener with the
//!   marker barrier.
//! * [`plan`] — [`LoadPlan`]: connections × rate × model × class mix.
//! * [`runner`] — the composed fan-out: partition, listen, drive, report.

pub mod client;
pub mod listener;
pub mod model;
pub mod partition;
pub mod plan;
pub mod runner;
pub mod schedule;

pub use client::{run_client, ClientConfig, ClientReport};
pub use listener::{ListenerConfig, ListenerHandle, ListenerReport, LoadListener};
pub use model::LoopModel;
pub use partition::SeededPartitioner;
pub use plan::{ClientClass, LoadPlan};
pub use runner::{run_load, ConnectorFactory, LoadOutcome};
pub use schedule::ArrivalSchedule;

pub use gt_netem::{NetemPlan, NetemReport, NetemSchedule};
pub use gt_replayer::pattern::{CompiledPattern, RatePattern};

//! The pure, seeded arrival schedule.
//!
//! An open-loop client's arrival times are a *function of the plan*, not
//! of the SUT: `(rate, seed, n) → timestamps`. Computing the schedule up
//! front, independently of any socket, is what makes the
//! coordinated-omission guard testable — the schedule a client emits
//! must be bit-identical whether the SUT acks promptly or stalls.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use gt_replayer::pattern::CompiledPattern;

/// A precomputed arrival schedule: monotone microsecond offsets from the
/// client's start, one per graph event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalSchedule {
    offsets: Vec<u64>,
}

impl ArrivalSchedule {
    /// A Poisson-process schedule: exponential inter-arrival times with
    /// mean `1/rate`, drawn from a seeded deterministic RNG. This is the
    /// default for open-loop clients — independent arrivals are the
    /// standard traffic model and exercise burstiness that a uniform
    /// schedule hides.
    ///
    /// # Panics
    /// If `rate` is not strictly positive and finite.
    pub fn poisson(rate: f64, events: usize, seed: u64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut offsets = Vec::with_capacity(events);
        let mut t = 0.0_f64;
        for _ in 0..events {
            // Inverse-CDF sampling; 1-u keeps the argument away from 0.
            let u: f64 = rng.random();
            let dt = -(1.0 - u).ln() / rate;
            t += dt;
            offsets.push((t * 1e6) as u64);
        }
        ArrivalSchedule { offsets }
    }

    /// An inhomogeneous-Poisson schedule: arrivals against the
    /// time-varying intensity `rate × pattern(t)`, via exact inversion of
    /// the integrated intensity over the pattern's piecewise-constant
    /// segments. With a uniform pattern this makes the same exponential
    /// draws as [`ArrivalSchedule::poisson`] and matches its offsets to
    /// within microsecond rounding, so shaping a cell's traffic never
    /// changes its uniform baseline.
    ///
    /// # Panics
    /// If `rate` is not strictly positive and finite.
    pub fn patterned(rate: f64, events: usize, seed: u64, pattern: &CompiledPattern) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut offsets = Vec::with_capacity(events);
        let mut t_micros = 0.0_f64;
        for _ in 0..events {
            let u: f64 = rng.random();
            let area = -(1.0 - u).ln() / rate * 1e6;
            t_micros = pattern.advance_by_area(t_micros, area);
            offsets.push(t_micros as u64);
        }
        ArrivalSchedule { offsets }
    }

    /// A uniform schedule: events exactly `1/rate` apart, as the paper's
    /// §4.4 single-connection replayer paces them.
    ///
    /// # Panics
    /// If `rate` is not strictly positive and finite.
    pub fn uniform(rate: f64, events: usize) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive"
        );
        let micros_per_event = 1e6 / rate;
        let offsets = (1..=events as u64)
            .map(|i| (i as f64 * micros_per_event) as u64)
            .collect();
        ArrivalSchedule { offsets }
    }

    /// The scheduled arrival offsets in microseconds, in order.
    pub fn offsets_micros(&self) -> &[u64] {
        &self.offsets
    }

    /// Number of scheduled arrivals.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The scheduled offset of the last arrival, if any.
    pub fn last_micros(&self) -> Option<u64> {
        self.offsets.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = ArrivalSchedule::poisson(10_000.0, 500, 42);
        let b = ArrivalSchedule::poisson(10_000.0, 500, 42);
        let c = ArrivalSchedule::poisson(10_000.0, 500, 43);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds must yield different schedules");
    }

    #[test]
    fn poisson_mean_rate_is_close() {
        let rate = 50_000.0;
        let schedule = ArrivalSchedule::poisson(rate, 20_000, 7);
        let span_secs = schedule.last_micros().unwrap() as f64 / 1e6;
        let achieved = schedule.len() as f64 / span_secs;
        let error = (achieved - rate).abs() / rate;
        assert!(error < 0.05, "mean rate off by {:.1}%", error * 100.0);
    }

    #[test]
    fn schedules_are_monotone() {
        for schedule in [
            ArrivalSchedule::poisson(1000.0, 1000, 3),
            ArrivalSchedule::uniform(1000.0, 1000),
        ] {
            let offsets = schedule.offsets_micros();
            assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn uniform_spacing() {
        let schedule = ArrivalSchedule::uniform(1000.0, 5);
        assert_eq!(schedule.offsets_micros(), &[1000, 2000, 3000, 4000, 5000]);
    }

    #[test]
    fn empty_schedule() {
        let schedule = ArrivalSchedule::uniform(100.0, 0);
        assert!(schedule.is_empty());
        assert_eq!(schedule.last_micros(), None);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalSchedule::poisson(0.0, 10, 0);
    }

    #[test]
    fn patterned_with_uniform_pattern_matches_poisson() {
        use gt_replayer::pattern::RatePattern;
        let uniform = RatePattern::Uniform.compile(0);
        let plain = ArrivalSchedule::poisson(5_000.0, 2_000, 11);
        let shaped = ArrivalSchedule::patterned(5_000.0, 2_000, 11, &uniform);
        assert_eq!(plain.len(), shaped.len());
        for (a, b) in plain
            .offsets_micros()
            .iter()
            .zip(shaped.offsets_micros().iter())
        {
            assert!(a.abs_diff(*b) <= 1, "offsets diverge: {a} vs {b}");
        }
    }

    #[test]
    fn patterned_is_deterministic_and_monotone() {
        use gt_replayer::pattern::RatePattern;
        let pattern = RatePattern::ParetoBursts {
            alpha: 1.5,
            burst_secs: 0.1,
            peak: 4.0,
        }
        .compile(3);
        let a = ArrivalSchedule::patterned(10_000.0, 2_000, 42, &pattern);
        let b = ArrivalSchedule::patterned(10_000.0, 2_000, 42, &pattern);
        assert_eq!(a, b);
        assert!(a.offsets_micros().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn flash_crowd_concentrates_arrivals_in_the_surge() {
        // 4x surge between 1s and 3s at base 1k/s: the surge window must
        // hold arrivals at roughly 4x the density of the pre-surge second.
        use gt_replayer::pattern::RatePattern;
        let pattern = RatePattern::FlashCrowd {
            at_secs: 1.0,
            factor: 4.0,
            hold_secs: 2.0,
        }
        .compile(0);
        let schedule = ArrivalSchedule::patterned(1_000.0, 6_000, 5, &pattern);
        let count_in = |lo: u64, hi: u64| {
            schedule
                .offsets_micros()
                .iter()
                .filter(|&&t| (lo..hi).contains(&t))
                .count() as f64
        };
        let base = count_in(0, 1_000_000);
        let surge = count_in(1_000_000, 2_000_000);
        let ratio = surge / base;
        assert!(
            (3.0..5.0).contains(&ratio),
            "surge density ratio {ratio:.2} (base {base}, surge {surge})"
        );
    }

    #[test]
    fn diurnal_mean_rate_stays_near_base() {
        // The sine integrates to zero over whole periods: the long-run
        // mean rate of a diurnal schedule must stay near the base rate.
        use gt_replayer::pattern::RatePattern;
        let pattern = RatePattern::Diurnal {
            period_secs: 1.0,
            amplitude: 0.5,
        }
        .compile(0);
        let rate = 10_000.0;
        let schedule = ArrivalSchedule::patterned(rate, 50_000, 7, &pattern);
        let span_secs = schedule.last_micros().unwrap() as f64 / 1e6;
        let achieved = schedule.len() as f64 / span_secs;
        let error = (achieved - rate).abs() / rate;
        assert!(error < 0.05, "mean rate off by {:.1}%", error * 100.0);
    }
}

//! [`LoadPlan`]: the connections × rate × model × class mix of a run.

use std::fmt;

use gt_netem::NetemPlan;
use gt_replayer::pattern::RatePattern;

use crate::model::LoopModel;

/// One class of identical clients (e.g. "bulk" open-loop writers plus a
/// "probe" closed-loop class measuring service time).
#[derive(Debug, Clone)]
pub struct ClientClass {
    /// Class label, reported per class by the analysis.
    pub name: String,
    /// Concurrent connections of this class.
    pub connections: usize,
    /// Offered rate per connection, graph events per second.
    pub rate_per_connection: f64,
    /// Arrival/ack coupling model of this class.
    pub model: LoopModel,
}

impl ClientClass {
    /// A class offering `total_rate` spread evenly over `connections`.
    pub fn new(
        name: impl Into<String>,
        connections: usize,
        total_rate: f64,
        model: LoopModel,
    ) -> Self {
        assert!(connections > 0, "class needs at least one connection");
        assert!(
            total_rate.is_finite() && total_rate > 0.0,
            "class rate must be positive"
        );
        ClientClass {
            name: name.into(),
            connections,
            rate_per_connection: total_rate / connections as f64,
            model,
        }
    }

    /// The class's total offered rate, events per second.
    pub fn total_rate(&self) -> f64 {
        self.rate_per_connection * self.connections as f64
    }
}

/// The traffic mix of a load run: one or more client classes plus the
/// seed that fixes both the stream partitioning and every client's
/// arrival schedule.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// The client classes; at least one.
    pub classes: Vec<ClientClass>,
    /// Seed for partitioning and arrival schedules.
    pub seed: u64,
    /// Rate-variability shape (§4.4) every open-loop client's arrival
    /// intensity follows; [`RatePattern::Uniform`] is constant intensity.
    pub pattern: RatePattern,
    /// Optional network-fault plan: when set, every client dials the SUT
    /// through a [`gt_netem::NetemProxy`] running this schedule.
    pub netem: Option<NetemPlan>,
}

impl LoadPlan {
    /// A single-class plan: `connections` clients of one `model` jointly
    /// offering `total_rate`.
    pub fn single(connections: usize, total_rate: f64, model: LoopModel, seed: u64) -> Self {
        LoadPlan {
            classes: vec![ClientClass::new("main", connections, total_rate, model)],
            seed,
            pattern: RatePattern::Uniform,
            netem: None,
        }
    }

    /// Adds another client class (builder style).
    #[must_use]
    pub fn with_class(mut self, class: ClientClass) -> Self {
        self.classes.push(class);
        self
    }

    /// Shapes every client's arrival intensity by a rate pattern
    /// (builder style).
    #[must_use]
    pub fn with_pattern(mut self, pattern: RatePattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Routes every client through a deterministic network-fault proxy
    /// (builder style).
    #[must_use]
    pub fn with_netem(mut self, netem: NetemPlan) -> Self {
        self.netem = Some(netem);
        self
    }

    /// Connections across all classes — the substream count.
    pub fn total_connections(&self) -> usize {
        self.classes.iter().map(|c| c.connections).sum()
    }

    /// Offered rate across all classes, events per second.
    pub fn total_rate(&self) -> f64 {
        self.classes.iter().map(|c| c.total_rate()).sum()
    }

    /// The class labels, in declaration order.
    pub fn class_names(&self) -> Vec<&str> {
        self.classes.iter().map(|c| c.name.as_str()).collect()
    }
}

impl fmt::Display for LoadPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let classes: Vec<String> = self
            .classes
            .iter()
            .map(|c| {
                format!(
                    "{}: {}x{:.0} e/s {}",
                    c.name, c.connections, c.rate_per_connection, c.model
                )
            })
            .collect();
        write!(f, "[{}] seed {}", classes.join("; "), self.seed)?;
        if self.pattern != RatePattern::Uniform {
            write!(f, " pattern {}", self.pattern)?;
        }
        if let Some(netem) = &self.netem {
            write!(f, " netem[{}]", netem.schedule.describe())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_plan_splits_rate_evenly() {
        let plan = LoadPlan::single(8, 40_000.0, LoopModel::Open, 1);
        assert_eq!(plan.total_connections(), 8);
        assert_eq!(plan.classes[0].rate_per_connection, 5_000.0);
        assert!((plan.total_rate() - 40_000.0).abs() < 1e-9);
    }

    #[test]
    fn class_mix_accumulates() {
        let plan = LoadPlan::single(4, 20_000.0, LoopModel::Open, 1).with_class(ClientClass::new(
            "probe",
            2,
            100.0,
            LoopModel::Closed,
        ));
        assert_eq!(plan.total_connections(), 6);
        assert_eq!(plan.class_names(), vec!["main", "probe"]);
        assert!((plan.total_rate() - 20_100.0).abs() < 1e-9);
    }

    #[test]
    fn plan_describes_itself() {
        let plan = LoadPlan::single(2, 1000.0, LoopModel::PartialOpen { window: 64 }, 9);
        let text = plan.to_string();
        assert!(text.contains("2x500"), "{text}");
        assert!(text.contains("partial:64"), "{text}");
        assert!(text.contains("seed 9"), "{text}");
    }

    #[test]
    #[should_panic(expected = "at least one connection")]
    fn zero_connections_rejected() {
        let _ = ClientClass::new("x", 0, 100.0, LoopModel::Open);
    }
}

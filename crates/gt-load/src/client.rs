//! One load client driving one connection under an explicit loop model.
//!
//! A client owns a substream and an [`EventSink`] (normally a
//! [`gt_replayer::TcpSink`] into the SUT-side listener). How it couples
//! arrivals to sink progress is the [`LoopModel`]:
//!
//! * **open**: a generator thread emits graph events into an unbounded
//!   queue exactly on the precomputed [`ArrivalSchedule`]; a writer
//!   thread drains the queue into the sink in bursts. A stalled sink
//!   grows the queue (counted backlog) but never slows the generator —
//!   each event's *sojourn* latency (write completion minus scheduled
//!   arrival) then charges the stall to the SUT.
//! * **closed**: one thread sends, flushes (the "ack"), then waits out
//!   the schedule's think time before the next send. A stalled sink
//!   stalls the client — offered load collapses, which is exactly the
//!   coordinated omission the open-loop model exists to expose.
//! * **partial open**: open-loop behaviour until the backlog reaches a
//!   window, then the generator stalls (schedule slips) until the writer
//!   catches up.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender};
use gt_core::prelude::*;
use gt_metrics::Clock;
use gt_replayer::pattern::RatePattern;
use gt_replayer::EventSink;

use crate::model::LoopModel;
use crate::schedule::ArrivalSchedule;

/// Below this remaining wait the client spins instead of sleeping, for
/// microsecond-accurate arrivals (the replayer's hybrid pacing idiom).
const SPIN_THRESHOLD_MICROS: u64 = 1_000;

/// Maximum events a writer burst drains before flushing and stamping
/// completions — bounds both syscall rate and ack granularity.
const WRITE_BURST: usize = 256;

/// Configuration of one load client.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Client-class label (reported per class in the analysis).
    pub class: String,
    /// Arrival/ack coupling model.
    pub model: LoopModel,
    /// Offered rate of this connection, graph events per second.
    pub rate: f64,
    /// Seed of the Poisson arrival schedule.
    pub seed: u64,
    /// Draw Poisson arrivals (default); `false` paces uniformly.
    pub poisson: bool,
    /// Rate-variability shape (§4.4): the intensity this client's Poisson
    /// arrivals follow over time. [`RatePattern::Uniform`] is constant
    /// intensity; ignored by uniform (non-Poisson) pacing.
    pub pattern: RatePattern,
}

impl ClientConfig {
    /// A client of the given class, model, per-connection rate and seed,
    /// with Poisson arrivals.
    pub fn new(class: impl Into<String>, model: LoopModel, rate: f64, seed: u64) -> Self {
        ClientConfig {
            class: class.into(),
            model,
            rate,
            seed,
            poisson: true,
            pattern: RatePattern::Uniform,
        }
    }

    /// Shapes this client's arrival intensity by a rate pattern
    /// (builder style).
    #[must_use]
    pub fn with_pattern(mut self, pattern: RatePattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// The arrival schedule this client will emit for `events` graph
    /// events — a pure function of the config, never of the SUT.
    pub fn schedule(&self, events: usize) -> ArrivalSchedule {
        if self.poisson {
            match self.pattern {
                RatePattern::Uniform => ArrivalSchedule::poisson(self.rate, events, self.seed),
                ref shaped => ArrivalSchedule::patterned(
                    self.rate,
                    events,
                    self.seed,
                    &shaped.compile(self.seed),
                ),
            }
        } else {
            ArrivalSchedule::uniform(self.rate, events)
        }
    }
}

/// What one client did: counts, backlog, and per-event sojourn samples.
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// Client-class label.
    pub class: String,
    /// The model the client ran.
    pub model: LoopModel,
    /// Graph events the generator emitted (offered load).
    pub offered: u64,
    /// Graph events whose write into the sink completed.
    pub sent: u64,
    /// Largest client-side queue of emitted-but-unwritten events.
    pub backlog_peak: u64,
    /// The arrival schedule the generator emitted, microsecond offsets
    /// from client start — the coordinated-omission guard compares this
    /// across sink behaviours.
    pub schedule_micros: Vec<u64>,
    /// Per-event `(completion t_micros on the run clock, sojourn_micros)`
    /// samples; sojourn is write completion minus scheduled arrival.
    pub sojourn: Vec<(u64, u64)>,
    /// Run-clock time the client started, microseconds.
    pub started_micros: u64,
    /// Run-clock time the client finished, microseconds.
    pub finished_micros: u64,
}

impl ClientReport {
    /// Offered rate over the client's lifetime, events per second.
    pub fn offered_rate(&self) -> f64 {
        let span = self.finished_micros.saturating_sub(self.started_micros);
        if span == 0 {
            return 0.0;
        }
        self.offered as f64 / (span as f64 / 1e6)
    }

    /// Achieved (written) rate over the client's lifetime, events per second.
    pub fn achieved_rate(&self) -> f64 {
        let span = self.finished_micros.saturating_sub(self.started_micros);
        if span == 0 {
            return 0.0;
        }
        self.sent as f64 / (span as f64 / 1e6)
    }
}

/// Sleeps (then spins) until the run clock reaches `target_micros`.
fn wait_until(clock: &dyn Clock, target_micros: u64) {
    loop {
        let now = clock.now_micros();
        if now >= target_micros {
            return;
        }
        let remaining = target_micros - now;
        if remaining > SPIN_THRESHOLD_MICROS {
            thread::sleep(Duration::from_micros(remaining - SPIN_THRESHOLD_MICROS / 2));
        } else {
            std::hint::spin_loop();
            thread::yield_now();
        }
    }
}

/// One queued item: the entry plus, for graph events, its scheduled
/// arrival on the run clock (markers and control events carry `None`).
struct QueuedItem {
    entry: SharedEntry,
    scheduled_micros: Option<u64>,
}

/// Shared generator/writer counters for backlog accounting.
#[derive(Default)]
struct Counters {
    offered: AtomicU64,
    sent: AtomicU64,
    backlog_peak: AtomicU64,
}

impl Counters {
    fn note_backlog(&self) {
        let backlog = self
            .offered
            .load(Ordering::Relaxed)
            .saturating_sub(self.sent.load(Ordering::Relaxed));
        self.backlog_peak.fetch_max(backlog, Ordering::Relaxed);
    }
}

/// Drains the queue into the sink in bursts, stamping completions.
fn writer_loop(
    rx: Receiver<QueuedItem>,
    mut sink: Box<dyn EventSink + Send>,
    clock: Arc<dyn Clock>,
    counters: Arc<Counters>,
) -> io::Result<Vec<(u64, u64)>> {
    let mut sojourn = Vec::new();
    let mut burst: Vec<QueuedItem> = Vec::with_capacity(WRITE_BURST);
    let mut batch: Vec<SharedEntry> = Vec::with_capacity(WRITE_BURST);
    while let Ok(first) = rx.recv() {
        burst.push(first);
        while burst.len() < WRITE_BURST {
            match rx.try_recv() {
                Ok(item) => burst.push(item),
                Err(_) => break,
            }
        }
        // Deliver the burst: contiguous graph events go through the
        // batched path; markers and control events force a flush so the
        // sink sees the same ordering contract the replayer guarantees.
        for item in &burst {
            match &*item.entry {
                StreamEntry::Graph(_) => batch.push(SharedEntry::clone(&item.entry)),
                _ => {
                    if !batch.is_empty() {
                        sink.send_batch(&batch)?;
                        batch.clear();
                    }
                    sink.flush()?;
                    sink.send(&item.entry)?;
                    sink.flush()?;
                }
            }
        }
        if !batch.is_empty() {
            sink.send_batch(&batch)?;
            batch.clear();
        }
        sink.flush()?;
        // The flush completed: every graph event of the burst is now in
        // the socket. Stamp completions and sojourns.
        let now = clock.now_micros();
        let mut written = 0;
        for item in burst.drain(..) {
            if let Some(scheduled) = item.scheduled_micros {
                sojourn.push((now, now.saturating_sub(scheduled)));
                written += 1;
            }
        }
        counters.sent.fetch_add(written, Ordering::Relaxed);
    }
    sink.close()?;
    Ok(sojourn)
}

/// Emits entries into the queue per the schedule (open / partial-open).
#[allow(clippy::too_many_arguments)]
fn generator_loop(
    entries: &[StreamEntry],
    schedule: &ArrivalSchedule,
    window: Option<usize>,
    tx: Sender<QueuedItem>,
    clock: &dyn Clock,
    counters: &Counters,
    t0: u64,
    emitted_schedule: &mut Vec<u64>,
) {
    let mut next_event = 0usize;
    for entry in entries {
        let scheduled = match entry {
            StreamEntry::Graph(_) => {
                let target = t0 + schedule.offsets_micros()[next_event];
                next_event += 1;
                wait_until(clock, target);
                // Partial open: stall the generator while the backlog is
                // at the window; the schedule slips to admission time.
                if let Some(window) = window {
                    loop {
                        let backlog = counters
                            .offered
                            .load(Ordering::Relaxed)
                            .saturating_sub(counters.sent.load(Ordering::Relaxed));
                        if (backlog as usize) < window {
                            break;
                        }
                        thread::sleep(Duration::from_micros(200));
                    }
                }
                let arrival = match window {
                    None => target,
                    Some(_) => target.max(clock.now_micros()),
                };
                emitted_schedule.push(arrival - t0);
                counters.offered.fetch_add(1, Ordering::Relaxed);
                Some(arrival)
            }
            _ => None,
        };
        let item = QueuedItem {
            entry: SharedEntry::new(entry.clone()),
            scheduled_micros: scheduled,
        };
        if tx.send(item).is_err() {
            // Writer died (sink error); stop offering. The writer's
            // error is what the client returns.
            return;
        }
        counters.note_backlog();
    }
}

/// Runs one client to completion: emits `entries` into `sink` under the
/// configured loop model, measuring against `clock`.
///
/// Graph events are paced by the client's [`ArrivalSchedule`]; markers
/// and control events ride along in stream position. The returned report
/// carries the emitted schedule (for the coordinated-omission guard) and
/// per-event sojourn samples.
pub fn run_client(
    entries: &[StreamEntry],
    config: &ClientConfig,
    sink: Box<dyn EventSink + Send>,
    clock: Arc<dyn Clock>,
) -> io::Result<ClientReport> {
    let events = entries.iter().filter(|e| e.is_graph()).count();
    let schedule = config.schedule(events);
    match config.model {
        LoopModel::Open => run_decoupled(entries, config, &schedule, None, sink, clock),
        LoopModel::PartialOpen { window } => {
            run_decoupled(entries, config, &schedule, Some(window), sink, clock)
        }
        LoopModel::Closed => run_closed(entries, config, &schedule, sink, clock),
    }
}

fn run_decoupled(
    entries: &[StreamEntry],
    config: &ClientConfig,
    schedule: &ArrivalSchedule,
    window: Option<usize>,
    mut sink: Box<dyn EventSink + Send>,
    clock: Arc<dyn Clock>,
) -> io::Result<ClientReport> {
    sink.open()?;
    let counters = Arc::new(Counters::default());
    let (tx, rx) = channel::unbounded();
    let writer = {
        let clock = Arc::clone(&clock);
        let counters = Arc::clone(&counters);
        thread::spawn(move || writer_loop(rx, sink, clock, counters))
    };
    let t0 = clock.now_micros();
    let mut emitted_schedule = Vec::with_capacity(schedule.len());
    generator_loop(
        entries,
        schedule,
        window,
        tx,
        clock.as_ref(),
        &counters,
        t0,
        &mut emitted_schedule,
    );
    let sojourn = writer
        .join()
        .map_err(|_| io::Error::other("load client writer thread panicked"))??;
    let finished = clock.now_micros();
    Ok(ClientReport {
        class: config.class.clone(),
        model: config.model,
        offered: counters.offered.load(Ordering::Relaxed),
        sent: counters.sent.load(Ordering::Relaxed),
        backlog_peak: counters.backlog_peak.load(Ordering::Relaxed),
        schedule_micros: emitted_schedule,
        sojourn,
        started_micros: t0,
        finished_micros: finished,
    })
}

fn run_closed(
    entries: &[StreamEntry],
    config: &ClientConfig,
    schedule: &ArrivalSchedule,
    mut sink: Box<dyn EventSink + Send>,
    clock: Arc<dyn Clock>,
) -> io::Result<ClientReport> {
    sink.open()?;
    let t0 = clock.now_micros();
    let mut offered = 0u64;
    let mut sojourn = Vec::new();
    let mut emitted_schedule = Vec::with_capacity(schedule.len());
    let mut next_event = 0usize;
    let mut earliest_send = t0;
    for entry in entries {
        match entry {
            StreamEntry::Graph(_) => {
                // Think time: the schedule's inter-arrival gap, measured
                // from the previous completion (send-after-ack).
                wait_until(clock.as_ref(), earliest_send);
                let sent_at = clock.now_micros();
                emitted_schedule.push(sent_at - t0);
                sink.send(entry)?;
                sink.flush()?;
                let done = clock.now_micros();
                offered += 1;
                sojourn.push((done, done.saturating_sub(sent_at)));
                let gap = gap_micros(schedule, next_event);
                next_event += 1;
                earliest_send = done + gap;
            }
            _ => {
                sink.flush()?;
                sink.send(entry)?;
                sink.flush()?;
            }
        }
    }
    sink.close()?;
    let finished = clock.now_micros();
    Ok(ClientReport {
        class: config.class.clone(),
        model: config.model,
        offered,
        sent: offered,
        backlog_peak: 0,
        schedule_micros: emitted_schedule,
        sojourn,
        started_micros: t0,
        finished_micros: finished,
    })
}

/// The schedule's inter-arrival gap after event `index`.
fn gap_micros(schedule: &ArrivalSchedule, index: usize) -> u64 {
    let offsets = schedule.offsets_micros();
    match index {
        0 => offsets.first().copied().unwrap_or(0),
        i if i < offsets.len() => offsets[i] - offsets[i - 1],
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_metrics::WallClock;
    use std::sync::Mutex;

    /// A sink recording entries, optionally stalling on the Nth flush.
    struct TestSink {
        entries: Arc<Mutex<Vec<StreamEntry>>>,
        stall_at_event: Option<u64>,
        stall: Duration,
        seen: u64,
        stalled: bool,
    }

    impl TestSink {
        fn new(entries: Arc<Mutex<Vec<StreamEntry>>>) -> Self {
            TestSink {
                entries,
                stall_at_event: None,
                stall: Duration::ZERO,
                seen: 0,
                stalled: false,
            }
        }

        fn stalling(mut self, at_event: u64, stall: Duration) -> Self {
            self.stall_at_event = Some(at_event);
            self.stall = stall;
            self
        }
    }

    impl EventSink for TestSink {
        fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
            if entry.is_graph() {
                self.seen += 1;
                if !self.stalled && Some(self.seen) == self.stall_at_event {
                    self.stalled = true;
                    thread::sleep(self.stall);
                }
            }
            self.entries.lock().unwrap().push(entry.clone());
            Ok(())
        }

        fn send_batch(&mut self, batch: &[SharedEntry]) -> io::Result<()> {
            for entry in batch {
                self.send(entry)?;
            }
            Ok(())
        }
    }

    fn stream_entries(n: u64) -> Vec<StreamEntry> {
        let mut entries = vec![StreamEntry::marker("start")];
        for i in 0..n {
            entries.push(StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(i),
                state: State::empty(),
            }));
        }
        entries.push(StreamEntry::marker("end"));
        entries
    }

    fn run(model: LoopModel, entries: &[StreamEntry], sink: TestSink) -> ClientReport {
        let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
        let config = ClientConfig::new("test", model, 20_000.0, 7);
        run_client(entries, &config, Box::new(sink), clock).unwrap()
    }

    #[test]
    fn open_loop_delivers_everything_in_order() {
        let delivered = Arc::new(Mutex::new(Vec::new()));
        let entries = stream_entries(200);
        let report = run(
            LoopModel::Open,
            &entries,
            TestSink::new(Arc::clone(&delivered)),
        );
        assert_eq!(report.offered, 200);
        assert_eq!(report.sent, 200);
        assert_eq!(report.sojourn.len(), 200);
        let delivered = delivered.lock().unwrap();
        assert_eq!(delivered.as_slice(), &entries[..], "order preserved");
    }

    #[test]
    fn open_loop_offered_survives_a_stall_and_sojourn_spikes() {
        let delivered = Arc::new(Mutex::new(Vec::new()));
        let entries = stream_entries(400);
        let stall = Duration::from_millis(200);
        let report = run(
            LoopModel::Open,
            &entries,
            TestSink::new(Arc::clone(&delivered)).stalling(50, stall),
        );
        assert_eq!(report.offered, 400, "open loop keeps offering under stall");
        assert_eq!(report.sent, 400);
        assert!(
            report.backlog_peak > 10,
            "stall must grow a counted backlog, saw {}",
            report.backlog_peak
        );
        let max_sojourn = report.sojourn.iter().map(|&(_, s)| s).max().unwrap();
        assert!(
            max_sojourn >= 150_000,
            "queued events must be charged the stall, max sojourn {max_sojourn}us"
        );
    }

    #[test]
    fn closed_loop_collapses_offered_rate_under_stall() {
        let delivered = Arc::new(Mutex::new(Vec::new()));
        let entries = stream_entries(100);
        let stall = Duration::from_millis(200);
        let report = run(
            LoopModel::Closed,
            &entries,
            TestSink::new(Arc::clone(&delivered)).stalling(10, stall),
        );
        assert_eq!(report.offered, 100);
        // 100 events at 20k/s ≈ 5ms nominal; the stall dominates the
        // run, so the achieved offered rate collapses far below nominal.
        assert!(
            report.offered_rate() < 2_000.0,
            "closed loop should slow down with the sink, got {:.0} e/s",
            report.offered_rate()
        );
    }

    #[test]
    fn partial_open_bounds_backlog_at_the_window() {
        let delivered = Arc::new(Mutex::new(Vec::new()));
        let entries = stream_entries(300);
        let report = run(
            LoopModel::PartialOpen { window: 16 },
            &entries,
            TestSink::new(Arc::clone(&delivered)).stalling(20, Duration::from_millis(100)),
        );
        assert_eq!(report.offered, 300);
        assert!(
            report.backlog_peak <= 16 + WRITE_BURST as u64,
            "window must bound the backlog, saw {}",
            report.backlog_peak
        );
    }

    #[test]
    fn sink_error_propagates() {
        struct FailingSink;
        impl EventSink for FailingSink {
            fn send(&mut self, _entry: &StreamEntry) -> io::Result<()> {
                Err(io::Error::other("boom"))
            }
        }
        let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
        let config = ClientConfig::new("test", LoopModel::Open, 50_000.0, 0);
        let err =
            run_client(&stream_entries(50), &config, Box::new(FailingSink), clock).unwrap_err();
        assert_eq!(err.to_string(), "boom");
    }
}

//! Deterministic, seeded stream partitioning.
//!
//! Splitting one generated stream into N per-connection substreams must
//! be (a) stable — the same event lands on the same connection for the
//! same seed, so runs are reproducible and per-entity event order is
//! preserved, and (b) entity-affine — all events touching a vertex ride
//! the same connection, so no cross-connection reordering can violate
//! per-entity causality (an `ADD_VERTEX` arriving after its
//! `UPDATE_VERTEX`). Markers and control events are broadcast to every
//! substream: the listener's barrier needs to see each marker on each
//! connection to re-establish a total order.

use gt_core::prelude::*;

/// Splits a stream across N substreams by seeded entity hash.
#[derive(Debug, Clone, Copy)]
pub struct SeededPartitioner {
    partitions: usize,
    seed: u64,
}

/// SplitMix64 finalizer — a strong, dependency-free 64-bit mix.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl SeededPartitioner {
    /// A partitioner over `partitions` substreams.
    ///
    /// # Panics
    /// If `partitions` is zero.
    pub fn new(partitions: usize, seed: u64) -> Self {
        assert!(partitions > 0, "partition count must be positive");
        SeededPartitioner { partitions, seed }
    }

    /// Number of substreams this partitioner splits into.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The routing key of a graph event: its vertex, or an edge's source
    /// vertex (edge events co-locate with their source's vertex events).
    fn route_key(event: &GraphEvent) -> u64 {
        match event {
            GraphEvent::AddVertex { id, .. }
            | GraphEvent::RemoveVertex { id }
            | GraphEvent::UpdateVertex { id, .. } => id.raw(),
            GraphEvent::AddEdge { id, .. }
            | GraphEvent::RemoveEdge { id }
            | GraphEvent::UpdateEdge { id, .. } => id.src.raw(),
        }
    }

    /// The substream a graph event belongs to.
    pub fn owner_of(&self, event: &GraphEvent) -> usize {
        (mix64(Self::route_key(event) ^ self.seed) % self.partitions as u64) as usize
    }

    /// Whether entry `entry` belongs on substream `partition` — markers
    /// and control events belong to every substream (broadcast).
    pub fn belongs_to(&self, entry: &StreamEntry, partition: usize) -> bool {
        match entry {
            StreamEntry::Graph(event) => self.owner_of(event) == partition,
            StreamEntry::Marker(_) | StreamEntry::Control(_) => true,
        }
    }

    /// Splits a stream into `partitions` substreams: graph events are
    /// routed by seeded entity hash, markers and control events are
    /// broadcast to all substreams, and relative order is preserved
    /// within each substream.
    pub fn split(&self, stream: &GraphStream) -> Vec<GraphStream> {
        let mut out: Vec<GraphStream> = (0..self.partitions).map(|_| GraphStream::new()).collect();
        for entry in stream.entries() {
            match entry {
                StreamEntry::Graph(event) => out[self.owner_of(event)].push(entry.clone()),
                StreamEntry::Marker(_) | StreamEntry::Control(_) => {
                    for sub in &mut out {
                        sub.push(entry.clone());
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream(n: u64) -> GraphStream {
        let mut stream = GraphStream::new();
        stream.push(StreamEntry::marker("start"));
        for i in 0..n {
            stream.push(StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(i),
                state: State::empty(),
            }));
            if i % 3 == 0 && i > 0 {
                stream.push(StreamEntry::graph(GraphEvent::AddEdge {
                    id: EdgeId::new(VertexId(i), VertexId(i - 1)),
                    state: State::empty(),
                }));
            }
        }
        stream.push(StreamEntry::marker("end"));
        stream
    }

    #[test]
    fn split_conserves_graph_events_and_broadcasts_markers() {
        let stream = sample_stream(300);
        let graph_events = stream.entries().iter().filter(|e| e.is_graph()).count();
        let partitioner = SeededPartitioner::new(8, 42);
        let subs = partitioner.split(&stream);
        assert_eq!(subs.len(), 8);
        let total: usize = subs
            .iter()
            .map(|s| s.entries().iter().filter(|e| e.is_graph()).count())
            .sum();
        assert_eq!(total, graph_events, "every graph event lands exactly once");
        for sub in &subs {
            let markers: Vec<_> = sub
                .entries()
                .iter()
                .filter(|e| e.is_marker())
                .cloned()
                .collect();
            assert_eq!(
                markers,
                vec![StreamEntry::marker("start"), StreamEntry::marker("end")],
                "markers broadcast to every substream, in order"
            );
        }
    }

    #[test]
    fn split_is_deterministic_and_seed_sensitive() {
        let stream = sample_stream(200);
        let a = SeededPartitioner::new(4, 1).split(&stream);
        let b = SeededPartitioner::new(4, 1).split(&stream);
        let c = SeededPartitioner::new(4, 2).split(&stream);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.entries(), y.entries());
        }
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.entries() != y.entries()),
            "a different seed should route differently"
        );
    }

    #[test]
    fn entity_affinity_edges_follow_source_vertex() {
        let partitioner = SeededPartitioner::new(16, 9);
        for src in 0..200u64 {
            let vertex_owner =
                partitioner.owner_of(&GraphEvent::RemoveVertex { id: VertexId(src) });
            let edge_owner = partitioner.owner_of(&GraphEvent::RemoveEdge {
                id: EdgeId::new(VertexId(src), VertexId(src + 1)),
            });
            assert_eq!(vertex_owner, edge_owner);
        }
    }

    #[test]
    fn split_balances_reasonably() {
        let stream = sample_stream(4000);
        let subs = SeededPartitioner::new(8, 3).split(&stream);
        let counts: Vec<usize> = subs
            .iter()
            .map(|s| s.entries().iter().filter(|e| e.is_graph()).count())
            .collect();
        let expected = counts.iter().sum::<usize>() / counts.len();
        for count in counts {
            assert!(
                count > expected / 2 && count < expected * 2,
                "partition badly unbalanced: {count} vs mean {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "partition count")]
    fn zero_partitions_rejected() {
        let _ = SeededPartitioner::new(0, 0);
    }
}

//! Graph stream containers and streaming I/O.
//!
//! [`GraphStream`] is the in-memory representation of a graph stream file.
//! [`StreamReader`] and [`StreamWriter`] process streams incrementally over
//! any [`std::io::BufRead`] / [`std::io::Write`], so replaying never needs
//! the whole stream in memory (the paper decouples reading from emitting
//! for exactly this reason).

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::error::CoreError;
use crate::event::{EventKind, StreamEntry};
use crate::format::{entry_to_line, parse_line, write_line};

/// An in-memory graph stream: an ordered sequence of stream entries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GraphStream {
    entries: Vec<StreamEntry>,
}

impl GraphStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an entry sequence.
    pub fn from_entries(entries: Vec<StreamEntry>) -> Self {
        GraphStream { entries }
    }

    /// The entries, in stream order.
    pub fn entries(&self) -> &[StreamEntry] {
        &self.entries
    }

    /// Mutable access for in-place transformations (fault injection).
    pub fn entries_mut(&mut self) -> &mut Vec<StreamEntry> {
        &mut self.entries
    }

    /// Consumes the stream, yielding its entries.
    pub fn into_entries(self) -> Vec<StreamEntry> {
        self.entries
    }

    /// Number of entries (including markers and control events).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stream has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: StreamEntry) {
        self.entries.push(entry);
    }

    /// Appends all entries of `other`.
    pub fn extend(&mut self, other: GraphStream) {
        self.entries.extend(other.entries);
    }

    /// Iterates over only the graph-changing events.
    pub fn graph_events(&self) -> impl Iterator<Item = &crate::event::GraphEvent> {
        self.entries.iter().filter_map(|e| e.as_graph())
    }

    /// Serializes the whole stream to a CSV string (one entry per line).
    pub fn to_csv_string(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 24);
        for entry in &self.entries {
            write_line(entry, &mut out);
            out.push('\n');
        }
        out
    }

    /// Parses a stream from CSV text.
    pub fn parse_csv(text: &str) -> Result<Self, CoreError> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if let Some(entry) = parse_line(line).map_err(|e| e.at_line(i + 1))? {
                entries.push(entry);
            }
        }
        Ok(GraphStream { entries })
    }

    /// Writes the stream to a file.
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> Result<(), CoreError> {
        let file = File::create(path)?;
        let mut writer = StreamWriter::new(BufWriter::new(file));
        for entry in &self.entries {
            writer.write(entry)?;
        }
        writer.flush()?;
        Ok(())
    }

    /// Reads a stream from a file.
    pub fn read_from_file(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        let file = File::open(path)?;
        let reader = StreamReader::new(BufReader::new(file));
        let entries = reader.collect::<Result<Vec<_>, _>>()?;
        Ok(GraphStream { entries })
    }

    /// Computes composition statistics over the stream.
    pub fn stats(&self) -> StreamStats {
        let mut stats = StreamStats::default();
        for entry in &self.entries {
            match entry {
                StreamEntry::Graph(event) => {
                    stats.graph_events += 1;
                    *stats.by_kind.entry(event.kind()).or_insert(0) += 1;
                }
                StreamEntry::Marker(_) => stats.markers += 1,
                StreamEntry::Control(_) => stats.controls += 1,
            }
        }
        stats
    }
}

impl FromIterator<StreamEntry> for GraphStream {
    fn from_iter<T: IntoIterator<Item = StreamEntry>>(iter: T) -> Self {
        GraphStream {
            entries: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for GraphStream {
    type Item = StreamEntry;
    type IntoIter = std::vec::IntoIter<StreamEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// Composition statistics of a stream (paper §4.4.1: event mix, topology vs.
/// state changes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Number of graph-changing events.
    pub graph_events: usize,
    /// Number of marker entries.
    pub markers: usize,
    /// Number of control entries.
    pub controls: usize,
    /// Count per event kind.
    pub by_kind: BTreeMap<EventKind, usize>,
}

impl StreamStats {
    /// Count for one kind (0 if absent).
    pub fn count(&self, kind: EventKind) -> usize {
        self.by_kind.get(&kind).copied().unwrap_or(0)
    }

    /// Fraction of graph events that change topology.
    pub fn topology_ratio(&self) -> f64 {
        if self.graph_events == 0 {
            return 0.0;
        }
        let topo: usize = EventKind::ALL
            .into_iter()
            .filter(|k| k.is_topology_change())
            .map(|k| self.count(k))
            .sum();
        topo as f64 / self.graph_events as f64
    }

    /// Fraction of graph events that target vertices.
    pub fn vertex_ratio(&self) -> f64 {
        if self.graph_events == 0 {
            return 0.0;
        }
        let vertex: usize = EventKind::ALL
            .into_iter()
            .filter(|k| k.is_vertex_event())
            .map(|k| self.count(k))
            .sum();
        vertex as f64 / self.graph_events as f64
    }

    /// Of the topology-changing events, the fraction that *add* entities —
    /// §4.4.1's "Direction: ratio of add vs remove operations". 0.0 when
    /// the stream has no topology changes.
    pub fn addition_ratio(&self) -> f64 {
        let adds: usize = EventKind::ALL
            .into_iter()
            .filter(|k| k.is_addition())
            .map(|k| self.count(k))
            .sum();
        let removes: usize = EventKind::ALL
            .into_iter()
            .filter(|k| k.is_removal())
            .map(|k| self.count(k))
            .sum();
        let topo = adds + removes;
        if topo == 0 {
            return 0.0;
        }
        adds as f64 / topo as f64
    }
}

/// An incremental reader that yields entries from any buffered reader.
///
/// Blank lines and comments are skipped; parse errors carry line numbers.
pub struct StreamReader<R> {
    inner: R,
    line: String,
    line_no: usize,
}

impl<R: BufRead> StreamReader<R> {
    /// Wraps a buffered reader.
    pub fn new(inner: R) -> Self {
        StreamReader {
            inner,
            line: String::new(),
            line_no: 0,
        }
    }

    /// Reads the next entry, skipping blanks/comments. `Ok(None)` at EOF.
    pub fn read_entry(&mut self) -> Result<Option<StreamEntry>, CoreError> {
        loop {
            self.line.clear();
            let n = self.inner.read_line(&mut self.line)?;
            if n == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            let trimmed = self.line.trim_end_matches(['\n', '\r']);
            match parse_line(trimmed).map_err(|e| e.at_line(self.line_no))? {
                Some(entry) => return Ok(Some(entry)),
                None => continue,
            }
        }
    }
}

impl<R: BufRead> Iterator for StreamReader<R> {
    type Item = Result<StreamEntry, CoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_entry().transpose()
    }
}

/// An incremental writer emitting one entry per line.
pub struct StreamWriter<W> {
    inner: W,
    buf: String,
}

impl<W: Write> StreamWriter<W> {
    /// Wraps a writer (use a [`BufWriter`] for files/sockets).
    pub fn new(inner: W) -> Self {
        StreamWriter {
            inner,
            buf: String::with_capacity(64),
        }
    }

    /// Writes one entry followed by a newline.
    pub fn write(&mut self, entry: &StreamEntry) -> io::Result<()> {
        self.buf.clear();
        write_line(entry, &mut self.buf);
        self.buf.push('\n');
        self.inner.write_all(self.buf.as_bytes())
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Serializes one entry as a standalone line (re-export convenience).
pub fn line_for(entry: &StreamEntry) -> String {
    entry_to_line(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::GraphEvent;
    use crate::ids::{EdgeId, VertexId};
    use crate::state::State;
    use std::io::Cursor;
    use std::time::Duration;

    fn sample_stream() -> GraphStream {
        GraphStream::from_entries(vec![
            StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(1),
                state: State::empty(),
            }),
            StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(2),
                state: State::new("user"),
            }),
            StreamEntry::graph(GraphEvent::AddEdge {
                id: EdgeId::from((1, 2)),
                state: State::weight(1.0),
            }),
            StreamEntry::marker("bootstrap-done"),
            StreamEntry::pause(Duration::from_millis(100)),
            StreamEntry::speed(2.0),
            StreamEntry::graph(GraphEvent::UpdateVertex {
                id: VertexId(1),
                state: State::new("active"),
            }),
            StreamEntry::graph(GraphEvent::RemoveEdge {
                id: EdgeId::from((1, 2)),
            }),
        ])
    }

    #[test]
    fn csv_roundtrip() {
        let stream = sample_stream();
        let text = stream.to_csv_string();
        let parsed = GraphStream::parse_csv(&text).unwrap();
        assert_eq!(parsed, stream);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "ADD_VERTEX,1,\nBAD_COMMAND,2,\n";
        let err = GraphStream::parse_csv(text).unwrap_err();
        match err {
            CoreError::Parse(p) => assert_eq!(p.line, Some(2)),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn reader_skips_comments_and_blank_lines() {
        let text = "# a stream\n\nADD_VERTEX,1,\n   \nMARKER,m,\n";
        let reader = StreamReader::new(Cursor::new(text));
        let entries: Vec<_> = reader.collect::<Result<_, _>>().unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].is_graph());
        assert!(entries[1].is_marker());
    }

    #[test]
    fn reader_handles_crlf() {
        let text = "ADD_VERTEX,1,\r\nADD_VERTEX,2,hello\r\n";
        let reader = StreamReader::new(Cursor::new(text));
        let entries: Vec<_> = reader.collect::<Result<_, _>>().unwrap();
        assert_eq!(entries.len(), 2);
        match &entries[1] {
            StreamEntry::Graph(GraphEvent::AddVertex { state, .. }) => {
                assert_eq!(state.as_str(), "hello");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn writer_reader_pipeline() {
        let stream = sample_stream();
        let mut writer = StreamWriter::new(Vec::new());
        for entry in stream.entries() {
            writer.write(entry).unwrap();
        }
        let bytes = writer.into_inner();
        let reader = StreamReader::new(Cursor::new(bytes));
        let entries: Vec<_> = reader.collect::<Result<_, _>>().unwrap();
        assert_eq!(entries, stream.entries());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("gt-core-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.csv");
        let stream = sample_stream();
        stream.write_to_file(&path).unwrap();
        let read = GraphStream::read_from_file(&path).unwrap();
        assert_eq!(read, stream);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_composition() {
        let stats = sample_stream().stats();
        assert_eq!(stats.graph_events, 5);
        assert_eq!(stats.markers, 1);
        assert_eq!(stats.controls, 2);
        assert_eq!(stats.count(EventKind::AddVertex), 2);
        assert_eq!(stats.count(EventKind::AddEdge), 1);
        assert_eq!(stats.count(EventKind::UpdateVertex), 1);
        assert_eq!(stats.count(EventKind::RemoveEdge), 1);
        assert_eq!(stats.count(EventKind::RemoveVertex), 0);
        // 4 of 5 graph events are topology changes.
        assert!((stats.topology_ratio() - 0.8).abs() < 1e-12);
        // 3 of 5 graph events are vertex events.
        assert!((stats.vertex_ratio() - 0.6).abs() < 1e-12);
        // 3 adds vs 1 remove among the topology changes.
        assert!((stats.addition_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn addition_ratio_without_topology_changes() {
        let stream =
            GraphStream::from_entries(vec![StreamEntry::graph(GraphEvent::UpdateVertex {
                id: VertexId(1),
                state: State::empty(),
            })]);
        // No adds/removes at all: defined as 0.
        assert_eq!(stream.stats().addition_ratio(), 0.0);
    }

    #[test]
    fn stats_on_empty_stream() {
        let stats = GraphStream::new().stats();
        assert_eq!(stats.graph_events, 0);
        assert_eq!(stats.topology_ratio(), 0.0);
        assert_eq!(stats.vertex_ratio(), 0.0);
    }

    #[test]
    fn from_iterator_and_into_iterator() {
        let stream: GraphStream = sample_stream().into_iter().collect();
        assert_eq!(stream, sample_stream());
    }
}

//! Vertex and edge state payloads.
//!
//! GraphTides treats states as user-defined strings (the paper suggests
//! stringified JSON). [`State`] wraps that string and adds a few typed
//! helpers that the built-in workloads use (numeric weights, key/value
//! pairs) without imposing a schema on user payloads.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An opaque, user-defined state payload attached to a vertex or edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct State(pub String);

impl State {
    /// The empty state.
    pub fn empty() -> Self {
        State(String::new())
    }

    /// Creates a state from any displayable value.
    pub fn new(s: impl Into<String>) -> Self {
        State(s.into())
    }

    /// Creates a state holding a numeric weight (e.g. an edge weight).
    pub fn weight(w: f64) -> Self {
        State(format_weight(w))
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the raw payload.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Parses the payload as an `f64` weight, if it is one.
    pub fn as_weight(&self) -> Option<f64> {
        self.0.trim().parse().ok()
    }

    /// Interprets the payload as `key=value;key=value` pairs and returns the
    /// value for `key`, if present. This is the convention the built-in
    /// workloads use for structured payloads.
    pub fn get_field<'a>(&'a self, key: &str) -> Option<&'a str> {
        self.0.split(';').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// Builds a `key=value;...` state from pairs.
    pub fn from_fields<'a>(fields: impl IntoIterator<Item = (&'a str, String)>) -> Self {
        let mut out = String::new();
        for (i, (k, v)) in fields.into_iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            out.push_str(k);
            out.push('=');
            out.push_str(&v);
        }
        State(out)
    }
}

/// Formats a weight without trailing zeros noise (`1` instead of `1.0` only
/// when exact), keeping round-trip precision via `f64`'s shortest repr.
fn format_weight(w: f64) -> String {
    let mut s = format!("{w}");
    if s == "-0" {
        s = "0".to_owned();
    }
    s
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for State {
    fn from(s: &str) -> Self {
        State(s.to_owned())
    }
}

impl From<String> for State {
    fn from(s: String) -> Self {
        State(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_state() {
        assert!(State::empty().is_empty());
        assert_eq!(State::empty().as_str(), "");
    }

    #[test]
    fn weight_roundtrip() {
        for w in [0.0, 1.0, -2.5, 0.1, 1e10, f64::MIN_POSITIVE] {
            assert_eq!(State::weight(w).as_weight(), Some(w), "weight {w}");
        }
    }

    #[test]
    fn weight_of_non_numeric_is_none() {
        assert_eq!(State::new("hello").as_weight(), None);
        assert_eq!(State::empty().as_weight(), None);
    }

    #[test]
    fn field_access() {
        let s = State::from_fields([("name", "ada".to_owned()), ("rank", "3".to_owned())]);
        assert_eq!(s.as_str(), "name=ada;rank=3");
        assert_eq!(s.get_field("name"), Some("ada"));
        assert_eq!(s.get_field("rank"), Some("3"));
        assert_eq!(s.get_field("missing"), None);
    }

    #[test]
    fn negative_zero_weight_normalized() {
        assert_eq!(State::weight(-0.0).as_str(), "0");
    }
}

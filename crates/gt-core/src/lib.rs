#![warn(missing_docs)]

//! # gt-core
//!
//! Core types for the GraphTides evaluation framework: the graph event
//! model, entity identifiers, the plain-text graph stream format, and the
//! errors shared by all other crates.
//!
//! GraphTides models a dynamic graph as an ordered stream of events. Each
//! event describes one of six localized operations (add/remove vertex/edge,
//! update vertex/edge state). A stream additionally carries *marker* events
//! that flag points in the stream for later temporal correlation, and
//! *control* events that steer the replayer (speed changes and pauses).
//!
//! The on-disk representation is a comma-separated value file with one event
//! per line: `COMMAND, ENTITY_ID, PAYLOAD` (see [`mod@format`]).
//!
//! ```
//! use gt_core::prelude::*;
//!
//! let events = vec![
//!     StreamEntry::graph(GraphEvent::AddVertex { id: VertexId(1), state: State::empty() }),
//!     StreamEntry::graph(GraphEvent::AddVertex { id: VertexId(2), state: State::empty() }),
//!     StreamEntry::graph(GraphEvent::AddEdge {
//!         id: EdgeId::new(VertexId(1), VertexId(2)),
//!         state: State::empty(),
//!     }),
//!     StreamEntry::marker("bootstrap-done"),
//! ];
//! let stream = GraphStream::from_entries(events);
//! let text = stream.to_csv_string();
//! let parsed = GraphStream::parse_csv(&text).unwrap();
//! assert_eq!(stream, parsed);
//! ```

pub mod error;
pub mod event;
pub mod format;
pub mod ids;
pub mod intern;
pub mod state;
pub mod stream;

pub use error::{CoreError, ParseError};
pub use event::{ControlEvent, EventKind, GraphEvent, SharedEntry, SharedGraphEvent, StreamEntry};
pub use format::{parse_line, parse_line_ref, write_line, GraphEventRef, StreamEntryRef};
pub use ids::{EdgeId, VertexId};
pub use intern::Interner;
pub use state::State;
pub use stream::{GraphStream, StreamReader, StreamStats, StreamWriter};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::error::{CoreError, ParseError};
    pub use crate::event::{
        ControlEvent, EventKind, GraphEvent, SharedEntry, SharedGraphEvent, StreamEntry,
    };
    pub use crate::format::{parse_line_ref, GraphEventRef, StreamEntryRef};
    pub use crate::ids::{EdgeId, VertexId};
    pub use crate::state::State;
    pub use crate::stream::{GraphStream, StreamReader, StreamStats, StreamWriter};
}

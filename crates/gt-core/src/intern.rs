//! A small thread-safe string interner for marker names.
//!
//! Marker names recur constantly — every `shards=N` broadcast and every
//! `--clients M` fan-out used to clone the `String` once per recipient.
//! Interning turns the name into an [`Arc<str>`] once; every subsequent
//! copy is a reference-count bump, and repeats of the *same* name (markers
//! are often emitted on a schedule: `window-1`, `window-2`, …, re-sent on
//! retries) share one allocation process-wide.
//!
//! The table is deliberately tiny: a mutex around a `HashSet<Arc<str>>`.
//! Marker cardinality is bounded by the experiment design (tens to
//! thousands), so contention and growth are negligible next to the
//! per-copy allocations it removes.

use std::collections::HashSet;
use std::sync::{Arc, Mutex, OnceLock};

/// A deduplicating table of shared strings.
#[derive(Debug, Default)]
pub struct Interner {
    table: Mutex<HashSet<Arc<str>>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the shared handle for `name`, allocating only on first
    /// sight of a given string.
    pub fn intern(&self, name: &str) -> Arc<str> {
        let mut table = self.table.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = table.get(name) {
            return Arc::clone(existing);
        }
        let shared: Arc<str> = Arc::from(name);
        table.insert(Arc::clone(&shared));
        shared
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.table.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Interns `name` in the process-wide table. This is the call broadcast
/// fan-out paths use so one marker name is allocated once per process, not
/// once per shard or connection.
pub fn intern(name: &str) -> Arc<str> {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(Interner::new).intern(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_interns_share_one_allocation() {
        let interner = Interner::new();
        let a = interner.intern("window-1");
        let b = interner.intern("window-1");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(interner.len(), 1);
        let c = interner.intern("window-2");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn global_interner_deduplicates() {
        let a = intern("global-marker");
        let b = intern("global-marker");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(&*a, "global-marker");
    }
}

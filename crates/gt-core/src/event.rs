//! The graph stream event model.
//!
//! A stream entry is one of three classes (paper §4.2):
//!
//! * **Graph-changing events** — the six localized operations of the system
//!   model: add/remove vertex/edge and update vertex/edge state.
//! * **Marker events** — named flags correlated with wall-clock time during
//!   analysis ("watermarks" in §4.5).
//! * **Control events** — instructions to the replayer: change the speed
//!   factor or pause the stream.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::ids::{EdgeId, VertexId};
use crate::state::State;

/// One of the six graph-changing operations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphEvent {
    /// Adds a vertex with an initial state.
    AddVertex {
        /// The vertex to create.
        id: VertexId,
        /// Initial vertex state.
        state: State,
    },
    /// Removes a vertex (and, in the evolving-graph semantics, all its
    /// incident edges).
    RemoveVertex {
        /// The vertex to remove.
        id: VertexId,
    },
    /// Replaces the state of an existing vertex.
    UpdateVertex {
        /// The vertex to update.
        id: VertexId,
        /// New vertex state.
        state: State,
    },
    /// Adds a directed edge with an initial state.
    AddEdge {
        /// The edge to create.
        id: EdgeId,
        /// Initial edge state.
        state: State,
    },
    /// Removes a directed edge.
    RemoveEdge {
        /// The edge to remove.
        id: EdgeId,
    },
    /// Replaces the state of an existing edge.
    UpdateEdge {
        /// The edge to update.
        id: EdgeId,
        /// New edge state.
        state: State,
    },
}

impl GraphEvent {
    /// Classifies the event.
    pub fn kind(&self) -> EventKind {
        match self {
            GraphEvent::AddVertex { .. } => EventKind::AddVertex,
            GraphEvent::RemoveVertex { .. } => EventKind::RemoveVertex,
            GraphEvent::UpdateVertex { .. } => EventKind::UpdateVertex,
            GraphEvent::AddEdge { .. } => EventKind::AddEdge,
            GraphEvent::RemoveEdge { .. } => EventKind::RemoveEdge,
            GraphEvent::UpdateEdge { .. } => EventKind::UpdateEdge,
        }
    }

    /// Whether this event changes the graph topology (adds/removes an
    /// entity) rather than only state.
    pub fn is_topology_change(&self) -> bool {
        self.kind().is_topology_change()
    }

    /// Whether this event targets a vertex (as opposed to an edge).
    pub fn is_vertex_event(&self) -> bool {
        self.kind().is_vertex_event()
    }

    /// The vertex this event targets, if it is a vertex event.
    pub fn vertex(&self) -> Option<VertexId> {
        match self {
            GraphEvent::AddVertex { id, .. }
            | GraphEvent::RemoveVertex { id }
            | GraphEvent::UpdateVertex { id, .. } => Some(*id),
            _ => None,
        }
    }

    /// The edge this event targets, if it is an edge event.
    pub fn edge(&self) -> Option<EdgeId> {
        match self {
            GraphEvent::AddEdge { id, .. }
            | GraphEvent::RemoveEdge { id }
            | GraphEvent::UpdateEdge { id, .. } => Some(*id),
            _ => None,
        }
    }
}

/// The six event kinds, used for event-mix configuration and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventKind {
    /// `ADD_VERTEX`
    AddVertex,
    /// `REMOVE_VERTEX`
    RemoveVertex,
    /// `UPDATE_VERTEX`
    UpdateVertex,
    /// `ADD_EDGE`
    AddEdge,
    /// `REMOVE_EDGE`
    RemoveEdge,
    /// `UPDATE_EDGE`
    UpdateEdge,
}

impl EventKind {
    /// All six kinds, in stream-format order.
    pub const ALL: [EventKind; 6] = [
        EventKind::AddVertex,
        EventKind::RemoveVertex,
        EventKind::UpdateVertex,
        EventKind::AddEdge,
        EventKind::RemoveEdge,
        EventKind::UpdateEdge,
    ];

    /// Whether the kind changes topology (add/remove) rather than state.
    pub fn is_topology_change(self) -> bool {
        !matches!(self, EventKind::UpdateVertex | EventKind::UpdateEdge)
    }

    /// Whether the kind targets a vertex.
    pub fn is_vertex_event(self) -> bool {
        matches!(
            self,
            EventKind::AddVertex | EventKind::RemoveVertex | EventKind::UpdateVertex
        )
    }

    /// Whether the kind adds an entity.
    pub fn is_addition(self) -> bool {
        matches!(self, EventKind::AddVertex | EventKind::AddEdge)
    }

    /// Whether the kind removes an entity.
    pub fn is_removal(self) -> bool {
        matches!(self, EventKind::RemoveVertex | EventKind::RemoveEdge)
    }

    /// The stream-format command token for this kind.
    pub fn command(self) -> &'static str {
        match self {
            EventKind::AddVertex => "ADD_VERTEX",
            EventKind::RemoveVertex => "REMOVE_VERTEX",
            EventKind::UpdateVertex => "UPDATE_VERTEX",
            EventKind::AddEdge => "ADD_EDGE",
            EventKind::RemoveEdge => "REMOVE_EDGE",
            EventKind::UpdateEdge => "UPDATE_EDGE",
        }
    }
}

/// Events that steer the graph stream replayer at runtime (paper §4.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlEvent {
    /// Changes the replay speed by a factor relative to the configured base
    /// rate. `1.0` restores the initially defined rate; `2.0` doubles it.
    SetSpeed(f64),
    /// Pauses the replayer: no new events are emitted for the duration.
    Pause(Duration),
}

/// One entry of a graph stream file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StreamEntry {
    /// A graph-changing event.
    Graph(GraphEvent),
    /// A named marker flagging this position in the stream.
    Marker(String),
    /// A replayer control instruction.
    Control(ControlEvent),
}

impl StreamEntry {
    /// Wraps a graph event.
    pub fn graph(event: GraphEvent) -> Self {
        StreamEntry::Graph(event)
    }

    /// Creates a named marker entry.
    pub fn marker(name: impl Into<String>) -> Self {
        StreamEntry::Marker(name.into())
    }

    /// Creates a speed-change control entry.
    pub fn speed(factor: f64) -> Self {
        StreamEntry::Control(ControlEvent::SetSpeed(factor))
    }

    /// Creates a pause control entry.
    pub fn pause(duration: Duration) -> Self {
        StreamEntry::Control(ControlEvent::Pause(duration))
    }

    /// The wrapped graph event, if this entry is one.
    pub fn as_graph(&self) -> Option<&GraphEvent> {
        match self {
            StreamEntry::Graph(e) => Some(e),
            _ => None,
        }
    }

    /// Whether the entry is a graph-changing event.
    pub fn is_graph(&self) -> bool {
        matches!(self, StreamEntry::Graph(_))
    }

    /// Whether the entry is a marker.
    pub fn is_marker(&self) -> bool {
        matches!(self, StreamEntry::Marker(_))
    }

    /// Whether the entry is a control instruction.
    pub fn is_control(&self) -> bool {
        matches!(self, StreamEntry::Control(_))
    }
}

impl From<GraphEvent> for StreamEntry {
    fn from(e: GraphEvent) -> Self {
        StreamEntry::Graph(e)
    }
}

/// A stream entry with shared ownership.
///
/// This is the unit of the batched ingest path (replayer → connector →
/// platform): the replayer allocates each entry once, and every hand-off
/// downstream — batch dispatch, shard routing, worker mailboxes — clones the
/// `Arc`, never the payload.
pub type SharedEntry = std::sync::Arc<StreamEntry>;

/// A shared-ownership handle that is guaranteed to wrap a
/// [`StreamEntry::Graph`] entry.
///
/// Connectors and platform internals route graph events through channels and
/// transaction batches; carrying them as `SharedGraphEvent` keeps the
/// zero-copy guarantee of [`SharedEntry`] while statically ruling out marker
/// and control entries, so consumers can access the event without matching.
#[derive(Clone)]
pub struct SharedGraphEvent(SharedEntry);

impl SharedGraphEvent {
    /// Wraps an owned graph event (allocates the shared entry).
    pub fn new(event: GraphEvent) -> Self {
        SharedGraphEvent(SharedEntry::new(StreamEntry::Graph(event)))
    }

    /// Shares the graph event inside `entry`, or `None` if the entry is a
    /// marker or control instruction. Never copies the event payload.
    pub fn from_entry(entry: &SharedEntry) -> Option<Self> {
        match entry.as_ref() {
            StreamEntry::Graph(_) => Some(SharedGraphEvent(SharedEntry::clone(entry))),
            _ => None,
        }
    }

    /// The wrapped graph event.
    pub fn event(&self) -> &GraphEvent {
        match self.0.as_ref() {
            StreamEntry::Graph(event) => event,
            // Unreachable by construction: both constructors only admit the
            // Graph variant.
            _ => unreachable!("SharedGraphEvent wraps a non-graph entry"),
        }
    }

    /// The underlying shared entry.
    pub fn into_entry(self) -> SharedEntry {
        self.0
    }
}

impl std::ops::Deref for SharedGraphEvent {
    type Target = GraphEvent;

    fn deref(&self) -> &GraphEvent {
        self.event()
    }
}

impl From<GraphEvent> for SharedGraphEvent {
    fn from(event: GraphEvent) -> Self {
        SharedGraphEvent::new(event)
    }
}

impl std::fmt::Debug for SharedGraphEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.event().fmt(f)
    }
}

impl PartialEq for SharedGraphEvent {
    fn eq(&self, other: &Self) -> bool {
        self.event() == other.event()
    }
}

impl Eq for SharedGraphEvent {}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u64) -> VertexId {
        VertexId(id)
    }

    #[test]
    fn kind_classification() {
        let add_v = GraphEvent::AddVertex {
            id: v(1),
            state: State::empty(),
        };
        assert_eq!(add_v.kind(), EventKind::AddVertex);
        assert!(add_v.is_topology_change());
        assert!(add_v.is_vertex_event());
        assert_eq!(add_v.vertex(), Some(v(1)));
        assert_eq!(add_v.edge(), None);

        let upd_e = GraphEvent::UpdateEdge {
            id: EdgeId::from((1, 2)),
            state: State::weight(2.0),
        };
        assert!(!upd_e.is_topology_change());
        assert!(!upd_e.is_vertex_event());
        assert_eq!(upd_e.edge(), Some(EdgeId::from((1, 2))));
        assert_eq!(upd_e.vertex(), None);
    }

    #[test]
    fn kind_predicates_are_consistent() {
        for kind in EventKind::ALL {
            assert_eq!(
                kind.is_topology_change(),
                kind.is_addition() || kind.is_removal(),
                "{kind:?}"
            );
            assert!(
                !(kind.is_addition() && kind.is_removal()),
                "{kind:?} cannot be both"
            );
        }
    }

    #[test]
    fn entry_constructors() {
        assert!(StreamEntry::marker("m").is_marker());
        assert!(StreamEntry::speed(2.0).is_control());
        assert!(StreamEntry::pause(Duration::from_secs(1)).is_control());
        let g = StreamEntry::graph(GraphEvent::RemoveVertex { id: v(3) });
        assert!(g.is_graph());
        assert!(g.as_graph().is_some());
        assert!(StreamEntry::marker("m").as_graph().is_none());
    }

    #[test]
    fn command_tokens_are_unique() {
        let mut tokens: Vec<_> = EventKind::ALL.iter().map(|k| k.command()).collect();
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), 6);
    }
}

//! Error types shared across the workspace.

use std::fmt;
use std::io;

/// A parse error in the graph stream format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the source, if known.
    pub line: Option<usize>,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The specific kind of parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Unknown command token in the first field.
    UnknownCommand(String),
    /// Missing a required field (command or entity id).
    MissingField(&'static str),
    /// Entity id could not be parsed.
    InvalidEntity(String),
    /// Payload was malformed for the command (e.g. non-numeric speed factor).
    InvalidPayload(String),
}

impl ParseError {
    /// Builds an error for an unparseable entity id.
    pub fn invalid_entity(s: &str) -> Self {
        ParseError {
            line: None,
            kind: ParseErrorKind::InvalidEntity(s.trim().to_owned()),
        }
    }

    /// Builds an error for a malformed payload.
    pub fn invalid_payload(msg: impl Into<String>) -> Self {
        ParseError {
            line: None,
            kind: ParseErrorKind::InvalidPayload(msg.into()),
        }
    }

    /// Builds an error for an unknown command token.
    pub fn unknown_command(cmd: &str) -> Self {
        ParseError {
            line: None,
            kind: ParseErrorKind::UnknownCommand(cmd.trim().to_owned()),
        }
    }

    /// Builds an error for a missing field.
    pub fn missing_field(name: &'static str) -> Self {
        ParseError {
            line: None,
            kind: ParseErrorKind::MissingField(name),
        }
    }

    /// Attaches a 1-based line number to this error.
    #[must_use]
    pub fn at_line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(line) = self.line {
            write!(f, "line {line}: ")?;
        }
        match &self.kind {
            ParseErrorKind::UnknownCommand(c) => write!(f, "unknown command `{c}`"),
            ParseErrorKind::MissingField(n) => write!(f, "missing field `{n}`"),
            ParseErrorKind::InvalidEntity(s) => write!(f, "invalid entity id `{s}`"),
            ParseErrorKind::InvalidPayload(m) => write!(f, "invalid payload: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Top-level error for stream I/O and parsing.
#[derive(Debug)]
pub enum CoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Stream format violation.
    Parse(ParseError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Io(e) => write!(f, "i/o error: {e}"),
            CoreError::Parse(e) => write!(f, "parse error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Io(e) => Some(e),
            CoreError::Parse(e) => Some(e),
        }
    }
}

impl From<io::Error> for CoreError {
    fn from(e: io::Error) -> Self {
        CoreError::Io(e)
    }
}

impl From<ParseError> for CoreError {
    fn from(e: ParseError) -> Self {
        CoreError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_numbers() {
        let e = ParseError::unknown_command("FOO").at_line(17);
        assert_eq!(e.to_string(), "line 17: unknown command `FOO`");
    }

    #[test]
    fn display_without_line() {
        let e = ParseError::missing_field("entity");
        assert_eq!(e.to_string(), "missing field `entity`");
    }

    #[test]
    fn core_error_wraps_sources() {
        let e = CoreError::from(ParseError::invalid_entity("x"));
        assert!(std::error::Error::source(&e).is_some());
        let io = CoreError::from(io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
    }
}

//! The plain-text graph stream format.
//!
//! One entry per line: `COMMAND, ENTITY_ID, PAYLOAD` (paper §4.2).
//!
//! * The **command** selects the entry type. Graph-changing events use the
//!   six tokens `ADD_VERTEX`, `REMOVE_VERTEX`, `UPDATE_VERTEX`, `ADD_EDGE`,
//!   `REMOVE_EDGE`, `UPDATE_EDGE`; markers use `MARKER`; control events use
//!   `SPEED` and `PAUSE`.
//! * The **entity id** is a numeric vertex id, or `src-dst` for edges. For
//!   markers it carries the marker name; control events leave it empty.
//! * The **payload** is the raw remainder of the line: the user-defined
//!   state string for graph events, the speed factor for `SPEED`, and the
//!   pause duration in milliseconds for `PAUSE`. Because the payload is the
//!   *remainder*, it may itself contain commas — no quoting is required,
//!   which keeps the format trivially streamable (stringified JSON payloads
//!   pass through unchanged).
//!
//! Blank lines and lines starting with `#` are ignored, so streams can be
//! annotated in place.
//!
//! Parsing comes in two flavors: [`parse_line_ref`] borrows payloads and
//! marker names straight from the input line (allocation-free — the form
//! the replayer's hot path uses), and [`parse_line`] wraps it to produce
//! owned [`StreamEntry`] values for everything else.

use std::fmt::Write as _;
use std::time::Duration;

use crate::error::ParseError;
use crate::event::{ControlEvent, EventKind, GraphEvent, StreamEntry};
use crate::ids::{EdgeId, VertexId};
use crate::state::State;

/// Command token for marker entries.
pub const MARKER_COMMAND: &str = "MARKER";
/// Command token for speed-change control entries.
pub const SPEED_COMMAND: &str = "SPEED";
/// Command token for pause control entries.
pub const PAUSE_COMMAND: &str = "PAUSE";

/// Serializes one stream entry as a line (without trailing newline).
pub fn write_line(entry: &StreamEntry, out: &mut String) {
    match entry {
        StreamEntry::Graph(event) => write_graph_event(event, out),
        StreamEntry::Marker(name) => {
            out.push_str(MARKER_COMMAND);
            out.push(',');
            out.push_str(name);
            out.push(',');
        }
        StreamEntry::Control(ControlEvent::SetSpeed(factor)) => {
            out.push_str(SPEED_COMMAND);
            out.push_str(",,");
            // Formatting into a String cannot fail.
            let _ = write!(out, "{factor}");
        }
        StreamEntry::Control(ControlEvent::Pause(duration)) => {
            out.push_str(PAUSE_COMMAND);
            out.push_str(",,");
            let _ = write!(out, "{}", duration.as_millis());
        }
    }
}

fn write_graph_event(event: &GraphEvent, out: &mut String) {
    out.push_str(event.kind().command());
    out.push(',');
    match event {
        GraphEvent::AddVertex { id, state } | GraphEvent::UpdateVertex { id, state } => {
            let _ = write!(out, "{id}");
            out.push(',');
            out.push_str(state.as_str());
        }
        GraphEvent::RemoveVertex { id } => {
            let _ = write!(out, "{id}");
            out.push(',');
        }
        GraphEvent::AddEdge { id, state } | GraphEvent::UpdateEdge { id, state } => {
            let _ = write!(out, "{id}");
            out.push(',');
            out.push_str(state.as_str());
        }
        GraphEvent::RemoveEdge { id } => {
            let _ = write!(out, "{id}");
            out.push(',');
        }
    }
}

/// Serializes one stream entry to an owned line.
pub fn entry_to_line(entry: &StreamEntry) -> String {
    let mut s = String::with_capacity(32);
    write_line(entry, &mut s);
    s
}

/// A graph event whose state payload still borrows from the input line.
///
/// Mirror of [`GraphEvent`] produced by [`parse_line_ref`]: the shape and
/// ids are fully parsed, but the user-defined state string is a `&str`
/// slice of the line — nothing is allocated until the entry crosses an
/// ownership boundary via [`GraphEventRef::to_event`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphEventRef<'a> {
    /// `ADD_VERTEX` with a borrowed state payload.
    AddVertex {
        /// The new vertex.
        id: VertexId,
        /// Raw state payload (remainder of the line).
        state: &'a str,
    },
    /// `REMOVE_VERTEX`.
    RemoveVertex {
        /// The removed vertex.
        id: VertexId,
    },
    /// `UPDATE_VERTEX` with a borrowed state payload.
    UpdateVertex {
        /// The updated vertex.
        id: VertexId,
        /// Raw state payload.
        state: &'a str,
    },
    /// `ADD_EDGE` with a borrowed state payload.
    AddEdge {
        /// The new edge.
        id: EdgeId,
        /// Raw state payload.
        state: &'a str,
    },
    /// `REMOVE_EDGE`.
    RemoveEdge {
        /// The removed edge.
        id: EdgeId,
    },
    /// `UPDATE_EDGE` with a borrowed state payload.
    UpdateEdge {
        /// The updated edge.
        id: EdgeId,
        /// Raw state payload.
        state: &'a str,
    },
}

impl GraphEventRef<'_> {
    /// The event kind.
    pub fn kind(&self) -> EventKind {
        match self {
            GraphEventRef::AddVertex { .. } => EventKind::AddVertex,
            GraphEventRef::RemoveVertex { .. } => EventKind::RemoveVertex,
            GraphEventRef::UpdateVertex { .. } => EventKind::UpdateVertex,
            GraphEventRef::AddEdge { .. } => EventKind::AddEdge,
            GraphEventRef::RemoveEdge { .. } => EventKind::RemoveEdge,
            GraphEventRef::UpdateEdge { .. } => EventKind::UpdateEdge,
        }
    }

    /// Converts into an owned [`GraphEvent`], allocating the state string.
    pub fn to_event(&self) -> GraphEvent {
        match *self {
            GraphEventRef::AddVertex { id, state } => GraphEvent::AddVertex {
                id,
                state: State::new(state),
            },
            GraphEventRef::RemoveVertex { id } => GraphEvent::RemoveVertex { id },
            GraphEventRef::UpdateVertex { id, state } => GraphEvent::UpdateVertex {
                id,
                state: State::new(state),
            },
            GraphEventRef::AddEdge { id, state } => GraphEvent::AddEdge {
                id,
                state: State::new(state),
            },
            GraphEventRef::RemoveEdge { id } => GraphEvent::RemoveEdge { id },
            GraphEventRef::UpdateEdge { id, state } => GraphEvent::UpdateEdge {
                id,
                state: State::new(state),
            },
        }
    }
}

/// A parsed stream entry that borrows its text payloads from the line.
///
/// This is the zero-allocation half of the parse path: [`parse_line_ref`]
/// produces it without touching the heap; owned conversion happens once,
/// at the channel boundary, via [`StreamEntryRef::to_entry`].
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEntryRef<'a> {
    /// A graph-changing event with borrowed payload.
    Graph(GraphEventRef<'a>),
    /// A marker; the name borrows from the line.
    Marker(&'a str),
    /// A replayer control event (fully parsed, nothing left to borrow).
    Control(ControlEvent),
}

impl StreamEntryRef<'_> {
    /// Converts into an owned [`StreamEntry`], allocating any payloads.
    pub fn to_entry(&self) -> StreamEntry {
        match self {
            StreamEntryRef::Graph(event) => StreamEntry::Graph(event.to_event()),
            StreamEntryRef::Marker(name) => StreamEntry::Marker((*name).to_owned()),
            StreamEntryRef::Control(control) => StreamEntry::Control(control.clone()),
        }
    }

    /// Whether this entry is a graph-changing event.
    pub fn is_graph(&self) -> bool {
        matches!(self, StreamEntryRef::Graph(_))
    }
}

/// Parses one line of the stream format without allocating: payloads and
/// marker names are borrowed slices of `line`.
///
/// Returns `Ok(None)` for blank lines and `#` comments.
pub fn parse_line_ref(line: &str) -> Result<Option<StreamEntryRef<'_>>, ParseError> {
    let trimmed = line.trim_start();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }

    let (command, rest) = trimmed
        .split_once(',')
        .ok_or_else(|| ParseError::missing_field("entity"))?;
    let command = command.trim();
    // The payload is the raw remainder after the second comma; it may itself
    // contain commas (e.g. stringified JSON).
    let (entity, payload) = match rest.split_once(',') {
        Some((e, p)) => (e.trim(), p),
        None => (rest.trim(), ""),
    };

    match command {
        MARKER_COMMAND => {
            if entity.is_empty() {
                return Err(ParseError::missing_field("marker name"));
            }
            Ok(Some(StreamEntryRef::Marker(entity)))
        }
        SPEED_COMMAND => {
            let factor: f64 = payload
                .trim()
                .parse()
                .map_err(|_| ParseError::invalid_payload(format!("speed factor `{payload}`")))?;
            if !factor.is_finite() || factor <= 0.0 {
                return Err(ParseError::invalid_payload(format!(
                    "speed factor must be positive and finite, got `{payload}`"
                )));
            }
            Ok(Some(StreamEntryRef::Control(ControlEvent::SetSpeed(
                factor,
            ))))
        }
        PAUSE_COMMAND => {
            let millis: u64 = payload
                .trim()
                .parse()
                .map_err(|_| ParseError::invalid_payload(format!("pause millis `{payload}`")))?;
            Ok(Some(StreamEntryRef::Control(ControlEvent::Pause(
                Duration::from_millis(millis),
            ))))
        }
        _ => parse_graph_command(command, entity, payload).map(Some),
    }
}

/// Parses one line of the stream format into an owned entry.
///
/// Thin wrapper over [`parse_line_ref`] that pays the payload allocations;
/// hot paths that can hold on to the line should prefer the borrowed form.
/// Returns `Ok(None)` for blank lines and `#` comments.
pub fn parse_line(line: &str) -> Result<Option<StreamEntry>, ParseError> {
    Ok(parse_line_ref(line)?.map(|entry| entry.to_entry()))
}

fn parse_graph_command<'a>(
    command: &str,
    entity: &str,
    payload: &'a str,
) -> Result<StreamEntryRef<'a>, ParseError> {
    let kind = EventKind::ALL
        .into_iter()
        .find(|k| k.command() == command)
        .ok_or_else(|| ParseError::unknown_command(command))?;
    if entity.is_empty() {
        return Err(ParseError::missing_field("entity"));
    }
    let event = match kind {
        EventKind::AddVertex => GraphEventRef::AddVertex {
            id: entity.parse()?,
            state: payload,
        },
        EventKind::RemoveVertex => GraphEventRef::RemoveVertex {
            id: entity.parse()?,
        },
        EventKind::UpdateVertex => GraphEventRef::UpdateVertex {
            id: entity.parse()?,
            state: payload,
        },
        EventKind::AddEdge => GraphEventRef::AddEdge {
            id: entity.parse()?,
            state: payload,
        },
        EventKind::RemoveEdge => GraphEventRef::RemoveEdge {
            id: entity.parse()?,
        },
        EventKind::UpdateEdge => GraphEventRef::UpdateEdge {
            id: entity.parse()?,
            state: payload,
        },
    };
    Ok(StreamEntryRef::Graph(event))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{EdgeId, VertexId};

    fn roundtrip(entry: StreamEntry) {
        let line = entry_to_line(&entry);
        let parsed = parse_line(&line).unwrap().unwrap();
        assert_eq!(parsed, entry, "line was `{line}`");
    }

    #[test]
    fn graph_event_roundtrips() {
        roundtrip(StreamEntry::graph(GraphEvent::AddVertex {
            id: VertexId(1),
            state: State::new("hello"),
        }));
        roundtrip(StreamEntry::graph(GraphEvent::RemoveVertex {
            id: VertexId(9),
        }));
        roundtrip(StreamEntry::graph(GraphEvent::UpdateVertex {
            id: VertexId(2),
            state: State::weight(3.5),
        }));
        roundtrip(StreamEntry::graph(GraphEvent::AddEdge {
            id: EdgeId::from((1, 2)),
            state: State::empty(),
        }));
        roundtrip(StreamEntry::graph(GraphEvent::RemoveEdge {
            id: EdgeId::from((4, 5)),
        }));
        roundtrip(StreamEntry::graph(GraphEvent::UpdateEdge {
            id: EdgeId::from((7, 8)),
            state: State::new("x=1;y=2"),
        }));
    }

    #[test]
    fn marker_and_control_roundtrips() {
        roundtrip(StreamEntry::marker("phase-2"));
        roundtrip(StreamEntry::speed(2.5));
        roundtrip(StreamEntry::pause(Duration::from_millis(20_000)));
    }

    #[test]
    fn payload_may_contain_commas() {
        let entry = StreamEntry::graph(GraphEvent::UpdateVertex {
            id: VertexId(3),
            state: State::new(r#"{"name":"ada","rank":0.3}"#),
        });
        roundtrip(entry);
    }

    #[test]
    fn exact_line_shapes() {
        assert_eq!(
            entry_to_line(&StreamEntry::graph(GraphEvent::AddEdge {
                id: EdgeId::from((1, 2)),
                state: State::new("w"),
            })),
            "ADD_EDGE,1-2,w"
        );
        assert_eq!(entry_to_line(&StreamEntry::marker("m1")), "MARKER,m1,");
        assert_eq!(entry_to_line(&StreamEntry::speed(1.0)), "SPEED,,1");
        assert_eq!(
            entry_to_line(&StreamEntry::pause(Duration::from_secs(20))),
            "PAUSE,,20000"
        );
    }

    #[test]
    fn blank_and_comment_lines_are_skipped() {
        assert_eq!(parse_line("").unwrap(), None);
        assert_eq!(parse_line("   ").unwrap(), None);
        assert_eq!(parse_line("# comment, with, commas").unwrap(), None);
    }

    #[test]
    fn whitespace_tolerant_parsing() {
        let e = parse_line("ADD_VERTEX , 5 ,hi").unwrap().unwrap();
        assert_eq!(
            e,
            StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(5),
                state: State::new("hi"),
            })
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_line("FROBNICATE,1,").is_err());
        assert!(parse_line("ADD_VERTEX").is_err());
        assert!(parse_line("ADD_VERTEX,,").is_err());
        assert!(parse_line("ADD_EDGE,1,").is_err());
        assert!(parse_line("SPEED,,fast").is_err());
        assert!(parse_line("SPEED,,0").is_err());
        assert!(parse_line("SPEED,,-1").is_err());
        assert!(parse_line("PAUSE,,1.5").is_err());
        assert!(parse_line("MARKER,,").is_err());
    }

    #[test]
    fn borrowed_parse_points_into_the_input_line() {
        let line = "UPDATE_VERTEX,1,  spaced, payload  ";
        let entry = parse_line_ref(line).unwrap().unwrap();
        let StreamEntryRef::Graph(GraphEventRef::UpdateVertex { id, state }) = entry else {
            panic!("unexpected {entry:?}");
        };
        assert_eq!(id, VertexId(1));
        assert_eq!(state, "  spaced, payload  ");
        // The payload is a slice of `line`, not a copy.
        let line_range = line.as_bytes().as_ptr_range();
        let state_range = state.as_bytes().as_ptr_range();
        assert!(line_range.start <= state_range.start && state_range.end <= line_range.end);

        let marker = parse_line_ref("MARKER, window-3 ,ignored")
            .unwrap()
            .unwrap();
        assert_eq!(marker, StreamEntryRef::Marker("window-3"));
    }

    #[test]
    fn borrowed_and_owned_parses_agree() {
        for line in [
            "ADD_VERTEX,5,hi",
            "REMOVE_VERTEX,5,",
            "ADD_EDGE,1-2,w=2.5",
            "REMOVE_EDGE,1-2,",
            "UPDATE_EDGE,1-2,w=3",
            "MARKER,m1,",
            "SPEED,,2",
            "PAUSE,,100",
            "# comment",
            "",
        ] {
            let owned = parse_line(line).unwrap();
            let via_ref = parse_line_ref(line).unwrap().map(|r| r.to_entry());
            assert_eq!(owned, via_ref, "line was `{line}`");
        }
    }

    #[test]
    fn state_preserves_leading_whitespace_after_payload_comma() {
        // Payload is raw: everything after the second comma, untrimmed.
        let e = parse_line("UPDATE_VERTEX,1,  spaced  ").unwrap().unwrap();
        match e {
            StreamEntry::Graph(GraphEvent::UpdateVertex { state, .. }) => {
                assert_eq!(state.as_str(), "  spaced  ");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

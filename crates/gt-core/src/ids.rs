//! Entity identifiers.
//!
//! Vertices are identified by a unique numeric ID. Edges are identified by
//! the concatenation of their source and destination vertex identifiers,
//! separated by a dash (`src-dst`), exactly as in the GraphTides stream
//! format. The graph model is directed, without self loops or parallel
//! edges.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::ParseError;

/// A unique vertex identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct VertexId(pub u64);

impl VertexId {
    /// Returns the raw numeric value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for VertexId {
    fn from(v: u64) -> Self {
        VertexId(v)
    }
}

impl FromStr for VertexId {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.trim()
            .parse::<u64>()
            .map(VertexId)
            .map_err(|_| ParseError::invalid_entity(s))
    }
}

/// A directed edge identifier: the pair of source and destination vertex.
///
/// Serialized as `src-dst` in the stream format.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct EdgeId {
    /// Source vertex of the directed edge.
    pub src: VertexId,
    /// Destination vertex of the directed edge.
    pub dst: VertexId,
}

impl EdgeId {
    /// Creates an edge identifier from source to destination.
    #[inline]
    pub const fn new(src: VertexId, dst: VertexId) -> Self {
        EdgeId { src, dst }
    }

    /// The edge with source and destination swapped.
    #[inline]
    pub const fn reversed(self) -> Self {
        EdgeId {
            src: self.dst,
            dst: self.src,
        }
    }

    /// Whether this edge would be a self loop (disallowed by the model,
    /// but representable so that validators can report it).
    #[inline]
    pub const fn is_self_loop(self) -> bool {
        self.src.0 == self.dst.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.src.0, self.dst.0)
    }
}

impl From<(u64, u64)> for EdgeId {
    fn from((s, d): (u64, u64)) -> Self {
        EdgeId::new(VertexId(s), VertexId(d))
    }
}

impl FromStr for EdgeId {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        let (src, dst) = trimmed
            .split_once('-')
            .ok_or_else(|| ParseError::invalid_entity(s))?;
        Ok(EdgeId::new(src.parse()?, dst.parse()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_display_roundtrip() {
        let v = VertexId(42);
        assert_eq!(v.to_string(), "42");
        assert_eq!("42".parse::<VertexId>().unwrap(), v);
        assert_eq!(" 7 ".parse::<VertexId>().unwrap(), VertexId(7));
    }

    #[test]
    fn vertex_id_parse_rejects_garbage() {
        assert!("".parse::<VertexId>().is_err());
        assert!("abc".parse::<VertexId>().is_err());
        assert!("-1".parse::<VertexId>().is_err());
        assert!("1.5".parse::<VertexId>().is_err());
    }

    #[test]
    fn edge_id_display_roundtrip() {
        let e = EdgeId::from((3, 9));
        assert_eq!(e.to_string(), "3-9");
        assert_eq!("3-9".parse::<EdgeId>().unwrap(), e);
    }

    #[test]
    fn edge_id_parse_rejects_malformed() {
        assert!("3".parse::<EdgeId>().is_err());
        assert!("3-".parse::<EdgeId>().is_err());
        assert!("-3".parse::<EdgeId>().is_err());
        assert!("a-b".parse::<EdgeId>().is_err());
    }

    #[test]
    fn edge_reversal_and_self_loop() {
        let e = EdgeId::from((1, 2));
        assert_eq!(e.reversed(), EdgeId::from((2, 1)));
        assert!(!e.is_self_loop());
        assert!(EdgeId::from((5, 5)).is_self_loop());
    }

    #[test]
    fn ordering_is_lexicographic_on_src_then_dst() {
        let a = EdgeId::from((1, 9));
        let b = EdgeId::from((2, 0));
        assert!(a < b);
        assert!(EdgeId::from((1, 1)) < EdgeId::from((1, 2)));
    }
}

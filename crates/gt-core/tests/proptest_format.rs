//! Property-based tests for the graph stream format: any entry the model can
//! express must survive a serialize → parse round-trip, and whole streams
//! must round-trip through CSV text.

use std::time::Duration;

use gt_core::prelude::*;
use proptest::prelude::*;

/// Payload strings: anything printable without newlines or CR (the format is
/// line-based; the payload is the raw remainder of the line, so commas are
/// allowed). Leading whitespace is preserved by the parser, so it is fair
/// game too.
fn payload_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{0,40}").expect("valid regex")
}

fn vertex_strategy() -> impl Strategy<Value = VertexId> {
    any::<u64>().prop_map(VertexId)
}

fn edge_strategy() -> impl Strategy<Value = EdgeId> {
    (any::<u64>(), any::<u64>()).prop_map(EdgeId::from)
}

fn graph_event_strategy() -> impl Strategy<Value = GraphEvent> {
    prop_oneof![
        (vertex_strategy(), payload_strategy()).prop_map(|(id, s)| GraphEvent::AddVertex {
            id,
            state: State::new(s)
        }),
        vertex_strategy().prop_map(|id| GraphEvent::RemoveVertex { id }),
        (vertex_strategy(), payload_strategy()).prop_map(|(id, s)| GraphEvent::UpdateVertex {
            id,
            state: State::new(s)
        }),
        (edge_strategy(), payload_strategy()).prop_map(|(id, s)| GraphEvent::AddEdge {
            id,
            state: State::new(s)
        }),
        edge_strategy().prop_map(|id| GraphEvent::RemoveEdge { id }),
        (edge_strategy(), payload_strategy()).prop_map(|(id, s)| GraphEvent::UpdateEdge {
            id,
            state: State::new(s)
        }),
    ]
}

/// Marker names must be non-empty and free of commas/newlines (they live in
/// the entity field).
fn marker_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9_.:-]{1,24}").expect("valid regex")
}

fn entry_strategy() -> impl Strategy<Value = StreamEntry> {
    prop_oneof![
        5 => graph_event_strategy().prop_map(StreamEntry::Graph),
        1 => marker_strategy().prop_map(StreamEntry::Marker),
        1 => (1u32..10_000).prop_map(|f| StreamEntry::speed(f64::from(f) / 100.0)),
        1 => (0u64..1_000_000).prop_map(|ms| StreamEntry::pause(Duration::from_millis(ms))),
    ]
}

proptest! {
    #[test]
    fn entry_roundtrips(entry in entry_strategy()) {
        let line = gt_core::format::entry_to_line(&entry);
        let parsed = gt_core::parse_line(&line).unwrap().unwrap();
        prop_assert_eq!(parsed, entry);
    }

    #[test]
    fn stream_roundtrips(entries in proptest::collection::vec(entry_strategy(), 0..50)) {
        let stream = GraphStream::from_entries(entries);
        let text = stream.to_csv_string();
        let parsed = GraphStream::parse_csv(&text).unwrap();
        prop_assert_eq!(parsed, stream);
    }

    #[test]
    fn stats_totals_match(entries in proptest::collection::vec(entry_strategy(), 0..80)) {
        let stream = GraphStream::from_entries(entries);
        let stats = stream.stats();
        prop_assert_eq!(
            stats.graph_events + stats.markers + stats.controls,
            stream.len()
        );
        let by_kind_total: usize = stats.by_kind.values().sum();
        prop_assert_eq!(by_kind_total, stats.graph_events);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(line in "[ -~]{0,80}") {
        // Any single printable line either parses or errors; it never panics.
        let _ = gt_core::parse_line(&line);
    }
}

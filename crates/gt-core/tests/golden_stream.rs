//! Golden-file round-trip for the §4.2 plain-text stream format.
//!
//! The checked-in fixture contains only canonical serializer output —
//! every line is exactly what [`entry_to_line`] produces — so parsing the
//! file and re-serializing every entry must reproduce it byte-for-byte.
//! It exercises all six graph operations, markers, both control events,
//! and the payload edge cases the remainder-is-raw rule exists for
//! (embedded commas, leading whitespace, a leading `#`, empty payloads).
//!
//! On mismatch the re-serialized bytes are written to
//! `target/tmp/golden-mismatch/` so CI can upload them as an artifact for
//! diffing against the fixture.

use gt_core::format::{entry_to_line, parse_line, parse_line_ref};
use gt_core::prelude::*;

const GOLDEN: &str = include_str!("fixtures/golden_stream.csv");

/// Writes `actual` next to the target dir for the CI artifact upload and
/// returns the path it wrote to.
fn dump_mismatch(name: &str, actual: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("golden-mismatch");
    std::fs::create_dir_all(&dir).expect("create mismatch dir");
    let path = dir.join(name);
    std::fs::write(&path, actual).expect("write mismatch dump");
    path
}

#[test]
fn fixture_reserializes_byte_for_byte() {
    let mut reserialized = String::with_capacity(GOLDEN.len());
    for line in GOLDEN.lines() {
        let entry = parse_line(line)
            .unwrap_or_else(|e| panic!("golden line `{line}` must parse: {e}"))
            .unwrap_or_else(|| panic!("golden fixture has no blank/comment lines, got `{line}`"));
        reserialized.push_str(&entry_to_line(&entry));
        reserialized.push('\n');
    }
    if reserialized != GOLDEN {
        let path = dump_mismatch("golden_stream.actual.csv", &reserialized);
        panic!(
            "re-serialized stream differs from fixture; actual written to {}",
            path.display()
        );
    }
}

#[test]
fn each_line_roundtrips_individually() {
    // Line-level variant of the byte-for-byte check: a failure names the
    // offending line instead of the whole file.
    for line in GOLDEN.lines() {
        let entry = parse_line(line).unwrap().unwrap();
        assert_eq!(
            entry_to_line(&entry),
            line,
            "line `{line}` is not canonical serializer output"
        );
    }
}

#[test]
fn fixture_covers_every_command() {
    let commands: Vec<&str> = GOLDEN
        .lines()
        .map(|l| l.split(',').next().unwrap())
        .collect();
    for required in [
        "ADD_VERTEX",
        "REMOVE_VERTEX",
        "UPDATE_VERTEX",
        "ADD_EDGE",
        "REMOVE_EDGE",
        "UPDATE_EDGE",
        "MARKER",
        "SPEED",
        "PAUSE",
    ] {
        assert!(
            commands.contains(&required),
            "fixture must exercise {required}"
        );
    }
}

#[test]
fn payload_edge_cases_survive_the_roundtrip() {
    let entries: Vec<StreamEntry> = GOLDEN
        .lines()
        .map(|l| parse_line(l).unwrap().unwrap())
        .collect();
    // Embedded commas: the JSON payload and the `,,,` payload are raw
    // remainders, not further fields.
    let payload_of = |idx: usize| match &entries[idx] {
        StreamEntry::Graph(
            GraphEvent::AddVertex { state, .. } | GraphEvent::UpdateVertex { state, .. },
        ) => state.as_str(),
        other => panic!("expected a vertex event at line {}, got {other:?}", idx + 1),
    };
    assert_eq!(payload_of(1), r#"{"name":"ada","rank":0.3}"#);
    assert_eq!(payload_of(3), "  spaced payload", "leading spaces are raw");
    assert_eq!(payload_of(8), ",,,", "commas-only payload is raw");
    assert_eq!(
        payload_of(12),
        "#not-a-comment",
        "# only comments at line start"
    );
    // Control payloads parse to their typed values.
    assert!(entries.iter().any(|e| *e == StreamEntry::speed(2.5)));
    assert!(entries
        .iter()
        .any(|e| *e == StreamEntry::pause(std::time::Duration::from_millis(20_000))));
}

#[test]
fn borrowed_parse_reserializes_byte_for_byte() {
    // The zero-allocation path must be byte-for-byte equivalent to the
    // owned one: parse each golden line borrowed, convert at the channel
    // boundary, re-serialize, compare against the fixture.
    let mut reserialized = String::with_capacity(GOLDEN.len());
    for line in GOLDEN.lines() {
        let entry = parse_line_ref(line)
            .unwrap_or_else(|e| panic!("golden line `{line}` must parse borrowed: {e}"))
            .unwrap_or_else(|| panic!("golden fixture has no blank/comment lines, got `{line}`"))
            .to_entry();
        assert_eq!(
            Some(&entry),
            parse_line(line).unwrap().as_ref(),
            "borrowed and owned parses disagree on `{line}`"
        );
        reserialized.push_str(&entry_to_line(&entry));
        reserialized.push('\n');
    }
    if reserialized != GOLDEN {
        let path = dump_mismatch("golden_stream.borrowed.actual.csv", &reserialized);
        panic!(
            "borrowed-parse re-serialization differs from fixture; actual written to {}",
            path.display()
        );
    }
}

#[test]
fn comments_and_blanks_do_not_change_the_entry_sequence() {
    // Interleave annotations through the golden stream: the parsed entry
    // sequence must be identical to the clean fixture's.
    let mut annotated = String::from("# golden stream, annotated\n\n");
    for line in GOLDEN.lines() {
        annotated.push_str(line);
        annotated.push_str("\n# trailing note, with, commas\n\n");
    }
    let parse_all = |text: &str| -> Vec<StreamEntry> {
        text.lines()
            .filter_map(|l| parse_line(l).unwrap())
            .collect()
    };
    assert_eq!(parse_all(&annotated), parse_all(GOLDEN));
}

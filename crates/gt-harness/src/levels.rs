//! Evaluation levels (paper §4).
//!
//! The enum itself now lives in [`gt_sut`] next to the
//! [`gt_sut::SystemUnderTest`] trait (a platform *declares* its level);
//! this module re-exports it so existing harness imports keep working.

pub use gt_sut::EvaluationLevel;

#![warn(missing_docs)]

//! # gt-harness
//!
//! The GraphTides test harness (paper §4, Figure 2): it wires a graph
//! stream, the replayer, a system under test, and a set of runtime metric
//! loggers into one experiment run, and collects everything into a single
//! chronologically sorted result log.
//!
//! ```text
//! graph stream file ──► Graph Stream Replayer ──► System under Test
//!                            │  markers               │ hub metrics
//!                            ▼                        ▼
//!                      runtime metrics loggers (sampling thread)
//!                            │
//!                            ▼
//!                       Log Collector ──► result log
//! ```
//!
//! * [`spec`] — declarative experiment descriptions (goals, factors,
//!   levels — Jain's methodology, §4.5) with deterministic seeds for
//!   Popper-style re-execution.
//! * [`levels`] — the three evaluation levels (L0 black box, L1 native
//!   metrics, L2 in-source instrumentation).
//! * [`run`] — the run loop: replay on the driver thread, sample loggers
//!   on a background thread, merge logs.
//! * [`repeat`] — n ≥ 30 repetition helper and CI95 system comparison.

pub mod levels;
pub mod repeat;
pub mod run;
pub mod spec;
pub mod sut;
pub mod sweep;

pub use levels::EvaluationLevel;
pub use repeat::{compare_metric, repeat_runs, RepeatOutcome};
pub use run::{
    run_experiment, run_experiment_with_clock, run_file_experiment, run_file_experiment_with_clock,
    FileRunOutcome, FileRunPlan, RunOutcome, RunPlan,
};
pub use spec::ExperimentSpec;
pub use sut::{run_file_sut_experiment, run_sut_experiment, SutRunError, SutRunOutcome};
pub use sweep::{Assignment, Factor, FactorSpace};

pub use gt_sut::{SutOptions, SutRegistry, SutReport, SystemUnderTest};
pub use gt_sysmon::SamplerConfig;
pub use gt_trace::{TraceConfig, Tracer, TRACE_SOURCE};

#![warn(missing_docs)]

//! # gt-harness
//!
//! The GraphTides test harness (paper §4, Figure 2): it wires a graph
//! stream, the replayer, a system under test, and a set of runtime metric
//! loggers into one experiment run, and collects everything into a single
//! chronologically sorted result log.
//!
//! ```text
//! graph stream file ──► Graph Stream Replayer ──► System under Test
//!                            │  markers               │ hub metrics
//!                            ▼                        ▼
//!                      runtime metrics loggers (sampling thread)
//!                            │
//!                            ▼
//!                       Log Collector ──► result log
//! ```
//!
//! * [`spec`] — declarative experiment descriptions (goals, factors,
//!   levels — Jain's methodology, §4.5) with deterministic seeds for
//!   Popper-style re-execution.
//! * [`levels`] — the three evaluation levels (L0 black box, L1 native
//!   metrics, L2 in-source instrumentation).
//! * [`run`] — the run loop: replay on the driver thread, sample loggers
//!   on a background thread, merge logs.
//! * [`load`] — the multi-client load mode: fan the stream across N
//!   concurrent TCP clients (open/closed/partial-open loop per class)
//!   into one platform connector per connection.
//! * [`differential`] — the serial-vs-sharded differential harness:
//!   replay the same seeded stream through a `shards=1` baseline and a
//!   `shards=N` candidate and assert bit-identical digests and
//!   per-marker-window computation results.
//! * [`repeat`] — n ≥ 30 repetition helper and CI95 system comparison.
//! * [`orchestrator`] — the scenario-matrix orchestrator: declarative
//!   factor cross-products executed with per-cell repetition, journaled
//!   to disk (one JSON line per finished cell-repetition), and resumable
//!   after a kill without re-running completed cells.
//! * [`watchdog`] — progress-stall and deadline detection: a broken
//!   system under test aborts the run with a typed status instead of
//!   hanging the harness.

pub mod differential;
pub mod levels;
pub mod load;
pub mod netem;
pub mod orchestrator;
pub mod repeat;
pub mod run;
pub mod spec;
pub mod sut;
pub mod sweep;
pub mod watchdog;

pub use differential::{
    graph_from_adjacency, run_differential, window_computations, DifferentialOutcome,
    WindowComputation,
};
pub use levels::EvaluationLevel;
pub use load::{
    load_records, run_load_file_sut_experiment, run_load_sut_experiment,
    run_load_sut_experiment_with_timeout, LoadSutRunOutcome, LOAD_SOURCE,
};
pub use netem::{sink_records, start_netem_front, NetemFront, NetemFrontReport};
pub use orchestrator::{
    aggregate_records, cell_id, render_matrix_table, run_matrix, run_matrix_with_progress,
    CellAggregate, CellRunResult, CellRunner, Design, JournalRecord, MatrixJournal, MatrixOutcome,
    MatrixProgress, MetricAggregate, ScenarioMatrix,
};
pub use repeat::{compare_metric, repeat_runs, repeat_status_runs, RepeatOutcome};
pub use run::{
    run_experiment, run_experiment_with_clock, run_file_experiment, run_file_experiment_with_clock,
    ChaosPlan, FileRunOutcome, FileRunPlan, RunOutcome, RunPlan,
};
pub use spec::ExperimentSpec;
pub use sut::{
    run_file_sut_experiment, run_file_sut_experiment_with_timeout, run_sut_experiment,
    run_sut_experiment_with_timeout, SutRunError, SutRunOutcome, DEFAULT_QUIESCE_TIMEOUT,
};
pub use sweep::{Assignment, Factor, FactorSpace};
pub use watchdog::{AbortReason, RunStatus, WatchdogConfig};

pub use gt_chaos::{ChaosJournal, FaultKind, FaultSchedule, FaultTrigger, CHAOS_SOURCE};
pub use gt_load::{ClientClass, CompiledPattern, LoadPlan, LoopModel, RatePattern};
pub use gt_netem::{
    ConnRange, KillMode, NetemFault, NetemFaultKind, NetemPlan, NetemReport, NetemSchedule,
    NETEM_SOURCE,
};
pub use gt_sut::{
    Adjacency, StateDigest, SutOptions, SutRegistry, SutReport, SystemUnderTest, WindowDigest,
    WorkerSupervisor,
};
pub use gt_sysmon::SamplerConfig;
pub use gt_trace::{TraceConfig, Tracer, TRACE_SOURCE};

//! Experimental-design enumeration (§2.3): "the analyst chooses a number
//! of setups. This can range from variations of a single parameter, to
//! full factorial designs where all levels of all factors are
//! considered."
//!
//! [`FactorSpace`] enumerates configurations; each configuration is a set
//! of `(factor, level)` assignments that can be stamped onto an
//! [`crate::ExperimentSpec`].

use std::fmt;

/// A named factor with its levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Factor {
    /// Factor name (e.g. `target_rate`).
    pub name: String,
    /// The levels to evaluate, as display strings.
    pub levels: Vec<String>,
}

impl Factor {
    /// Builds a factor from displayable levels.
    pub fn new<T: fmt::Display>(name: &str, levels: impl IntoIterator<Item = T>) -> Self {
        Factor {
            name: name.to_owned(),
            levels: levels.into_iter().map(|l| l.to_string()).collect(),
        }
    }
}

/// One concrete configuration: an assignment of a level to every factor.
pub type Assignment = Vec<(String, String)>;

/// A factor space supporting the two designs the paper names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FactorSpace {
    factors: Vec<Factor>,
}

impl FactorSpace {
    /// An empty space (a single, empty configuration).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a factor (builder style).
    #[must_use]
    pub fn factor<T: fmt::Display>(
        mut self,
        name: &str,
        levels: impl IntoIterator<Item = T>,
    ) -> Self {
        self.factors.push(Factor::new(name, levels));
        self
    }

    /// The factors.
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// Full factorial design: the cartesian product of all levels.
    pub fn full_factorial(&self) -> Vec<Assignment> {
        let mut out: Vec<Assignment> = vec![Vec::new()];
        for factor in &self.factors {
            assert!(
                !factor.levels.is_empty(),
                "factor `{}` has no levels",
                factor.name
            );
            let mut next = Vec::with_capacity(out.len() * factor.levels.len());
            for assignment in &out {
                for level in &factor.levels {
                    let mut extended = assignment.clone();
                    extended.push((factor.name.clone(), level.clone()));
                    next.push(extended);
                }
            }
            out = next;
        }
        out
    }

    /// One-factor-at-a-time design: every factor varied over its levels
    /// while all others stay at their first (baseline) level. The
    /// baseline configuration appears exactly once, first.
    pub fn one_factor_at_a_time(&self) -> Vec<Assignment> {
        let baseline: Assignment = self
            .factors
            .iter()
            .map(|f| {
                assert!(!f.levels.is_empty(), "factor `{}` has no levels", f.name);
                (f.name.clone(), f.levels[0].clone())
            })
            .collect();
        let mut out = vec![baseline.clone()];
        for (i, factor) in self.factors.iter().enumerate() {
            for level in factor.levels.iter().skip(1) {
                let mut assignment = baseline.clone();
                assignment[i].1 = level.clone();
                out.push(assignment);
            }
        }
        out
    }

    /// Number of configurations in the full factorial design.
    pub fn full_factorial_size(&self) -> usize {
        self.factors.iter().map(|f| f.levels.len()).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> FactorSpace {
        FactorSpace::new()
            .factor("rate", [100, 1_000, 10_000])
            .factor("batch", [1, 10])
    }

    #[test]
    fn full_factorial_enumerates_product() {
        let configs = space().full_factorial();
        assert_eq!(configs.len(), 6);
        assert_eq!(space().full_factorial_size(), 6);
        // First config pairs the first levels.
        assert_eq!(
            configs[0],
            vec![
                ("rate".to_owned(), "100".to_owned()),
                ("batch".to_owned(), "1".to_owned()),
            ]
        );
        // All configurations are distinct.
        let mut sorted = configs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn ofat_varies_one_factor_per_config() {
        let configs = space().one_factor_at_a_time();
        // Baseline + 2 extra rates + 1 extra batch.
        assert_eq!(configs.len(), 4);
        let baseline = &configs[0];
        for config in &configs[1..] {
            let differing = config
                .iter()
                .zip(baseline)
                .filter(|(a, b)| a.1 != b.1)
                .count();
            assert_eq!(differing, 1, "{config:?}");
        }
    }

    #[test]
    fn empty_space_is_a_single_empty_config() {
        let space = FactorSpace::new();
        assert_eq!(space.full_factorial(), vec![Vec::new()]);
        assert_eq!(space.one_factor_at_a_time(), vec![Vec::new()]);
        assert_eq!(space.full_factorial_size(), 1);
    }

    #[test]
    fn assignments_stamp_onto_specs() {
        use crate::ExperimentSpec;
        let configs = space().full_factorial();
        let specs: Vec<ExperimentSpec> = configs
            .into_iter()
            .map(|assignment| {
                let mut spec = ExperimentSpec::new("sweep", "goal", "workload");
                spec.factors = assignment;
                spec
            })
            .collect();
        assert_eq!(specs.len(), 6);
        assert!(specs[5].to_string().contains("batch = 10"));
    }

    #[test]
    #[should_panic(expected = "has no levels")]
    fn empty_levels_rejected() {
        FactorSpace::new().factor::<u32>("x", []).full_factorial();
    }
}

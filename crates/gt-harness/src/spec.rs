//! Declarative experiment specifications.
//!
//! Jain's methodology (§2.3, §4.5) asks the analyst to state the goal,
//! fix the metrics, and enumerate the varied factors before measuring.
//! [`ExperimentSpec`] captures exactly that, with a deterministic seed so
//! any run can be re-executed bit-identically (the Popper re-execution
//! goal without the container machinery).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::levels::EvaluationLevel;

/// A declarative description of one experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Short machine-readable name (e.g. `fig3b-store-throughput`).
    pub name: String,
    /// The evaluation goal, in the analyst's words.
    pub goal: String,
    /// The workload description (generator + parameters).
    pub workload: String,
    /// Target stream rate in events/s.
    pub target_rate: f64,
    /// Factors varied in this configuration, as `(factor, level)` pairs.
    pub factors: Vec<(String, String)>,
    /// The evaluation level the system under test supports.
    pub level: EvaluationLevel,
    /// Independent repetitions (the paper recommends n ≥ 30 for CI95
    /// comparisons).
    pub repetitions: u32,
    /// Master seed; repetition `i` derives seed `seed + i`.
    pub seed: u64,
}

impl ExperimentSpec {
    /// A minimal spec with defaults for the optional fields.
    pub fn new(name: &str, goal: &str, workload: &str) -> Self {
        ExperimentSpec {
            name: name.to_owned(),
            goal: goal.to_owned(),
            workload: workload.to_owned(),
            target_rate: 1_000.0,
            factors: Vec::new(),
            level: EvaluationLevel::Level0,
            repetitions: 1,
            seed: 42,
        }
    }

    /// Adds a factor/level pair (builder style).
    #[must_use]
    pub fn with_factor(mut self, factor: &str, level: impl fmt::Display) -> Self {
        self.factors.push((factor.to_owned(), level.to_string()));
        self
    }

    /// Sets the target rate (builder style).
    #[must_use]
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.target_rate = rate;
        self
    }

    /// Sets repetitions (builder style).
    #[must_use]
    pub fn with_repetitions(mut self, n: u32) -> Self {
        self.repetitions = n;
        self
    }

    /// The derived seed for repetition `i`.
    pub fn seed_for(&self, repetition: u32) -> u64 {
        self.seed.wrapping_add(u64::from(repetition))
    }

    /// Whether the repetition count meets the paper's n ≥ 30 guidance for
    /// statistically rigorous comparisons.
    pub fn meets_n30(&self) -> bool {
        self.repetitions >= 30
    }
}

impl fmt::Display for ExperimentSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "experiment: {}", self.name)?;
        writeln!(f, "  goal:      {}", self.goal)?;
        writeln!(f, "  workload:  {}", self.workload)?;
        writeln!(f, "  rate:      {} events/s", self.target_rate)?;
        writeln!(f, "  level:     {}", self.level.label())?;
        writeln!(f, "  reps:      {} (seed {})", self.repetitions, self.seed)?;
        for (factor, level) in &self.factors {
            writeln!(f, "  factor:    {factor} = {level}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_display() {
        let spec = ExperimentSpec::new("fig3b", "ingress scalability", "table3 workload")
            .with_rate(10_000.0)
            .with_factor("events per tx", 10)
            .with_repetitions(30);
        assert!(spec.meets_n30());
        let text = spec.to_string();
        assert!(text.contains("fig3b"));
        assert!(text.contains("events per tx = 10"));
        assert!(text.contains("10000 events/s"));
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let spec = ExperimentSpec::new("x", "g", "w");
        assert_eq!(spec.seed_for(0), 42);
        assert_eq!(spec.seed_for(5), 47);
        assert_ne!(spec.seed_for(1), spec.seed_for(2));
    }

    #[test]
    fn n30_guidance() {
        assert!(!ExperimentSpec::new("x", "g", "w").meets_n30());
        assert!(ExperimentSpec::new("x", "g", "w")
            .with_repetitions(31)
            .meets_n30());
    }
}

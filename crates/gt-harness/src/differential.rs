//! The serial-vs-sharded differential harness: replay the **same** seeded
//! stream through a serial baseline and a sharded candidate, and assert
//! that their final graph state and per-marker-window computation results
//! are bit-identical.
//!
//! Sharding must be a pure performance transform: hash-partitioned
//! workers with per-partition ordering and marker barriers may reorder
//! *independent* events across shards, but every observable the paper's
//! methodology compares — topology at each marker cut, topology at the
//! end of the stream, and the graph computations derived from them — must
//! not change. This module mechanizes that claim:
//!
//! 1. both platforms are started with their `digest=1` option, so their
//!    [`SystemUnderTest::shutdown_digest`] returns a [`StateDigest`]:
//!    canonicalized adjacency at every marker cut plus the final state;
//! 2. the adjacencies are compared byte-for-byte
//!    ([`StateDigest::diff`] — degradation counters are deliberately
//!    excluded, a chaos run *should* differ there);
//! 3. each window's adjacency is lifted into an offline
//!    [`gt_graph::EvolvingGraph`] and the reference computations run on
//!    the canonical CSR snapshot — weakly connected components,
//!    single-source shortest distances (Bellman–Ford from the smallest
//!    vertex id), and PageRank — and those results are compared with
//!    exact `f64::to_bits` equality.
//!
//! Step 3 matters because two adjacencies can only differ when step 2
//! already fails — but computations computed *online* by a platform
//! (e.g. the engine's residual forward-push) are order-sensitive, so the
//! differential contract is stated over offline computations on the
//! digested topology, which depend on nothing but the adjacency bytes.
//!
//! [`SystemUnderTest::shutdown_digest`]: gt_sut::SystemUnderTest::shutdown_digest

use gt_algorithms::components::weakly_connected_components;
use gt_algorithms::pagerank::{pagerank, PageRankConfig};
use gt_algorithms::shortest::bellman_ford;
use gt_core::prelude::*;
use gt_graph::{ApplyPolicy, CsrSnapshot, EvolvingGraph};
use gt_sut::{Adjacency, StateDigest, SutOptions, SutRegistry, SutReport};

use crate::levels::EvaluationLevel;
use crate::run::RunPlan;
use crate::sut::{run_sut_experiment_with_timeout, SutRunError, DEFAULT_QUIESCE_TIMEOUT};

/// The reference computations over one digested window (or the final
/// state), with float results serialized to bits for exact comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowComputation {
    /// The marker that cut this window; `None` for the final state.
    pub marker: Option<String>,
    /// Vertices in the digested adjacency.
    pub vertices: usize,
    /// Edges in the digested adjacency.
    pub edges: usize,
    /// Weakly-connected-component label per vertex: `(vertex id,
    /// smallest vertex id of its component)`, sorted by vertex id.
    pub wcc: Vec<(u64, u64)>,
    /// Shortest distance from the smallest vertex id: `(vertex id,
    /// f64::to_bits(distance))`, sorted by vertex id.
    pub sssp: Vec<(u64, u64)>,
    /// PageRank (damping 0.85): `(vertex id, f64::to_bits(rank))`,
    /// sorted by vertex id.
    pub rank: Vec<(u64, u64)>,
}

/// Lifts a digested adjacency back into an [`EvolvingGraph`]: a vertex for
/// every id that appears on either side of an edge, then the edges with
/// their digested weights, leniently (the adjacency is already a
/// consistent snapshot, so nothing should be rejected).
pub fn graph_from_adjacency(adjacency: &Adjacency) -> EvolvingGraph {
    let mut graph = EvolvingGraph::new();
    for (src, out) in adjacency {
        let _ = graph.apply_with(
            &GraphEvent::AddVertex {
                id: VertexId(*src),
                state: State::empty(),
            },
            ApplyPolicy::Lenient,
        );
        for (dst, _) in out {
            let _ = graph.apply_with(
                &GraphEvent::AddVertex {
                    id: VertexId(*dst),
                    state: State::empty(),
                },
                ApplyPolicy::Lenient,
            );
        }
    }
    for (src, out) in adjacency {
        for (dst, weight_bits) in out {
            let _ = graph.apply_with(
                &GraphEvent::AddEdge {
                    id: EdgeId::from((*src, *dst)),
                    state: State::weight(f64::from_bits(*weight_bits)),
                },
                ApplyPolicy::Lenient,
            );
        }
    }
    graph
}

fn compute_window(marker: Option<String>, adjacency: &Adjacency) -> WindowComputation {
    let graph = graph_from_adjacency(adjacency);
    let csr = CsrSnapshot::from_graph(&graph);
    let n = csr.vertex_count();
    let wcc_result = weakly_connected_components(&csr);
    let wcc = csr
        .indices()
        .map(|i| (csr.id_of(i).0, csr.id_of(wcc_result.labels[i as usize]).0))
        .collect();
    // The CSR orders vertices by id, so dense index 0 is the smallest id:
    // a deterministic source both sides agree on without coordination.
    let sssp = if n == 0 {
        Vec::new()
    } else {
        let paths = bellman_ford(&csr, 0).expect("digested weights are non-negative");
        csr.indices()
            .map(|i| (csr.id_of(i).0, paths.dist[i as usize].to_bits()))
            .collect()
    };
    let ranks = pagerank(&csr, &PageRankConfig::default()).ranks;
    let rank = csr
        .indices()
        .map(|i| (csr.id_of(i).0, ranks[i as usize].to_bits()))
        .collect();
    WindowComputation {
        marker,
        vertices: n,
        edges: graph.edge_count(),
        wcc,
        sssp,
        rank,
    }
}

/// Runs the reference computations over every digested marker window and
/// the final state (last element, `marker == None`).
pub fn window_computations(digest: &StateDigest) -> Vec<WindowComputation> {
    let mut out: Vec<WindowComputation> = digest
        .windows
        .iter()
        .map(|w| compute_window(Some(w.marker.clone()), &w.adjacency))
        .collect();
    out.push(compute_window(None, &digest.final_adjacency));
    out
}

/// The outputs of one differential run.
#[derive(Debug)]
pub struct DifferentialOutcome {
    /// The baseline platform's final report.
    pub baseline_report: SutReport,
    /// The candidate platform's final report.
    pub candidate_report: SutReport,
    /// The baseline's digest.
    pub baseline_digest: StateDigest,
    /// The candidate's digest.
    pub candidate_digest: StateDigest,
    /// The baseline's per-window reference computations.
    pub baseline_computations: Vec<WindowComputation>,
    /// The candidate's per-window reference computations.
    pub candidate_computations: Vec<WindowComputation>,
    /// The first divergence found, human-readable; `None` means the
    /// candidate is observably equivalent to the baseline.
    pub mismatch: Option<String>,
}

impl DifferentialOutcome {
    /// Whether the candidate matched the baseline bit-for-bit.
    pub fn matches(&self) -> bool {
        self.mismatch.is_none()
    }
}

fn diff_computations(
    baseline: &[WindowComputation],
    candidate: &[WindowComputation],
) -> Option<String> {
    if baseline.len() != candidate.len() {
        return Some(format!(
            "window count: baseline {} vs candidate {}",
            baseline.len(),
            candidate.len()
        ));
    }
    for (b, c) in baseline.iter().zip(candidate) {
        let window = b.marker.clone().unwrap_or_else(|| "<final>".to_owned());
        if b.marker != c.marker {
            return Some(format!(
                "window order: baseline {window:?} vs candidate {:?}",
                c.marker
            ));
        }
        for (name, bv, cv) in [
            ("wcc", &b.wcc, &c.wcc),
            ("sssp", &b.sssp, &c.sssp),
            ("rank", &b.rank, &c.rank),
        ] {
            if bv != cv {
                return Some(format!("window {window:?}: {name} results differ"));
            }
        }
    }
    None
}

/// Replays `stream` at `target_rate` through the `baseline` platform and
/// again through the `candidate` platform (both forced to `digest=1`),
/// then compares digests and per-window reference computations.
///
/// The stream is fed through a **single** connector on each side, so the
/// submission order the digests are defined over is identical. Chaos,
/// faults, and custom loggers can ride along via `configure`-style edits
/// on the returned plans of the lower-level runners; this entry point is
/// the clean A/B.
pub fn run_differential(
    stream: &GraphStream,
    target_rate: f64,
    registry: &SutRegistry,
    baseline: (&str, &SutOptions),
    candidate: (&str, &SutOptions),
) -> Result<DifferentialOutcome, SutRunError> {
    let run = |name: &str, options: &SutOptions| -> Result<(SutReport, StateDigest), SutRunError> {
        let options = options.clone().set("digest", 1);
        let mut plan = RunPlan::new(stream.clone(), target_rate).at_level(EvaluationLevel::Level0);
        plan.sysmon = None; // black-box resource samples are noise here
        let outcome = run_sut_experiment_with_timeout(
            plan,
            registry,
            name,
            &options,
            DEFAULT_QUIESCE_TIMEOUT,
        )?;
        let digest = outcome.digest.ok_or_else(|| {
            SutRunError::from(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("platform {name:?} returned no digest despite digest=1"),
            ))
        })?;
        Ok((outcome.report, digest))
    };
    let (baseline_report, baseline_digest) = run(baseline.0, baseline.1)?;
    let (candidate_report, candidate_digest) = run(candidate.0, candidate.1)?;

    let baseline_computations = window_computations(&baseline_digest);
    let candidate_computations = window_computations(&candidate_digest);
    let mismatch = baseline_digest
        .diff(&candidate_digest)
        .or_else(|| diff_computations(&baseline_computations, &candidate_computations));
    Ok(DifferentialOutcome {
        baseline_report,
        candidate_report,
        baseline_digest,
        candidate_digest,
        baseline_computations,
        candidate_computations,
        mismatch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adjacency(edges: &[(u64, &[(u64, f64)])]) -> Adjacency {
        edges
            .iter()
            .map(|(src, out)| (*src, out.iter().map(|(d, w)| (*d, w.to_bits())).collect()))
            .collect()
    }

    #[test]
    fn computations_are_deterministic_per_adjacency() {
        let adj = adjacency(&[
            (0, &[(1, 1.0), (2, 4.0)]),
            (1, &[(2, 1.0)]),
            (2, &[]),
            (7, &[(8, 2.0)]),
            (8, &[]),
        ]);
        let a = compute_window(None, &adj);
        let b = compute_window(None, &adj);
        assert_eq!(a, b);
        assert_eq!(a.vertices, 5);
        assert_eq!(a.edges, 4);
        // Two weak components, labeled by their smallest vertex id.
        assert_eq!(a.wcc, vec![(0, 0), (1, 0), (2, 0), (7, 7), (8, 7)]);
        // Distances from vertex 0: the 7-component is unreachable.
        let dist: Vec<(u64, f64)> = a
            .sssp
            .iter()
            .map(|&(id, bits)| (id, f64::from_bits(bits)))
            .collect();
        assert_eq!(dist[0], (0, 0.0));
        assert_eq!(dist[1], (1, 1.0));
        assert_eq!(dist[2], (2, 2.0)); // via vertex 1, not the 4.0 edge
        assert!(dist[3].1.is_infinite() && dist[4].1.is_infinite());
    }

    #[test]
    fn adjacency_round_trips_through_the_graph() {
        let adj = adjacency(&[(3, &[(1, 2.5)]), (1, &[])]);
        let graph = graph_from_adjacency(&adj);
        assert_eq!(graph.vertex_count(), 2);
        assert_eq!(graph.edge_count(), 1);
        let out: Vec<(u64, f64)> = graph
            .out_edges(VertexId(3))
            .map(|(dst, state)| (dst.0, state.as_weight().unwrap()))
            .collect();
        assert_eq!(out, vec![(1, 2.5)]);
    }

    #[test]
    fn dst_only_vertices_are_materialized() {
        // Vertex 9 never appears as a source row; it must still exist.
        let adj = adjacency(&[(0, &[(9, 1.0)])]);
        let graph = graph_from_adjacency(&adj);
        assert_eq!(graph.vertex_count(), 2);
        let w = compute_window(None, &adj);
        assert_eq!(w.wcc, vec![(0, 0), (9, 0)]);
    }

    #[test]
    fn computation_diff_pinpoints_the_window() {
        let a = window_computations(&StateDigest {
            final_adjacency: adjacency(&[(0, &[(1, 1.0)]), (1, &[])]),
            windows: Vec::new(),
            degradation: Vec::new(),
        });
        let b = window_computations(&StateDigest {
            final_adjacency: adjacency(&[(0, &[(1, 2.0)]), (1, &[])]),
            windows: Vec::new(),
            degradation: Vec::new(),
        });
        let msg = diff_computations(&a, &b).unwrap();
        assert!(msg.contains("<final>"), "{msg}");
        assert!(diff_computations(&a, &a).is_none());
    }
}

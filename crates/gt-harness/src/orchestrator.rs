//! The scenario-matrix orchestrator: declarative cross-product campaigns
//! with journaled, resumable n ≥ 30 execution.
//!
//! The paper's methodology (§2.3, §4.5) wants *campaigns*, not single
//! runs: a factorial design over workload mix × rate pattern × target
//! rate × SUT × shard count, each cell repeated n ≥ 30 times and
//! aggregated into CI95 summaries that can be compared across cells. A
//! 2 SUT × 3 pattern × n = 30 matrix is 180 runs — hours of wall time —
//! so the orchestrator journals every completed cell-repetition to disk
//! (one JSON line with its [`RunStatus`] and headline metrics) and a
//! killed or aborted matrix picks up exactly where it stopped:
//!
//! * completed cell-repetitions are **never re-run** — their journaled
//!   metrics are reused verbatim, so per-cell aggregates are
//!   bit-identical across the interruption;
//! * the journal's header line fingerprints the matrix spec, so a
//!   journal can never silently resume a *different* matrix;
//! * a partial trailing line (the process died mid-write) is truncated
//!   away on open, and the repetition it belonged to re-runs.
//!
//! Aggregation is always computed from journal records — not from
//! transient in-memory state — which is what makes "resume" and "ran in
//! one piece" indistinguishable in the output. Floats are written in
//! Rust's shortest round-trip decimal form, so parse(write(x)) == x
//! bit-for-bit.

use std::collections::HashSet;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek as _, Write as _};
use std::path::Path;
use std::time::Duration;

use gt_analysis::{ConfidenceInterval, Summary};

use crate::spec::ExperimentSpec;
use crate::sweep::{Assignment, FactorSpace};
use crate::watchdog::{AbortReason, RunStatus};

/// Characters that cannot appear in factor levels: they would break the
/// cell-id encoding (`;`, `|`) or the hand-rolled JSON journal lines
/// (`"`, `\`). Factor names additionally reject `=` (the cell-id
/// key/value separator); levels may contain it (chaos schedules do).
const RESERVED_CHARS: [char; 4] = [';', '|', '"', '\\'];

/// Which §2.3 experimental design enumerates the matrix cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Design {
    /// Cartesian product of all factor levels.
    FullFactorial,
    /// Baseline plus one-factor-at-a-time variations.
    OneFactorAtATime,
}

impl Design {
    fn label(self) -> &'static str {
        match self {
            Design::FullFactorial => "full",
            Design::OneFactorAtATime => "ofat",
        }
    }
}

/// A declarative scenario matrix: the factor space, the design that
/// enumerates it, and the repetition/seeding policy shared by every cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMatrix {
    /// Campaign name (journal header, reports).
    pub name: String,
    /// Repetitions per cell (the paper recommends n ≥ 30).
    pub repetitions: u32,
    /// Master seed; each cell derives its own stable seed base from it.
    pub seed: u64,
    /// The enumeration design.
    pub design: Design,
    /// The factors and their levels.
    pub space: FactorSpace,
}

impl ScenarioMatrix {
    /// Parses the line-based matrix spec format:
    ///
    /// ```text
    /// # 2 SUT x 3 rate-pattern smoke matrix
    /// matrix = pattern-smoke
    /// repetitions = 3
    /// seed = 42
    /// design = full
    /// factor sut = tide-store | tide-graph
    /// factor pattern = uniform | diurnal:10:0.4 | flash:2:4:1
    /// factor rate = 20000
    /// ```
    ///
    /// Blank lines and `#` comments are ignored. Levels are separated by
    /// `|` (rate-pattern and chaos specs use `:` and `,` internally).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut name = None;
        let mut repetitions = None;
        let mut seed = 42u64;
        let mut design = Design::FullFactorial;
        let mut space = FactorSpace::new();
        let mut factor_names = HashSet::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "matrix" => name = Some(value.to_owned()),
                "repetitions" => {
                    let n: u32 = value
                        .parse()
                        .map_err(|e| format!("line {}: bad repetitions: {e}", lineno + 1))?;
                    if n == 0 {
                        return Err(format!("line {}: repetitions must be >= 1", lineno + 1));
                    }
                    repetitions = Some(n);
                }
                "seed" => {
                    seed = value
                        .parse()
                        .map_err(|e| format!("line {}: bad seed: {e}", lineno + 1))?;
                }
                "design" => {
                    design = match value {
                        "full" => Design::FullFactorial,
                        "ofat" => Design::OneFactorAtATime,
                        other => {
                            return Err(format!(
                                "line {}: unknown design `{other}` (expected full or ofat)",
                                lineno + 1
                            ))
                        }
                    };
                }
                _ => {
                    let factor = key
                        .strip_prefix("factor ")
                        .map(str::trim)
                        .filter(|f| !f.is_empty())
                        .ok_or_else(|| format!("line {}: unknown key `{key}`", lineno + 1))?;
                    check_token(factor, "factor name")
                        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                    if !factor_names.insert(factor.to_owned()) {
                        return Err(format!("line {}: duplicate factor `{factor}`", lineno + 1));
                    }
                    let levels: Vec<String> = value
                        .split('|')
                        .map(|l| l.trim().to_owned())
                        .filter(|l| !l.is_empty())
                        .collect();
                    if levels.is_empty() {
                        return Err(format!(
                            "line {}: factor `{factor}` has no levels",
                            lineno + 1
                        ));
                    }
                    for level in &levels {
                        check_token(level, "level")
                            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                    }
                    space = space.factor(factor, levels);
                }
            }
        }
        let matrix = ScenarioMatrix {
            name: name.ok_or("missing `matrix = NAME`")?,
            repetitions: repetitions.ok_or("missing `repetitions = N`")?,
            seed,
            design,
            space,
        };
        check_token(&matrix.name, "matrix name")?;
        if matrix.space.factors().is_empty() {
            return Err("matrix needs at least one `factor NAME = LEVELS` line".into());
        }
        Ok(matrix)
    }

    /// The cells this matrix executes, in the stable enumeration order
    /// resume depends on.
    pub fn cells(&self) -> Vec<Assignment> {
        match self.design {
            Design::FullFactorial => self.space.full_factorial(),
            Design::OneFactorAtATime => self.space.one_factor_at_a_time(),
        }
    }

    /// Total cell-repetitions the matrix schedules.
    pub fn total_runs(&self) -> usize {
        self.cells().len() * self.repetitions as usize
    }

    /// The [`ExperimentSpec`] of one cell: factors stamped, repetitions
    /// shared, and a seed base derived from the master seed and the cell
    /// id — so repetition seeds come from the standard
    /// [`ExperimentSpec::seed_for`] and never collide across cells.
    pub fn cell_spec(&self, cell: &Assignment) -> ExperimentSpec {
        let id = cell_id(cell);
        let mut spec = ExperimentSpec::new(
            &format!("{}/{id}", self.name),
            "scenario-matrix cell",
            "per-cell factors",
        )
        .with_repetitions(self.repetitions);
        spec.factors = cell.clone();
        spec.seed = self.seed.wrapping_add(fnv1a(&id));
        spec
    }

    /// The spec fingerprint stored in the journal header; any change to
    /// name, repetitions, seed, design, or factor space changes it.
    pub fn fingerprint(&self) -> String {
        let factors: Vec<String> = self
            .space
            .factors()
            .iter()
            .map(|f| format!("{}={}", f.name, f.levels.join("|")))
            .collect();
        format!(
            "{};reps={};seed={};design={};{}",
            self.name,
            self.repetitions,
            self.seed,
            self.design.label(),
            factors.join(";")
        )
    }
}

/// Rejects tokens containing characters the cell-id or journal encodings
/// reserve.
fn check_token(token: &str, what: &str) -> Result<(), String> {
    let name = what.ends_with("name");
    if let Some(bad) = token
        .chars()
        .find(|c| RESERVED_CHARS.contains(c) || (name && *c == '='))
    {
        return Err(format!(
            "{what} `{token}` contains reserved character `{bad}`"
        ));
    }
    Ok(())
}

/// The stable identity of a cell: `factor=level;factor=level` in factor
/// declaration order.
pub fn cell_id(cell: &Assignment) -> String {
    cell.iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(";")
}

/// FNV-1a over the cell id: a stable, dependency-free 64-bit mix that
/// spreads per-cell seed bases far apart.
fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in s.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What one cell-repetition produced: how the run ended plus its
/// headline metrics (name → value, report order preserved).
#[derive(Debug, Clone, PartialEq)]
pub struct CellRunResult {
    /// How the run ended; aborted runs are journaled but excluded from
    /// aggregates.
    pub status: RunStatus,
    /// Headline metrics of the run.
    pub metrics: Vec<(String, f64)>,
}

/// Executes one cell-repetition. `gt-run matrix` wires the real SUT
/// runner behind this; tests use deterministic fakes.
pub trait CellRunner {
    /// Runs repetition `rep` of `cell` with the derived `seed`.
    fn run(&mut self, cell: &Assignment, rep: u32, seed: u64) -> CellRunResult;
}

impl<F: FnMut(&Assignment, u32, u64) -> CellRunResult> CellRunner for F {
    fn run(&mut self, cell: &Assignment, rep: u32, seed: u64) -> CellRunResult {
        self(cell, rep, seed)
    }
}

/// One journal line: a completed (or aborted) cell-repetition.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// The cell's stable id (see [`cell_id`]).
    pub cell: String,
    /// Repetition index within the cell.
    pub rep: u32,
    /// The seed the repetition ran with.
    pub seed: u64,
    /// How the run ended.
    pub status: RunStatus,
    /// The run's headline metrics.
    pub metrics: Vec<(String, f64)>,
}

impl JournalRecord {
    /// Serializes to one JSON line (no trailing newline). Floats use
    /// Rust's shortest round-trip form, so parsing recovers them exactly.
    pub fn to_json_line(&self) -> String {
        let metrics: Vec<String> = self
            .metrics
            .iter()
            .map(|(k, v)| format!("[\"{k}\",{}]", fmt_f64(*v)))
            .collect();
        format!(
            "{{\"cell\":\"{}\",\"rep\":{},\"seed\":{},\"status\":\"{}\",\"metrics\":[{}]}}",
            self.cell,
            self.rep,
            self.seed,
            encode_status(&self.status),
            metrics.join(",")
        )
    }

    /// Parses one JSON line written by [`Self::to_json_line`].
    pub fn parse_json_line(line: &str) -> Result<Self, String> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err("not a JSON object".into());
        }
        let cell = extract_str(line, "cell")?;
        let rep = extract_num(line, "rep")? as u32;
        let seed = extract_num(line, "seed")? as u64;
        let status = decode_status(&extract_str(line, "status")?)?;
        let metrics = extract_metric_pairs(line)?;
        Ok(JournalRecord {
            cell,
            rep,
            seed,
            status,
            metrics,
        })
    }
}

/// `{:?}`-free float formatting that always round-trips: integral values
/// keep a `.0` suffix so the JSON stays visibly a float.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn encode_status(status: &RunStatus) -> String {
    match status {
        RunStatus::Completed => "completed".to_owned(),
        RunStatus::Aborted(AbortReason::Stalled {
            stalled_for,
            events_delivered,
        }) => format!(
            "aborted-stalled:{}:{}",
            stalled_for.as_millis(),
            events_delivered
        ),
        RunStatus::Aborted(AbortReason::DeadlineExceeded {
            deadline,
            events_delivered,
        }) => format!(
            "aborted-deadline:{}:{}",
            deadline.as_millis(),
            events_delivered
        ),
    }
}

fn decode_status(text: &str) -> Result<RunStatus, String> {
    if text == "completed" {
        return Ok(RunStatus::Completed);
    }
    let mut parts = text.split(':');
    let kind = parts.next().unwrap_or_default();
    let millis: u64 = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| format!("bad status `{text}`"))?;
    let events: u64 = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| format!("bad status `{text}`"))?;
    match kind {
        "aborted-stalled" => Ok(RunStatus::Aborted(AbortReason::Stalled {
            stalled_for: Duration::from_millis(millis),
            events_delivered: events,
        })),
        "aborted-deadline" => Ok(RunStatus::Aborted(AbortReason::DeadlineExceeded {
            deadline: Duration::from_millis(millis),
            events_delivered: events,
        })),
        other => Err(format!("unknown status `{other}`")),
    }
}

/// Extracts `"key":"VALUE"` (values never contain `"` — enforced at spec
/// parse time).
fn extract_str(line: &str, key: &str) -> Result<String, String> {
    let marker = format!("\"{key}\":\"");
    let start = line
        .find(&marker)
        .ok_or_else(|| format!("missing string field `{key}`"))?
        + marker.len();
    let end = line[start..]
        .find('"')
        .ok_or_else(|| format!("unterminated string field `{key}`"))?;
    Ok(line[start..start + end].to_owned())
}

/// Extracts `"key":NUMBER`.
fn extract_num(line: &str, key: &str) -> Result<f64, String> {
    let marker = format!("\"{key}\":");
    let start = line
        .find(&marker)
        .ok_or_else(|| format!("missing numeric field `{key}`"))?
        + marker.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("unterminated numeric field `{key}`"))?;
    rest[..end]
        .trim()
        .parse()
        .map_err(|e| format!("bad number in `{key}`: {e}"))
}

/// Extracts the `"metrics":[["name",1.5],...]` pair array.
fn extract_metric_pairs(line: &str) -> Result<Vec<(String, f64)>, String> {
    let marker = "\"metrics\":[";
    let start = line.find(marker).ok_or("missing `metrics` field")? + marker.len();
    let end = line[start..]
        .rfind(']')
        .ok_or("unterminated `metrics` array")?;
    let body = &line[start..start + end];
    let mut metrics = Vec::new();
    let mut rest = body;
    while let Some(open) = rest.find("[\"") {
        let name_start = open + 2;
        let name_end = rest[name_start..]
            .find('"')
            .ok_or("unterminated metric name")?
            + name_start;
        let name = rest[name_start..name_end].to_owned();
        let value_start = name_end + 2; // skip `",`
        let value_end = rest[value_start..]
            .find(']')
            .ok_or("unterminated metric value")?
            + value_start;
        let value: f64 = rest[value_start..value_end]
            .trim()
            .parse()
            .map_err(|e| format!("bad metric value for `{name}`: {e}"))?;
        metrics.push((name, value));
        rest = &rest[value_end + 1..];
    }
    Ok(metrics)
}

/// The file-backed matrix journal: header line + one JSON line per
/// finished cell-repetition, appended and flushed as runs finish.
pub struct MatrixJournal {
    file: File,
}

impl MatrixJournal {
    /// Opens (or creates) the journal for `matrix` at `path`, returning
    /// the journal and every valid record already present.
    ///
    /// * A fresh file gets the fingerprint header.
    /// * An existing file must carry the **same** fingerprint — resuming
    ///   a different matrix into the journal is an error, never silent.
    /// * A trailing partial line (killed mid-write) is truncated away, so
    ///   the append position is always a clean line boundary.
    pub fn open(path: &Path, matrix: &ScenarioMatrix) -> io::Result<(Self, Vec<JournalRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut text = String::new();
        file.read_to_string(&mut text)?;

        if text.is_empty() {
            let header = format!("{{\"matrix\":\"{}\"}}\n", matrix.fingerprint());
            file.write_all(header.as_bytes())?;
            file.flush()?;
            return Ok((MatrixJournal { file }, Vec::new()));
        }

        let Some((header_line, _)) = text.split_once('\n') else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "journal header line is incomplete",
            ));
        };
        let found = extract_str(header_line, "matrix")
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if found != matrix.fingerprint() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "journal belongs to a different matrix:\n  journal: {found}\n  spec:    {}",
                    matrix.fingerprint()
                ),
            ));
        }

        // Replay the body, keeping the longest valid line prefix; a
        // partial or corrupt tail is truncated so the next append starts
        // on a clean boundary (its repetition simply re-runs).
        let mut records = Vec::new();
        let mut valid_len = header_line.len() + 1;
        let body = &text[valid_len..];
        for line in body.split_inclusive('\n') {
            let complete = line.ends_with('\n');
            match (complete, JournalRecord::parse_json_line(line)) {
                (true, Ok(record)) => {
                    records.push(record);
                    valid_len += line.len();
                }
                _ => break,
            }
        }
        if valid_len < text.len() {
            file.set_len(valid_len as u64)?;
        }
        file.seek(io::SeekFrom::Start(valid_len as u64))?;
        Ok((MatrixJournal { file }, records))
    }

    /// Appends one record and flushes it to disk before returning — a
    /// kill after `append` returns can never lose the repetition.
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let line = record.to_json_line();
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        self.file.sync_data()
    }
}

/// How a matrix execution went: what ran, what was skipped as already
/// journaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixProgress {
    /// Cell-repetitions the matrix schedules in total.
    pub total: usize,
    /// Repetitions skipped because the journal already held them.
    pub resumed: usize,
    /// Repetitions executed in this invocation.
    pub executed: usize,
}

/// One cell's aggregate over its clean repetitions.
#[derive(Debug, Clone)]
pub struct CellAggregate {
    /// The cell's stable id.
    pub cell: String,
    /// Aborted repetitions excluded from the aggregates.
    pub excluded: u32,
    /// Whether the clean-repetition count meets the paper's n ≥ 30 rule.
    pub meets_n30: bool,
    /// Per-metric summary + CI95 (Student-t below n = 30), in first-seen
    /// metric order.
    pub metrics: Vec<MetricAggregate>,
}

/// One metric's aggregate within a cell.
#[derive(Debug, Clone)]
pub struct MetricAggregate {
    /// Metric name as reported by the cell runner.
    pub name: String,
    /// Streaming summary over clean repetitions.
    pub summary: Summary,
    /// CI95 of the mean, if computable.
    pub ci95: Option<ConfidenceInterval>,
}

/// The outcome of [`run_matrix`]: per-cell aggregates (journal order) and
/// the resume accounting.
#[derive(Debug, Clone)]
pub struct MatrixOutcome {
    /// Per-cell aggregates, in first-seen journal order.
    pub cells: Vec<CellAggregate>,
    /// What ran vs. what resumed.
    pub progress: MatrixProgress,
}

/// Aggregates journal records into per-cell CI95 summaries. Pure: the
/// same records always produce the same aggregates, which is what makes
/// resumed matrices bit-identical to uninterrupted ones.
pub fn aggregate_records(records: &[JournalRecord]) -> Vec<CellAggregate> {
    let mut cells: Vec<(String, Vec<&JournalRecord>)> = Vec::new();
    for record in records {
        match cells.iter_mut().find(|(id, _)| *id == record.cell) {
            Some((_, list)) => list.push(record),
            None => cells.push((record.cell.clone(), vec![record])),
        }
    }
    cells
        .into_iter()
        .map(|(cell, records)| {
            let mut excluded = 0u32;
            let mut metrics: Vec<(String, Summary)> = Vec::new();
            let mut clean = 0u64;
            for record in records {
                match record.status {
                    RunStatus::Completed => {
                        clean += 1;
                        for (name, value) in &record.metrics {
                            match metrics.iter_mut().find(|(n, _)| n == name) {
                                Some((_, summary)) => summary.add(*value),
                                None => {
                                    let mut summary = Summary::new();
                                    summary.add(*value);
                                    metrics.push((name.clone(), summary));
                                }
                            }
                        }
                    }
                    RunStatus::Aborted(_) => excluded += 1,
                }
            }
            CellAggregate {
                cell,
                excluded,
                meets_n30: clean >= 30,
                metrics: metrics
                    .into_iter()
                    .map(|(name, summary)| MetricAggregate {
                        name,
                        ci95: summary.ci95(),
                        summary,
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Executes (or resumes) a scenario matrix against `runner`, journaling
/// to `journal_path`. Already-journaled cell-repetitions are skipped;
/// everything else runs in stable enumeration order, each repetition
/// flushed to the journal before the next starts. Aggregates are computed
/// from the journal records.
pub fn run_matrix(
    matrix: &ScenarioMatrix,
    journal_path: &Path,
    runner: &mut dyn CellRunner,
) -> io::Result<MatrixOutcome> {
    run_matrix_with_progress(matrix, journal_path, runner, &mut |_, _, _| {})
}

/// [`run_matrix`] with a progress callback `(cell_id, rep, resumed)`
/// invoked per cell-repetition (after skipping or running it).
pub fn run_matrix_with_progress(
    matrix: &ScenarioMatrix,
    journal_path: &Path,
    runner: &mut dyn CellRunner,
    progress: &mut dyn FnMut(&str, u32, bool),
) -> io::Result<MatrixOutcome> {
    let (mut journal, mut records) = MatrixJournal::open(journal_path, matrix)?;
    let done: HashSet<(String, u32)> = records.iter().map(|r| (r.cell.clone(), r.rep)).collect();
    let resumed = records.len();
    let mut executed = 0usize;
    for cell in matrix.cells() {
        let id = cell_id(&cell);
        let spec = matrix.cell_spec(&cell);
        for rep in 0..matrix.repetitions {
            if done.contains(&(id.clone(), rep)) {
                progress(&id, rep, true);
                continue;
            }
            let seed = spec.seed_for(rep);
            let result = runner.run(&cell, rep, seed);
            let record = JournalRecord {
                cell: id.clone(),
                rep,
                seed,
                status: result.status,
                metrics: result.metrics,
            };
            journal.append(&record)?;
            records.push(record);
            executed += 1;
            progress(&id, rep, false);
        }
    }
    Ok(MatrixOutcome {
        cells: aggregate_records(&records),
        progress: MatrixProgress {
            total: matrix.total_runs(),
            resumed,
            executed,
        },
    })
}

/// Renders the comparative matrix table: one block per cell, one line per
/// metric with mean, CI95, n, and the n ≥ 30 caveat.
pub fn render_matrix_table(cells: &[CellAggregate]) -> String {
    let mut out = String::new();
    for aggregate in cells {
        out.push_str(&format!(
            "cell {} (n={}, excluded={}{})\n",
            aggregate.cell,
            aggregate.metrics.first().map_or(0, |m| m.summary.count()),
            aggregate.excluded,
            if aggregate.meets_n30 {
                ""
            } else {
                ", below n>=30 — provisional"
            },
        ));
        for metric in &aggregate.metrics {
            match &metric.ci95 {
                Some(ci) => out.push_str(&format!(
                    "  {:<20} mean {:>12.2}  CI95 [{:>12.2}, {:>12.2}]\n",
                    metric.name,
                    metric.summary.mean(),
                    ci.lo,
                    ci.hi
                )),
                None => out.push_str(&format!(
                    "  {:<20} mean {:>12.2}  (no CI: n < 2)\n",
                    metric.name,
                    metric.summary.mean()
                )),
            }
        }
    }
    out
}

impl fmt::Display for ScenarioMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "matrix {}: {} cells x {} reps = {} runs ({} design, seed {})",
            self.name,
            self.cells().len(),
            self.repetitions,
            self.total_runs(),
            self.design.label(),
            self.seed
        )?;
        for factor in self.space.factors() {
            writeln!(
                f,
                "  factor {} = {}",
                factor.name,
                factor.levels.join(" | ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
# comment
matrix = smoke
repetitions = 3
seed = 7
design = full
factor sut = tide-store | tide-graph
factor pattern = uniform | flash:1:4:2
";

    fn runner(
        calls: &mut Vec<(String, u32, u64)>,
    ) -> impl FnMut(&Assignment, u32, u64) -> CellRunResult + '_ {
        move |cell, rep, seed| {
            calls.push((cell_id(cell), rep, seed));
            CellRunResult {
                status: RunStatus::Completed,
                metrics: vec![
                    ("achieved_rate".into(), 1000.0 + seed as f64 % 97.0),
                    ("events".into(), 500.0),
                ],
            }
        }
    }

    #[test]
    fn parses_the_spec_format() {
        let matrix = ScenarioMatrix::parse(SPEC).unwrap();
        assert_eq!(matrix.name, "smoke");
        assert_eq!(matrix.repetitions, 3);
        assert_eq!(matrix.seed, 7);
        assert_eq!(matrix.cells().len(), 4);
        assert_eq!(matrix.total_runs(), 12);
        let ids: Vec<String> = matrix.cells().iter().map(cell_id).collect();
        assert!(ids.contains(&"sut=tide-store;pattern=flash:1:4:2".to_owned()));
    }

    #[test]
    fn rejects_malformed_specs() {
        for (bad, why) in [
            ("repetitions = 3\nfactor a = x", "missing name"),
            ("matrix = m\nfactor a = x", "missing repetitions"),
            ("matrix = m\nrepetitions = 0\nfactor a = x", "zero reps"),
            ("matrix = m\nrepetitions = 3", "no factors"),
            (
                "matrix = m\nrepetitions = 3\nfactor a = x\nfactor a = y",
                "dup factor",
            ),
            (
                "matrix = m\nrepetitions = 3\nfactor a; = x",
                "reserved char",
            ),
            ("matrix = m\nrepetitions = 3\nbogus a = x", "unknown key"),
            (
                "matrix = m\nrepetitions = 3\ndesign = fractional\nfactor a = x",
                "bad design",
            ),
        ] {
            assert!(ScenarioMatrix::parse(bad).is_err(), "accepted: {why}");
        }
    }

    #[test]
    fn journal_record_round_trips_exactly() {
        let record = JournalRecord {
            cell: "sut=tide-store;pattern=flash:1:4:2".into(),
            rep: 2,
            seed: 12345,
            status: RunStatus::Completed,
            metrics: vec![
                ("achieved_rate".into(), 19876.54321),
                ("p99_micros".into(), 0.1 + 0.2), // deliberately awkward float
                ("events".into(), 500.0),
            ],
        };
        let parsed = JournalRecord::parse_json_line(&record.to_json_line()).unwrap();
        assert_eq!(parsed, record);
        for ((_, a), (_, b)) in record.metrics.iter().zip(&parsed.metrics) {
            assert_eq!(a.to_bits(), b.to_bits(), "float must round-trip bitwise");
        }
    }

    #[test]
    fn aborted_statuses_round_trip() {
        for status in [
            RunStatus::Aborted(AbortReason::Stalled {
                stalled_for: Duration::from_millis(1500),
                events_delivered: 42,
            }),
            RunStatus::Aborted(AbortReason::DeadlineExceeded {
                deadline: Duration::from_millis(30_000),
                events_delivered: 9001,
            }),
        ] {
            let record = JournalRecord {
                cell: "a=b".into(),
                rep: 0,
                seed: 1,
                status: status.clone(),
                metrics: vec![("partial".into(), 1.0)],
            };
            let parsed = JournalRecord::parse_json_line(&record.to_json_line()).unwrap();
            assert_eq!(parsed.status, status);
        }
    }

    #[test]
    fn runs_every_cell_repetition_once_with_distinct_seeds() {
        let dir = std::env::temp_dir().join("gt-matrix-basic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        std::fs::remove_file(&path).ok();
        let matrix = ScenarioMatrix::parse(SPEC).unwrap();
        let mut calls = Vec::new();
        let outcome = run_matrix(&matrix, &path, &mut runner(&mut calls)).unwrap();
        assert_eq!(calls.len(), 12);
        let mut seeds: Vec<u64> = calls.iter().map(|(_, _, s)| *s).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 12, "seeds must never collide across cells");
        assert_eq!(outcome.progress.executed, 12);
        assert_eq!(outcome.progress.resumed, 0);
        assert_eq!(outcome.cells.len(), 4);
        for cell in &outcome.cells {
            assert_eq!(cell.metrics[0].summary.count(), 3);
            assert!(!cell.meets_n30);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_skips_completed_and_matches_bitwise() {
        let dir = std::env::temp_dir().join("gt-matrix-resume");
        std::fs::create_dir_all(&dir).unwrap();
        let matrix = ScenarioMatrix::parse(SPEC).unwrap();

        // Reference: the full matrix in one piece.
        let full_path = dir.join("full.jsonl");
        std::fs::remove_file(&full_path).ok();
        let mut calls = Vec::new();
        let full = run_matrix(&matrix, &full_path, &mut runner(&mut calls)).unwrap();

        // Interrupted: journal truncated after 5 records, then resumed.
        let cut_path = dir.join("cut.jsonl");
        std::fs::remove_file(&cut_path).ok();
        std::fs::copy(&full_path, &cut_path).unwrap();
        let text = std::fs::read_to_string(&cut_path).unwrap();
        let keep: String = text.lines().take(1 + 5).map(|l| format!("{l}\n")).collect();
        std::fs::write(&cut_path, keep).unwrap();

        let mut resumed_calls = Vec::new();
        let resumed = run_matrix(&matrix, &cut_path, &mut runner(&mut resumed_calls)).unwrap();
        assert_eq!(resumed.progress.resumed, 5);
        assert_eq!(resumed.progress.executed, 7);
        assert_eq!(resumed_calls.len(), 7, "completed repetitions never re-run");

        // The resumed journal is byte-identical to the uninterrupted one…
        assert_eq!(
            std::fs::read_to_string(&full_path).unwrap(),
            std::fs::read_to_string(&cut_path).unwrap()
        );
        // …and so are the aggregates.
        for (a, b) in full.cells.iter().zip(&resumed.cells) {
            assert_eq!(a.cell, b.cell);
            for (ma, mb) in a.metrics.iter().zip(&b.metrics) {
                assert_eq!(ma.summary.mean().to_bits(), mb.summary.mean().to_bits());
                let (ca, cb) = (ma.ci95.as_ref().unwrap(), mb.ci95.as_ref().unwrap());
                assert_eq!(ca.lo.to_bits(), cb.lo.to_bits());
                assert_eq!(ca.hi.to_bits(), cb.hi.to_bits());
            }
        }
        std::fs::remove_file(&full_path).ok();
        std::fs::remove_file(&cut_path).ok();
    }

    #[test]
    fn partial_trailing_line_is_truncated_and_re_run() {
        let dir = std::env::temp_dir().join("gt-matrix-partial");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        std::fs::remove_file(&path).ok();
        let matrix = ScenarioMatrix::parse(SPEC).unwrap();
        let mut calls = Vec::new();
        run_matrix(&matrix, &path, &mut runner(&mut calls)).unwrap();

        // Kill mid-write: chop the file in the middle of the last line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 17]).unwrap();

        let mut resumed_calls = Vec::new();
        let outcome = run_matrix(&matrix, &path, &mut runner(&mut resumed_calls)).unwrap();
        assert_eq!(
            resumed_calls.len(),
            1,
            "only the mangled repetition re-runs"
        );
        assert_eq!(outcome.progress.resumed, 11);
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            text,
            "recovered journal matches the uninterrupted one"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_refuses_a_different_matrix() {
        let dir = std::env::temp_dir().join("gt-matrix-mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        std::fs::remove_file(&path).ok();
        let matrix = ScenarioMatrix::parse(SPEC).unwrap();
        let mut calls = Vec::new();
        run_matrix(&matrix, &path, &mut runner(&mut calls)).unwrap();

        let mut other = matrix.clone();
        other.repetitions = 30;
        let err = run_matrix(&other, &path, &mut runner(&mut calls)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn aborted_repetitions_are_journaled_but_excluded() {
        let dir = std::env::temp_dir().join("gt-matrix-aborted");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        std::fs::remove_file(&path).ok();
        let matrix =
            ScenarioMatrix::parse("matrix = ab\nrepetitions = 4\nfactor sut = only").unwrap();
        let mut aborted_first = true;
        let outcome = run_matrix(
            &matrix,
            &path,
            &mut |_: &Assignment, _rep: u32, _seed: u64| {
                let status = if aborted_first {
                    aborted_first = false;
                    RunStatus::Aborted(AbortReason::Stalled {
                        stalled_for: Duration::from_secs(1),
                        events_delivered: 3,
                    })
                } else {
                    RunStatus::Completed
                };
                CellRunResult {
                    status,
                    metrics: vec![("rate".into(), 100.0)],
                }
            },
        )
        .unwrap();
        let cell = &outcome.cells[0];
        assert_eq!(cell.excluded, 1);
        assert_eq!(cell.metrics[0].summary.count(), 3);
        assert_eq!(cell.metrics[0].summary.mean(), 100.0);

        // Resume sees the aborted repetition as done: nothing re-runs.
        let mut reruns = 0usize;
        let resumed = run_matrix(&matrix, &path, &mut |_: &Assignment, _: u32, _: u64| {
            reruns += 1;
            CellRunResult {
                status: RunStatus::Completed,
                metrics: vec![("rate".into(), 999.0)],
            }
        })
        .unwrap();
        assert_eq!(reruns, 0);
        assert_eq!(resumed.cells[0].excluded, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn table_renders_means_and_caveats() {
        let records = vec![
            JournalRecord {
                cell: "sut=a".into(),
                rep: 0,
                seed: 1,
                status: RunStatus::Completed,
                metrics: vec![("rate".into(), 100.0)],
            },
            JournalRecord {
                cell: "sut=a".into(),
                rep: 1,
                seed: 2,
                status: RunStatus::Completed,
                metrics: vec![("rate".into(), 110.0)],
            },
        ];
        let table = render_matrix_table(&aggregate_records(&records));
        assert!(table.contains("sut=a"), "{table}");
        assert!(table.contains("105.00"), "{table}");
        assert!(table.contains("provisional"), "{table}");
    }
}

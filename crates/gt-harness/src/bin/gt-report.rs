//! `gt-report` — result-log analysis as a standalone tool.
//!
//! Reads a merged result log (the log collector's output) and prints the
//! assessment the paper's methodology starts from: per-series summaries,
//! marker positions, and optional cross-correlation between two series.
//!
//! ```text
//! gt-report <result.log> [--series SOURCE METRIC] [--correlate S1 M1 S2 M2] [--resources]
//! gt-report --matrix <journal.jsonl>
//! ```
//!
//! `--matrix` re-renders a scenario-matrix journal (the resumable
//! cell-repetition log `gt-run matrix` writes) as the per-cell CI95
//! comparison table, without re-running anything.

use std::process::ExitCode;

use gt_analysis::{cross_correlation, Quantiles, Summary};
use gt_harness::{aggregate_records, render_matrix_table, JournalRecord};
use gt_metrics::ResultLog;

/// Human-readable byte count (binary units, matching `top`/`htop`).
fn fmt_bytes(bytes: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.1} {}", UNITS[unit])
}

/// Prints the Level-0 resource summary for every source that carries a
/// process-monitor series (peak RSS, mean/max CPU%, totals).
fn print_resource_summary(log: &ResultLog) -> bool {
    let mut sources: Vec<String> = log
        .records()
        .iter()
        .filter(|r| r.metric == "cpu_percent" || r.metric == "rss_bytes")
        .map(|r| r.source.clone())
        .collect();
    sources.sort();
    sources.dedup();
    if sources.is_empty() {
        return false;
    }
    println!("resource usage (Level-0 monitor):");
    for source in sources {
        let cpu: Vec<f64> = log
            .series(&source, "cpu_percent")
            .iter()
            .map(|&(_, v)| v)
            .collect();
        let rss: Vec<f64> = log
            .series(&source, "rss_bytes")
            .iter()
            .map(|&(_, v)| v)
            .collect();
        let threads = log.series(&source, "threads");
        let mut line = format!("    {source}:");
        if !cpu.is_empty() {
            let s = Summary::of(&cpu);
            line.push_str(&format!(
                " cpu mean {:.1}% max {:.1}%,",
                s.mean(),
                s.max().unwrap_or(0.0)
            ));
        }
        if !rss.is_empty() {
            let s = Summary::of(&rss);
            line.push_str(&format!(
                " rss peak {} (mean {}),",
                fmt_bytes(s.max().unwrap_or(0.0)),
                fmt_bytes(s.mean())
            ));
        }
        if let Some(&(_, n)) = threads.last() {
            line.push_str(&format!(" {n:.0} threads,"));
        }
        println!("{}", line.trim_end_matches(','));
        for (metric, label) in [
            ("io_read_bytes", "io read"),
            ("io_write_bytes", "io written"),
        ] {
            if let Some(&(_, v)) = log.series(&source, metric).last() {
                println!("        {label} {}", fmt_bytes(v));
            }
        }
        for r in log.records() {
            if r.source == source && r.metric == "error" {
                println!("        monitor error: {}", r.value);
            }
        }
    }
    true
}

fn print_series_summary(log: &ResultLog, source: &str, metric: &str) {
    let series = log.series(source, metric);
    if series.is_empty() {
        println!("{source}/{metric}: no numeric samples");
        return;
    }
    let values: Vec<f64> = series.iter().map(|&(_, v)| v).collect();
    let summary = Summary::of(&values);
    // A salvaged partial log can carry all-NaN windows (a degraded
    // sampler); degrade the row rather than aborting the whole report.
    let Some(q) = Quantiles::of(&values) else {
        println!(
            "{source}/{metric}: insufficient samples ({} records, none usable)",
            values.len()
        );
        return;
    };
    println!(
        "{source}/{metric}: n={} span {:.2}s..{:.2}s",
        summary.count(),
        series.first().expect("non-empty").0,
        series.last().expect("non-empty").0,
    );
    println!(
        "    mean {:.3} (stddev {:.3}), min {:.3}, median {:.3}, p95 {:.3}, max {:.3}",
        summary.mean(),
        summary.stddev(),
        q.min,
        q.median,
        q.p95,
        q.max
    );
}

/// Renders a scenario-matrix journal as the per-cell aggregate table.
fn print_matrix_report(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| format!("{path}: empty journal"))?;
    let fingerprint = header
        .trim()
        .strip_prefix("{\"matrix\":\"")
        .and_then(|rest| rest.strip_suffix("\"}"))
        .ok_or_else(|| format!("{path}: not a matrix journal (bad header line)"))?;
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        match JournalRecord::parse_json_line(line) {
            Ok(record) => records.push(record),
            // A truncated trailing line (killed run) is expected; the
            // orchestrator re-runs that repetition on resume.
            Err(_) => skipped += 1,
        }
    }
    println!("matrix: {fingerprint}");
    let aborted = records
        .iter()
        .filter(|r| !matches!(r.status, gt_harness::RunStatus::Completed))
        .count();
    println!(
        "journal: {} cell-repetitions ({aborted} aborted{})",
        records.len(),
        if skipped > 0 {
            format!(", {skipped} unparsable line(s) ignored")
        } else {
            String::new()
        }
    );
    print!("{}", render_matrix_table(&aggregate_records(&records)));
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        return Err(
            "usage: gt-report <result.log> [--series SOURCE METRIC] [--correlate S1 M1 S2 M2] [--resources]\n\
             \x20      gt-report --matrix <journal.jsonl>"
                .into(),
        );
    }
    if args[0] == "--matrix" {
        let path = args.get(1).ok_or("--matrix needs a journal path")?;
        return print_matrix_report(path);
    }
    let log = ResultLog::read_from_file(&args[0]).map_err(|e| format!("{}: {e}", args[0]))?;
    println!(
        "result log: {} records from {} sources",
        log.len(),
        log.sources().len()
    );

    let mut rest = args[1..].iter();
    let mut did_something = false;
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--series" => {
                let source = rest.next().ok_or("--series needs SOURCE METRIC")?;
                let metric = rest.next().ok_or("--series needs SOURCE METRIC")?;
                print_series_summary(&log, source, metric);
                did_something = true;
            }
            "--correlate" => {
                let (s1, m1, s2, m2) = (
                    rest.next().ok_or("--correlate needs S1 M1 S2 M2")?,
                    rest.next().ok_or("--correlate needs S1 M1 S2 M2")?,
                    rest.next().ok_or("--correlate needs S1 M1 S2 M2")?,
                    rest.next().ok_or("--correlate needs S1 M1 S2 M2")?,
                );
                let a: Vec<f64> = log.series(s1, m1).iter().map(|&(_, v)| v).collect();
                let b: Vec<f64> = log.series(s2, m2).iter().map(|&(_, v)| v).collect();
                let n = a.len().min(b.len());
                let lags = cross_correlation(&a[..n], &b[..n], (n / 4).max(1));
                match lags
                    .iter()
                    .max_by(|(_, x), (_, y)| x.abs().partial_cmp(&y.abs()).expect("finite"))
                {
                    Some((lag, r)) => println!(
                        "cross-correlation {s1}/{m1} vs {s2}/{m2}: strongest r={r:.3} at lag {lag} samples"
                    ),
                    None => println!("cross-correlation: series too short"),
                }
                did_something = true;
            }
            "--resources" => {
                if !print_resource_summary(&log) {
                    println!("resource usage: no monitor series in this log");
                }
                did_something = true;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    if !did_something {
        // Default report: every (source, metric) pair plus markers.
        let mut pairs: Vec<(String, String)> = log
            .records()
            .iter()
            .filter(|r| r.value.as_f64().is_some())
            .map(|r| (r.source.clone(), r.metric.clone()))
            .collect();
        pairs.sort();
        pairs.dedup();
        for (source, metric) in pairs {
            print_series_summary(&log, &source, &metric);
        }
        print_resource_summary(&log);
        let markers: Vec<_> = log
            .records()
            .iter()
            .filter(|r| r.metric == "marker")
            .collect();
        if !markers.is_empty() {
            println!("markers:");
            for m in markers {
                println!("    {:.3}s  {}", m.t_secs(), m.value);
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gt-report: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_metrics::MetricRecord;

    // Regression: an all-NaN series from a degraded sampler used to
    // panic `Quantiles::of`'s sort and abort the whole report; it must
    // degrade to an "insufficient samples" row instead.
    #[test]
    fn all_nan_series_degrades_instead_of_panicking() {
        let mut log = ResultLog::new();
        for i in 0..5u64 {
            log.push(MetricRecord::float(i * 1000, "sysmon", "cpu", f64::NAN));
        }
        print_series_summary(&log, "sysmon", "cpu");
    }

    #[test]
    fn empty_series_degrades_instead_of_panicking() {
        let log = ResultLog::new();
        print_series_summary(&log, "sysmon", "cpu");
    }
}

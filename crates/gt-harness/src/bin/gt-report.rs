//! `gt-report` — result-log analysis as a standalone tool.
//!
//! Reads a merged result log (the log collector's output) and prints the
//! assessment the paper's methodology starts from: per-series summaries,
//! marker positions, and optional cross-correlation between two series.
//!
//! ```text
//! gt-report <result.log> [--series SOURCE METRIC] [--correlate S1 M1 S2 M2]
//! ```

use std::process::ExitCode;

use gt_analysis::{cross_correlation, Quantiles, Summary};
use gt_metrics::ResultLog;

fn print_series_summary(log: &ResultLog, source: &str, metric: &str) {
    let series = log.series(source, metric);
    if series.is_empty() {
        println!("{source}/{metric}: no numeric samples");
        return;
    }
    let values: Vec<f64> = series.iter().map(|&(_, v)| v).collect();
    let summary = Summary::of(&values);
    let q = Quantiles::of(&values).expect("non-empty");
    println!(
        "{source}/{metric}: n={} span {:.2}s..{:.2}s",
        summary.count(),
        series.first().expect("non-empty").0,
        series.last().expect("non-empty").0,
    );
    println!(
        "    mean {:.3} (stddev {:.3}), min {:.3}, median {:.3}, p95 {:.3}, max {:.3}",
        summary.mean(),
        summary.stddev(),
        q.min,
        q.median,
        q.p95,
        q.max
    );
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        return Err(
            "usage: gt-report <result.log> [--series SOURCE METRIC] [--correlate S1 M1 S2 M2]"
                .into(),
        );
    }
    let log = ResultLog::read_from_file(&args[0]).map_err(|e| format!("{}: {e}", args[0]))?;
    println!(
        "result log: {} records from {} sources",
        log.len(),
        log.sources().len()
    );

    let mut rest = args[1..].iter();
    let mut did_something = false;
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--series" => {
                let source = rest.next().ok_or("--series needs SOURCE METRIC")?;
                let metric = rest.next().ok_or("--series needs SOURCE METRIC")?;
                print_series_summary(&log, source, metric);
                did_something = true;
            }
            "--correlate" => {
                let (s1, m1, s2, m2) = (
                    rest.next().ok_or("--correlate needs S1 M1 S2 M2")?,
                    rest.next().ok_or("--correlate needs S1 M1 S2 M2")?,
                    rest.next().ok_or("--correlate needs S1 M1 S2 M2")?,
                    rest.next().ok_or("--correlate needs S1 M1 S2 M2")?,
                );
                let a: Vec<f64> = log.series(s1, m1).iter().map(|&(_, v)| v).collect();
                let b: Vec<f64> = log.series(s2, m2).iter().map(|&(_, v)| v).collect();
                let n = a.len().min(b.len());
                let lags = cross_correlation(&a[..n], &b[..n], (n / 4).max(1));
                match lags
                    .iter()
                    .max_by(|(_, x), (_, y)| x.abs().partial_cmp(&y.abs()).expect("finite"))
                {
                    Some((lag, r)) => println!(
                        "cross-correlation {s1}/{m1} vs {s2}/{m2}: strongest r={r:.3} at lag {lag} samples"
                    ),
                    None => println!("cross-correlation: series too short"),
                }
                did_something = true;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    if !did_something {
        // Default report: every (source, metric) pair plus markers.
        let mut pairs: Vec<(String, String)> = log
            .records()
            .iter()
            .filter(|r| r.value.as_f64().is_some())
            .map(|r| (r.source.clone(), r.metric.clone()))
            .collect();
        pairs.sort();
        pairs.dedup();
        for (source, metric) in pairs {
            print_series_summary(&log, &source, &metric);
        }
        let markers: Vec<_> = log
            .records()
            .iter()
            .filter(|r| r.metric == "marker")
            .collect();
        if !markers.is_empty() {
            println!("markers:");
            for m in markers {
                println!("    {:.3}s  {}", m.t_secs(), m.value);
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gt-report: {msg}");
            ExitCode::FAILURE
        }
    }
}

//! The generic SUT runner: one experiment against any platform selected
//! from a [`SutRegistry`] by name.
//!
//! This is the harness half of the Figure 2 contract — the platform half
//! is the [`SystemUnderTest`] trait. The runner:
//!
//! 1. starts the named platform from its registered builder,
//! 2. clamps the plan's evaluation level to what the platform declares
//!    (asking for Level 2 from a black-box platform silently degrades
//!    to what is actually observable),
//! 3. wires the platform's native metrics hub ([`SystemUnderTest::hub`])
//!    into the sampling thread when the effective level grants Level 1,
//! 4. starts a Level-2 event tracer and installs it into the platform
//!    ([`SystemUnderTest::install_tracer`]) when the effective level
//!    grants in-source instrumentation, so sampled events carry
//!    emit→connector→apply tracepoint stamps,
//! 5. replays the plan through the platform's connector on the shared
//!    run clock,
//! 6. drops the connector, waits for the platform to drain
//!    ([`SystemUnderTest::quiesce`]), shuts it down, and folds the final
//!    [`SutReport`] plus the tracer's stage-pair latency records into the
//!    merged [`ResultLog`] (source = the platform name / `trace`,
//!    timestamped at run end / emit time).

use std::sync::Arc;
use std::time::Duration;

use gt_metrics::{Clock, HubSampler, MetricRecord, MetricsHub, ResultLog, WallClock};
use gt_netem::{NetemPlan, NETEM_SOURCE};
use gt_replayer::{EventSink, ReplayError};
use gt_sut::{StateDigest, SutError, SutOptions, SutRegistry, SutReport, SystemUnderTest};
use gt_trace::{TraceConfig, Tracer, TRACE_SOURCE};

use crate::levels::EvaluationLevel;
use crate::netem::{sink_records, start_netem_front};
use crate::run::{
    run_experiment_with_clock, run_file_experiment_with_clock, FileRunOutcome, FileRunPlan,
    RunOutcome, RunPlan,
};

/// How long the runner waits for a platform to drain its backlog after
/// the stream ends, before shutting it down.
pub const DEFAULT_QUIESCE_TIMEOUT: Duration = Duration::from_secs(30);

/// The outputs of one registry-selected run.
#[derive(Debug)]
pub struct SutRunOutcome<O> {
    /// The plain run outcome ([`RunOutcome`] or [`FileRunOutcome`]), with
    /// the platform's final report already folded into its log.
    pub run: O,
    /// The platform's final report (also available via the log).
    pub report: SutReport,
    /// Whether the platform drained within the quiesce timeout. A `false`
    /// here is itself a finding — the paper's Figure 3d system keeps
    /// computing long after the stream has ended.
    pub quiesced: bool,
    /// The platform's final-state digest, present only when the platform
    /// was started with its `digest=1` option — the raw material of the
    /// serial-vs-sharded differential harness ([`crate::differential`]).
    pub digest: Option<StateDigest>,
}

/// What can go wrong in a registry-selected run.
#[derive(Debug)]
pub enum SutRunError {
    /// Unknown platform name, or the platform failed to start.
    Sut(SutError),
    /// The replay itself failed (sink error, unreadable stream file, …).
    Replay(ReplayError),
}

impl std::fmt::Display for SutRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SutRunError::Sut(e) => write!(f, "system under test: {e}"),
            SutRunError::Replay(e) => write!(f, "replay: {e}"),
        }
    }
}

impl std::error::Error for SutRunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SutRunError::Sut(e) => Some(e),
            SutRunError::Replay(e) => Some(e),
        }
    }
}

impl From<SutError> for SutRunError {
    fn from(e: SutError) -> Self {
        SutRunError::Sut(e)
    }
}

impl From<ReplayError> for SutRunError {
    fn from(e: ReplayError) -> Self {
        SutRunError::Replay(e)
    }
}

impl From<std::io::Error> for SutRunError {
    fn from(e: std::io::Error) -> Self {
        SutRunError::Replay(ReplayError::from_sink_error(e))
    }
}

/// Prepares a started SUT for the run: clamps the level and registers the
/// L1 hub sampler. Returns the effective level.
pub(crate) fn wire_sut(
    sut: &mut Box<dyn SystemUnderTest>,
    plan_level: EvaluationLevel,
    loggers: &mut Vec<Box<dyn gt_metrics::MetricsLogger>>,
    clock: &Arc<dyn Clock>,
) -> EvaluationLevel {
    let effective = plan_level.min(sut.level());
    if effective.includes(EvaluationLevel::Level1) {
        if let Some(hub) = sut.hub() {
            loggers.push(Box::new(HubSampler::new(
                hub.clone(),
                Arc::clone(clock),
                sut.name(),
            )));
        }
    }
    effective
}

/// Starts the Level-2 event tracer when the effective level grants
/// in-source instrumentation: the tracer publishes its stage-pair
/// latency histograms through a dedicated hub sampled under
/// [`TRACE_SOURCE`], and the platform installs probes at its own
/// tracepoints ([`SystemUnderTest::install_tracer`]) *before* the first
/// connector is built, so the connector can stamp received events.
fn wire_tracer(
    sut: &mut Box<dyn SystemUnderTest>,
    effective: EvaluationLevel,
    loggers: &mut Vec<Box<dyn gt_metrics::MetricsLogger>>,
    clock: &Arc<dyn Clock>,
) -> Option<Tracer> {
    if !effective.includes(EvaluationLevel::Level2) {
        return None;
    }
    let trace_hub = MetricsHub::new();
    let tracer = Tracer::new(TraceConfig::default(), Arc::clone(clock), &trace_hub);
    loggers.push(Box::new(HubSampler::new(
        trace_hub,
        Arc::clone(clock),
        TRACE_SOURCE,
    )));
    sut.install_tracer(&tracer);
    Some(tracer)
}

/// Folds the platform's final report into a log as `float` records under
/// the platform's name, timestamped at `t_micros`.
pub(crate) fn fold_report(log: &ResultLog, report: &SutReport, t_micros: u64) -> ResultLog {
    let mut records: Vec<MetricRecord> = log.records().to_vec();
    for (metric, value) in &report.summary {
        records.push(MetricRecord::float(t_micros, &report.name, metric, *value));
    }
    ResultLog::from_records(records)
}

/// Stops the tracer and folds its matched stage-pair latency records
/// into the log (they carry their own emit-time timestamps, so they
/// interleave chronologically with the sampled series).
fn fold_trace(log: ResultLog, tracer: Option<Tracer>) -> ResultLog {
    let Some(tracer) = tracer else {
        return log;
    };
    let trace = tracer.stop();
    if trace.records.is_empty() {
        return log;
    }
    let mut records: Vec<MetricRecord> = log.records().to_vec();
    records.extend(trace.records);
    ResultLog::from_records(records)
}

/// Arms a chaos plan with the platform's own crash/restart surface when
/// the caller has not wired one explicitly. A platform without a
/// supervisor leaves crash faults journaled as undeliverable.
fn wire_chaos_supervisor(chaos: &mut Option<crate::run::ChaosPlan>, sut: &dyn SystemUnderTest) {
    if let Some(chaos) = chaos {
        if chaos.supervisor.is_none() {
            chaos.supervisor = sut.supervisor();
        }
    }
}

/// Runs the replay either straight into the connector or — when the plan
/// carried a netem plan — through the [`crate::netem`] front (sink →
/// fault proxy → bridge → connector). Returns the run result plus the
/// netem records to fold into the merged log: the front's counters, the
/// sink's per-cause disconnect stats, and the fault journal under the
/// `netem` source.
///
/// In both arms the connector is dropped before returning (directly, or
/// by the bridge thread joining), so the platform sees end-of-stream
/// before the caller quiesces it.
fn run_with_netem_front<O>(
    netem: Option<NetemPlan>,
    mut connector: Box<dyn EventSink + Send>,
    clock: &Arc<dyn Clock>,
    run: impl FnOnce(&mut (dyn EventSink + Send)) -> Result<O, SutRunError>,
) -> (Result<O, SutRunError>, Vec<MetricRecord>) {
    let Some(netem) = netem else {
        let result = run(&mut *connector);
        drop(connector);
        return (result, Vec::new());
    };
    let journal = netem.journal.clone();
    let (mut sink, front) = match start_netem_front(&netem, connector, Arc::clone(clock)) {
        Ok(pair) => pair,
        Err(e) => return (Err(e.into()), Vec::new()),
    };
    let result = run(&mut sink);
    let mut records = sink_records(&sink, clock.now_micros());
    // Dropping the sink closes the client socket; the in-flight proxy
    // connection drains to EOF before the front honors its stop flag.
    drop(sink);
    let result = match front.finish() {
        Ok(report) => {
            records.extend(report.records(clock.now_micros()));
            result
        }
        // A run error (if any) explains the front error; keep the former.
        Err(e) => result.and(Err(e.into())),
    };
    records.extend(journal.records_with_source(NETEM_SOURCE));
    (result, records)
}

/// Folds extra records into a log, re-sorting chronologically.
pub(crate) fn fold_records(log: ResultLog, extra: Vec<MetricRecord>) -> ResultLog {
    if extra.is_empty() {
        return log;
    }
    let mut records: Vec<MetricRecord> = log.records().to_vec();
    records.extend(extra);
    ResultLog::from_records(records)
}

/// Runs an in-memory plan against the platform registered under `name`.
///
/// See the module docs for the exact wiring sequence. The plan's `level`
/// is treated as *requested* access; the effective level is
/// `min(plan.level, sut.level())`.
pub fn run_sut_experiment(
    plan: RunPlan,
    registry: &SutRegistry,
    name: &str,
    options: &SutOptions,
) -> Result<SutRunOutcome<RunOutcome>, SutRunError> {
    run_sut_experiment_with_timeout(plan, registry, name, options, DEFAULT_QUIESCE_TIMEOUT)
}

/// [`run_sut_experiment`] with an explicit quiesce timeout — how long the
/// runner waits for the platform to drain after the stream ends. A
/// platform still busy when the timeout expires yields `quiesced ==
/// false` while its partial report and sampled metrics are folded into
/// the outcome as usual.
pub fn run_sut_experiment_with_timeout(
    mut plan: RunPlan,
    registry: &SutRegistry,
    name: &str,
    options: &SutOptions,
    quiesce_timeout: Duration,
) -> Result<SutRunOutcome<RunOutcome>, SutRunError> {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
    let mut sut = registry.start(name, options)?;
    plan.level = wire_sut(&mut sut, plan.level, &mut plan.loggers, &clock);
    let tracer = wire_tracer(&mut sut, plan.level, &mut plan.loggers, &clock);
    if let Some(tracer) = &tracer {
        plan.tracer = Some(tracer.clone());
    }
    wire_chaos_supervisor(&mut plan.chaos, sut.as_ref());

    let connector = sut.connector()?;
    let netem = plan.netem.take();
    let run_clock = Arc::clone(&clock);
    let (result, netem_records) = run_with_netem_front(netem, connector, &clock, move |sink| {
        run_experiment_with_clock(plan, sink, run_clock).map_err(SutRunError::from)
    });

    let quiesced = sut.quiesce(quiesce_timeout);
    let (report, digest) = sut.shutdown_digest();
    let mut run = match result {
        Ok(run) => run,
        Err(e) => {
            if let Some(tracer) = tracer {
                tracer.stop();
            }
            return Err(e);
        }
    };
    run.log = fold_report(&run.log, &report, clock.now_micros());
    run.log = fold_trace(run.log, tracer);
    run.log = fold_records(run.log, netem_records);
    Ok(SutRunOutcome {
        run,
        report,
        quiesced,
        digest,
    })
}

/// Runs a file-backed plan against the platform registered under `name`
/// — the same wiring as [`run_sut_experiment`] on the streaming pipeline.
pub fn run_file_sut_experiment(
    plan: FileRunPlan,
    registry: &SutRegistry,
    name: &str,
    options: &SutOptions,
) -> Result<SutRunOutcome<FileRunOutcome>, SutRunError> {
    run_file_sut_experiment_with_timeout(plan, registry, name, options, DEFAULT_QUIESCE_TIMEOUT)
}

/// [`run_file_sut_experiment`] with an explicit quiesce timeout (see
/// [`run_sut_experiment_with_timeout`]).
pub fn run_file_sut_experiment_with_timeout(
    mut plan: FileRunPlan,
    registry: &SutRegistry,
    name: &str,
    options: &SutOptions,
    quiesce_timeout: Duration,
) -> Result<SutRunOutcome<FileRunOutcome>, SutRunError> {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
    let mut sut = registry.start(name, options)?;
    plan.level = wire_sut(&mut sut, plan.level, &mut plan.loggers, &clock);
    let tracer = wire_tracer(&mut sut, plan.level, &mut plan.loggers, &clock);
    if let Some(tracer) = &tracer {
        plan.tracer = Some(tracer.clone());
    }
    wire_chaos_supervisor(&mut plan.chaos, sut.as_ref());

    let connector = sut.connector()?;
    let netem = plan.netem.take();
    let run_clock = Arc::clone(&clock);
    let (result, netem_records) = run_with_netem_front(netem, connector, &clock, move |sink| {
        run_file_experiment_with_clock(plan, sink, run_clock).map_err(SutRunError::from)
    });

    let quiesced = sut.quiesce(quiesce_timeout);
    let (report, digest) = sut.shutdown_digest();
    let mut run = match result {
        Ok(run) => run,
        Err(e) => {
            if let Some(tracer) = tracer {
                tracer.stop();
            }
            return Err(e);
        }
    };
    run.log = fold_report(&run.log, &report, clock.now_micros());
    run.log = fold_trace(run.log, tracer);
    run.log = fold_records(run.log, netem_records);
    Ok(SutRunOutcome {
        run,
        report,
        quiesced,
        digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::prelude::*;

    fn registry() -> SutRegistry {
        let mut registry = SutRegistry::new();
        tide_store::sut::register(&mut registry);
        tide_graph::sut::register(&mut registry);
        registry
    }

    fn stream(n: u64) -> GraphStream {
        let mut s: GraphStream = (0..n)
            .map(|i| {
                StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                })
            })
            .collect();
        s.push(StreamEntry::marker("stream-end"));
        s
    }

    #[test]
    fn store_runs_through_registry() {
        let options = SutOptions::new()
            .set("timestamper_cost_us", 0)
            .set("shard_cost_us", 0)
            .set("batch_size", 10);
        let plan = RunPlan::new(stream(500), 200_000.0).at_level(EvaluationLevel::Level2);
        let outcome = run_sut_experiment(plan, &registry(), "tide-store", &options).unwrap();

        assert!(outcome.quiesced);
        assert_eq!(outcome.run.report.graph_events, 500);
        assert_eq!(outcome.report.get("events"), Some(500.0));
        assert_eq!(outcome.report.get("vertices"), Some(500.0));
        // The final report is folded into the merged log...
        assert!(!outcome.run.log.series("tide-store", "events").is_empty());
        // ...and the L1 hub sampler captured the store's native counters.
        assert!(!outcome
            .run
            .log
            .series("tide-store", "store.events")
            .is_empty());
        assert!(outcome.run.log.marker("stream-end").is_some());
        // Level 2 granted: the tracer broke the pipeline latency down by
        // stage — sampled events carry emit→connector and connector→apply
        // records in the merged log (sampling is 1-in-64, so 500 events
        // yield a handful, and event #0 is always sampled).
        assert!(!outcome
            .run
            .log
            .series(TRACE_SOURCE, "emit_to_connector_micros")
            .is_empty());
        assert!(!outcome
            .run
            .log
            .series(TRACE_SOURCE, "connector_to_apply_micros")
            .is_empty());
    }

    #[test]
    fn graph_runs_through_registry() {
        let options = SutOptions::new().set("workers", 2).set("epsilon", 1e-3);
        let plan = RunPlan::new(stream(300), 200_000.0).at_level(EvaluationLevel::Level2);
        let outcome = run_sut_experiment(plan, &registry(), "tide-graph", &options).unwrap();

        assert!(outcome.quiesced);
        assert_eq!(outcome.report.get("events"), Some(300.0));
        assert_eq!(outcome.report.get("vertices"), Some(300.0));
        assert!(!outcome.run.log.series("tide-graph", "events").is_empty());
        // L1 sampling surfaced the per-worker counters.
        assert!(!outcome
            .run
            .log
            .series("tide-graph", "worker-0.ops")
            .is_empty());
        // The engine's worker threads stamped sampled events too.
        assert!(!outcome
            .run
            .log
            .series(TRACE_SOURCE, "connector_to_apply_micros")
            .is_empty());
    }

    #[test]
    fn level0_plan_suppresses_native_metrics() {
        let options = SutOptions::new()
            .set("timestamper_cost_us", 0)
            .set("shard_cost_us", 0);
        let mut plan = RunPlan::new(stream(100), 200_000.0).at_level(EvaluationLevel::Level0);
        plan.sysmon = None;
        let outcome = run_sut_experiment(plan, &registry(), "tide-store", &options).unwrap();
        // No L1 sampler: the only tide-store records are the final report.
        assert!(outcome
            .run
            .log
            .series("tide-store", "store.events")
            .is_empty());
        // No L2 tracer either: in-source tracepoints stay dark.
        assert!(outcome
            .run
            .log
            .records()
            .iter()
            .all(|r| r.source != TRACE_SOURCE));
        assert_eq!(outcome.report.get("events"), Some(100.0));
    }

    /// A stub platform that ingests everything but never drains: its
    /// `quiesce` honours the timeout contract by polling a backlog that
    /// never empties. The real-world shape is the paper's Figure 3d
    /// system, still computing long after the stream ends.
    struct NeverDrains {
        hub: MetricsHub,
        events: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }

    struct NeverDrainsSink {
        events: std::sync::Arc<std::sync::atomic::AtomicU64>,
        counter: gt_metrics::hub::Counter,
    }

    impl gt_replayer::EventSink for NeverDrainsSink {
        fn send(&mut self, entry: &StreamEntry) -> std::io::Result<()> {
            if matches!(entry, StreamEntry::Graph(_)) {
                self.events
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.counter.inc();
            }
            Ok(())
        }
        fn send_batch(&mut self, batch: &[SharedEntry]) -> std::io::Result<()> {
            for entry in batch {
                self.send(entry)?;
            }
            Ok(())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SystemUnderTest for NeverDrains {
        fn name(&self) -> &str {
            "never-drains"
        }
        fn level(&self) -> EvaluationLevel {
            EvaluationLevel::Level1
        }
        fn connector(&mut self) -> std::io::Result<Box<dyn gt_replayer::EventSink + Send>> {
            Ok(Box::new(NeverDrainsSink {
                events: std::sync::Arc::clone(&self.events),
                counter: self.hub.counter("stub.events"),
            }))
        }
        fn hub(&self) -> Option<&MetricsHub> {
            Some(&self.hub)
        }
        fn quiesce(&mut self, timeout: Duration) -> bool {
            // The backlog never empties: poll until the timeout burns off.
            let deadline = std::time::Instant::now() + timeout;
            while std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            false
        }
        fn shutdown(self: Box<Self>) -> SutReport {
            SutReport::new("never-drains").with(
                "events",
                self.events.load(std::sync::atomic::Ordering::Relaxed) as f64,
            )
        }
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    #[test]
    fn quiesce_timeout_yields_false_but_still_folds_the_partial_outcome() {
        let mut registry = SutRegistry::new();
        registry.register("never-drains", |_options| {
            Ok(Box::new(NeverDrains {
                hub: MetricsHub::new(),
                events: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
            }) as Box<dyn SystemUnderTest>)
        });

        let plan = RunPlan::new(stream(300), 300_000.0).at_level(EvaluationLevel::Level1);
        let started = std::time::Instant::now();
        let outcome = run_sut_experiment_with_timeout(
            plan,
            &registry,
            "never-drains",
            &SutOptions::new(),
            Duration::from_millis(50),
        )
        .unwrap();
        // The runner gave up within the (shortened) timeout instead of
        // hanging for the 30 s default...
        assert!(started.elapsed() < DEFAULT_QUIESCE_TIMEOUT);
        assert!(!outcome.quiesced);
        // ...while the partial report and sampled metrics still made it
        // into the outcome.
        assert_eq!(outcome.report.get("events"), Some(300.0));
        assert!(!outcome.run.log.series("never-drains", "events").is_empty());
        assert!(!outcome
            .run
            .log
            .series("never-drains", "stub.events")
            .is_empty());
        assert_eq!(outcome.run.report.graph_events, 300);
    }

    #[test]
    fn chaos_crash_supervisor_is_wired_from_the_platform() {
        use crate::run::ChaosPlan;
        use gt_chaos::FaultSchedule;

        // Kill store shard 1 at event 100, restart it 200 events later:
        // the supervisor must come from the platform itself (the plan
        // leaves it None), and both fault and recovery must be journaled.
        let options = SutOptions::new()
            .set("timestamper_cost_us", 0)
            .set("shard_cost_us", 0)
            .set("supervised", 1);
        let chaos =
            ChaosPlan::new(FaultSchedule::parse("crash@100,worker=1,restart=200", 11).unwrap());
        let journal = chaos.journal.clone();
        let plan = RunPlan::new(stream(600), 300_000.0).with_chaos(chaos);
        let outcome = run_sut_experiment(plan, &registry(), "tide-store", &options).unwrap();

        assert_eq!(
            journal.signature(),
            vec![
                (100, "crash(worker=1, restart=+200) ok".to_owned()),
                (300, "restart(worker=1) ok".to_owned()),
            ]
        );
        assert!(outcome
            .run
            .log
            .records()
            .iter()
            .any(|r| r.source == gt_chaos::CHAOS_SOURCE && r.metric == "fault"));
        assert!(outcome
            .run
            .log
            .records()
            .iter()
            .any(|r| r.source == gt_chaos::CHAOS_SOURCE && r.metric == "recovery"));
        // The platform counted the crash and restart in its final report.
        assert_eq!(outcome.report.get("crashes"), Some(1.0));
        assert_eq!(outcome.report.get("restarts"), Some(1.0));
    }

    // Tentpole: a single-sink run through the netem front. The partition
    // blackholes the replayer's connection for 200 ms mid-run; TCP
    // backpressure rides it out, every event still reaches the platform,
    // and the fault journal is exact — whether the events fired live or
    // were fast-forwarded at stop, the signature is identical.
    #[test]
    fn netem_partition_rides_through_a_single_sink_run() {
        let options = SutOptions::new()
            .set("timestamper_cost_us", 0)
            .set("shard_cost_us", 0);
        let netem =
            NetemPlan::new(gt_netem::NetemSchedule::parse("partition@100ms,dur=200ms", 5).unwrap());
        let journal = netem.journal.clone();
        let plan = RunPlan::new(stream(3_000), 6_000.0).with_netem(netem);
        let outcome = run_sut_experiment(plan, &registry(), "tide-store", &options).unwrap();

        assert_eq!(outcome.run.report.graph_events, 3_000);
        assert_eq!(outcome.report.get("events"), Some(3_000.0));
        assert!(outcome.run.log.marker("stream-end").is_some());
        assert_eq!(
            journal.signature(),
            vec![
                (100, "partition(dur=200ms)@100ms".to_owned()),
                (300, "heal(partition(dur=200ms)@100ms)".to_owned()),
            ]
        );
        // Fault and recovery land in the merged log under the netem
        // source, next to the front's traffic counters.
        let records = outcome.run.log.records();
        assert!(records
            .iter()
            .any(|r| r.source == NETEM_SOURCE && r.metric == "fault"));
        assert!(records
            .iter()
            .any(|r| r.source == NETEM_SOURCE && r.metric == "recovery"));
        assert!(records
            .iter()
            .any(|r| r.source == NETEM_SOURCE && r.metric == "lines_forwarded"));
    }

    // A graceful FIN kill mid-run: the reconnecting sink classifies the
    // drop, dials again, and the bridge picks the fresh connection up —
    // the run completes with the reconnect visible in the log.
    #[test]
    fn netem_fin_kill_reconnects_and_completes() {
        let options = SutOptions::new()
            .set("timestamper_cost_us", 0)
            .set("shard_cost_us", 0);
        let netem =
            NetemPlan::new(gt_netem::NetemSchedule::parse("kill@150ms,mode=fin", 9).unwrap());
        let journal = netem.journal.clone();
        let plan = RunPlan::new(stream(3_000), 6_000.0).with_netem(netem);
        let outcome = run_sut_experiment(plan, &registry(), "tide-store", &options).unwrap();

        // The replayer offered everything; the kill may cost in-flight
        // lines (at-least-once replays the unflushed tail), so the
        // platform sees most-but-possibly-not-all, never zero.
        assert_eq!(outcome.run.report.graph_events, 3_000);
        assert!(outcome.report.get("events").unwrap() > 1_000.0);
        assert_eq!(journal.signature().len(), 1);
        assert!(journal.signature()[0].1.contains("kill(mode=fin)"));
        let records = outcome.run.log.records();
        let reconnects = records
            .iter()
            .find(|r| r.source == NETEM_SOURCE && r.metric == "sink.reconnects")
            .and_then(|r| r.value.as_f64())
            .unwrap();
        assert!(reconnects >= 1.0, "sink reconnected after the kill");
        let bridge_conns = records
            .iter()
            .find(|r| r.source == NETEM_SOURCE && r.metric == "bridge_connections")
            .and_then(|r| r.value.as_f64())
            .unwrap();
        assert!(bridge_conns >= 2.0, "bridge saw the replacement connection");
    }

    #[test]
    fn unknown_name_is_a_sut_error() {
        let plan = RunPlan::new(stream(10), 100_000.0);
        let err = run_sut_experiment(plan, &registry(), "no-such-platform", &SutOptions::new())
            .unwrap_err();
        assert!(matches!(err, SutRunError::Sut(SutError::Unknown { .. })));
        assert!(err.to_string().contains("no-such-platform"));
    }

    #[test]
    fn file_plan_runs_through_registry() {
        let dir = std::env::temp_dir().join("gt-harness-sut-run-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.csv");
        let mut content = String::new();
        for i in 0..2_000 {
            content.push_str(&format!("ADD_VERTEX,{i},\n"));
        }
        content.push_str("MARKER,stream-end,\n");
        std::fs::write(&path, content).unwrap();

        let options = SutOptions::new()
            .set("timestamper_cost_us", 0)
            .set("shard_cost_us", 0);
        let plan = FileRunPlan::new(&path, 400_000.0).at_level(EvaluationLevel::Level2);
        let outcome = run_file_sut_experiment(plan, &registry(), "tide-store", &options).unwrap();

        assert!(outcome.quiesced);
        assert_eq!(outcome.run.report.replay.graph_events, 2_000);
        assert_eq!(outcome.report.get("events"), Some(2_000.0));
        assert!(!outcome.run.log.series("tide-store", "events").is_empty());
        assert!(!outcome
            .run
            .log
            .series("pipeline", "ingress_events")
            .is_empty());
        // The full pipeline is traced end to end on the file path:
        // reader → paced emit → sink write on the replay side, plus
        // connector → apply inside the platform.
        for metric in [
            "reader_to_emit_micros",
            "emit_to_sink_micros",
            "emit_to_connector_micros",
            "connector_to_apply_micros",
        ] {
            assert!(
                !outcome.run.log.series(TRACE_SOURCE, metric).is_empty(),
                "missing trace series {metric}"
            );
        }
        std::fs::remove_file(path).ok();
    }
}

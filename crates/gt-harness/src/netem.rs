//! The netem front for single-sink runs: a TCP hop the fault proxy can
//! break.
//!
//! In-process SUT connectors give the replayer nothing a network fault
//! could touch, so when a plan carries a [`NetemPlan`] the SUT runners
//! insert a real TCP path in front of the connector:
//!
//! ```text
//! replayer → ReconnectingTcpSink → NetemProxy → bridge listener → connector
//! ```
//!
//! The *bridge* is a loopback listener that parses the line protocol back
//! into [`gt_core::prelude::StreamEntry`]s and feeds the platform
//! connector; the [`gt_netem::NetemProxy`] sits between the replayer's
//! sink and the bridge, injecting the scheduled faults. The sink is a
//! [`ReconnectingTcpSink`] seeded from the schedule, so connection kills
//! exercise the real reconnect/backoff path and every disconnect is
//! classified by cause.
//!
//! Corruption faults can turn arbitrary bytes loose on the bridge, so its
//! parse loop never trusts the wire: invalid UTF-8 and malformed lines are
//! counted as `parse_errors` and skipped, never panicked on.

use std::io::{self, BufRead, BufReader};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use gt_core::format::parse_line_ref;
use gt_core::prelude::*;
use gt_metrics::{Clock, MetricRecord};
use gt_netem::{NetemHandle, NetemPlan, NetemProxy, NetemReport, NETEM_SOURCE};
use gt_replayer::{EventSink, ReconnectPolicy, ReconnectingTcpSink};

/// Bridge-side socket read timeout: the granularity at which the bridge
/// notices stop requests while a connection is quiet.
const BRIDGE_READ_TIMEOUT: Duration = Duration::from_millis(50);

/// Accept-poll interval while no connection is live.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Write timeout on the replayer's sink: a blackholed proxy connection
/// surfaces as a timed-out write (and a reconnect round) instead of
/// wedging the replay thread.
const SINK_WRITE_TIMEOUT: Duration = Duration::from_secs(1);

/// Handles to a running netem front; [`NetemFront::finish`] after the
/// replay to stop the proxy, join the bridge, and collect the report.
pub struct NetemFront {
    proxy: NetemHandle,
    bridge: JoinHandle<io::Result<()>>,
    stop: Arc<AtomicBool>,
    lines: Arc<AtomicU64>,
    parse_errors: Arc<AtomicU64>,
    accepted: Arc<AtomicU64>,
}

/// What the netem front saw over a whole run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetemFrontReport {
    /// The fault proxy's traffic counters.
    pub proxy: NetemReport,
    /// Stream entries the bridge parsed and forwarded to the connector.
    pub lines_forwarded: u64,
    /// Wire lines the bridge rejected (corruption faults land here).
    pub parse_errors: u64,
    /// Connections the bridge accepted — 1 plus one per sink reconnect.
    pub bridge_connections: u64,
}

impl NetemFrontReport {
    /// Renders the report as int records under [`NETEM_SOURCE`], ready to
    /// fold into the merged result log.
    pub fn records(&self, t_micros: u64) -> Vec<MetricRecord> {
        let mut out = Vec::new();
        for (metric, value) in [
            ("proxy_connections", self.proxy.connections),
            ("bridge_connections", self.bridge_connections),
            ("lines_forwarded", self.lines_forwarded),
            ("parse_errors", self.parse_errors),
            ("kills_rst", self.proxy.kills_rst),
            ("kills_fin", self.proxy.kills_fin),
            ("bytes_corrupted", self.proxy.bytes_corrupted),
            ("bytes_dropped", self.proxy.bytes_dropped),
        ] {
            out.push(MetricRecord::int(
                t_micros,
                NETEM_SOURCE,
                metric,
                value as i64,
            ));
        }
        out
    }
}

/// Renders a sink's reconnect statistics as records under
/// [`NETEM_SOURCE`] (`sink.reconnects`, `sink.disconnects.<cause>`), so
/// the run log shows how the replayer experienced the injected faults.
pub fn sink_records(sink: &ReconnectingTcpSink, t_micros: u64) -> Vec<MetricRecord> {
    let mut out = vec![MetricRecord::int(
        t_micros,
        NETEM_SOURCE,
        "sink.reconnects",
        sink.reconnects() as i64,
    )];
    for (label, count) in sink.disconnect_counts() {
        if count > 0 {
            out.push(MetricRecord::int(
                t_micros,
                NETEM_SOURCE,
                &format!("sink.disconnects.{label}"),
                count as i64,
            ));
        }
    }
    out
}

/// Starts the full netem front around `connector`: bridge listener, fault
/// proxy, and a reconnecting sink dialing the proxy. The sink's reconnect
/// policy is seeded from the schedule so backoff jitter is as
/// deterministic as the faults themselves.
pub fn start_netem_front(
    netem: &NetemPlan,
    connector: Box<dyn EventSink + Send>,
    clock: Arc<dyn Clock>,
) -> io::Result<(ReconnectingTcpSink, NetemFront)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    listener.set_nonblocking(true)?;
    let bridge_addr = listener.local_addr()?;

    let stop = Arc::new(AtomicBool::new(false));
    let lines = Arc::new(AtomicU64::new(0));
    let parse_errors = Arc::new(AtomicU64::new(0));
    let accepted = Arc::new(AtomicU64::new(0));
    let bridge = {
        let stop = Arc::clone(&stop);
        let lines = Arc::clone(&lines);
        let parse_errors = Arc::clone(&parse_errors);
        let accepted = Arc::clone(&accepted);
        std::thread::Builder::new()
            .name("gt-netem-bridge".into())
            .spawn(move || {
                bridge_loop(listener, connector, &stop, &lines, &parse_errors, &accepted)
            })?
    };

    let proxy = NetemProxy::start(bridge_addr, netem, Arc::clone(&clock))?;
    let sink = ReconnectingTcpSink::connect(proxy.local_addr())?
        .with_policy(ReconnectPolicy::default().with_seed(netem.schedule.seed))
        .with_clock(clock)
        .with_write_timeout(Some(SINK_WRITE_TIMEOUT));

    Ok((
        sink,
        NetemFront {
            proxy,
            bridge,
            stop,
            lines,
            parse_errors,
            accepted,
        },
    ))
}

impl NetemFront {
    /// Stops the proxy (fast-forwarding any unfired schedule events into
    /// the journal), joins the bridge — which drops the connector, letting
    /// the platform see end-of-stream — and returns the front's report.
    ///
    /// Call after the replay has finished and the sink has been dropped:
    /// the sink's close is what lets the in-flight connection drain to
    /// EOF before the stop flag is honored.
    pub fn finish(self) -> io::Result<NetemFrontReport> {
        self.proxy.stop();
        let proxy = self.proxy.join()?;
        self.stop.store(true, Ordering::SeqCst);
        match self.bridge.join() {
            Ok(result) => result?,
            Err(_) => return Err(io::Error::other("netem bridge thread panicked")),
        }
        Ok(NetemFrontReport {
            proxy,
            lines_forwarded: self.lines.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            bridge_connections: self.accepted.load(Ordering::Relaxed),
        })
    }
}

/// Accepts proxy-upstream connections one at a time (the sink holds one
/// connection; a reconnect produces the next) and feeds each through the
/// parse loop until EOF.
fn bridge_loop(
    listener: TcpListener,
    mut connector: Box<dyn EventSink + Send>,
    stop: &AtomicBool,
    lines: &AtomicU64,
    parse_errors: &AtomicU64,
    accepted: &AtomicU64,
) -> io::Result<()> {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                accepted.fetch_add(1, Ordering::Relaxed);
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(Some(BRIDGE_READ_TIMEOUT))?;
                bridge_connection(stream, &mut *connector, stop, lines, parse_errors)?;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    connector.flush()
}

/// Reads one bridge connection to EOF, forwarding parsed entries to the
/// connector. Malformed or non-UTF-8 lines (corruption faults) are
/// counted and skipped; a partial line surviving a read timeout is kept
/// for the next read.
fn bridge_connection(
    stream: TcpStream,
    connector: &mut (dyn EventSink + Send),
    stop: &AtomicBool,
    lines: &AtomicU64,
    parse_errors: &AtomicU64,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                match parse_line_ref(&line) {
                    Ok(Some(entry_ref)) => {
                        let entry = entry_ref.to_entry();
                        let is_marker = matches!(entry, StreamEntry::Marker(_));
                        connector.send(&entry)?;
                        if is_marker {
                            connector.flush()?;
                        }
                        lines.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(None) => {}
                    Err(_) => {
                        parse_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // A valid-UTF-8 partial read stays in `line`; give it a
                // chance to complete unless the run is over.
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Corrupted to non-UTF-8: the delimiter was consumed and
                // the bad bytes discarded — count and move on.
                parse_errors.fetch_add(1, Ordering::Relaxed);
                line.clear();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Connection-level error (reset mid-fault): this connection is
            // done; the sink will reconnect and the next accept resumes.
            Err(_) => break,
        }
    }
    connector.flush()
}

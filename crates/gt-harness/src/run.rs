//! The experiment run loop.
//!
//! One run = one replay of one stream into one system under test, with
//! metric loggers sampling concurrently on a background thread, and all
//! outputs merged into a single chronologically sorted [`ResultLog`]
//! (Figure 2's data path).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use gt_chaos::{ChaosJournal, ChaosSink, FaultSchedule};
use gt_core::prelude::*;
use gt_metrics::hub::Counter;
use gt_metrics::{
    Clock, HubSampler, LogCollector, MetricRecord, MetricsHub, MetricsLogger, ResultLog, WallClock,
};
use gt_replayer::{
    EventSink, ReplayError, ReplayReport, ReplaySession, ReplaySessionConfig, Replayer,
    ReplayerConfig, SessionReport, SinkEventKind,
};
use gt_sut::WorkerSupervisor;
use gt_sysmon::SamplerConfig;
use gt_trace::{Stage, Tracer};

use crate::levels::EvaluationLevel;
use crate::watchdog::{spawn_watchdog, RunStatus, WatchdogConfig, WatchdogHandle};

/// Live chaos for one run: a deterministic fault schedule, the journal it
/// writes to, and (optionally) the platform's crash/restart surface.
///
/// The journal is shared — keep a clone to assert on
/// [`ChaosJournal::signature`] after the run; the run loop also folds
/// [`ChaosJournal::records`] into the merged log under the `chaos` source.
pub struct ChaosPlan {
    /// The faults to inject, pinned to stream positions.
    pub schedule: FaultSchedule,
    /// Where fault/recovery events are journaled.
    pub journal: ChaosJournal,
    /// The platform's crash/restart surface. The SUT runner fills this
    /// from [`gt_sut::SystemUnderTest::supervisor`] when left `None`.
    pub supervisor: Option<Arc<dyn WorkerSupervisor>>,
}

impl ChaosPlan {
    /// A chaos plan for the given schedule with a fresh journal.
    pub fn new(schedule: FaultSchedule) -> Self {
        ChaosPlan {
            schedule,
            journal: ChaosJournal::new(),
            supervisor: None,
        }
    }

    /// Attaches a crash/restart surface (builder style).
    #[must_use]
    pub fn with_supervisor(mut self, supervisor: Arc<dyn WorkerSupervisor>) -> Self {
        self.supervisor = Some(supervisor);
        self
    }
}

/// Everything a single run needs besides the system under test.
pub struct RunPlan {
    /// The stream to replay.
    pub stream: GraphStream,
    /// Replayer configuration (target rate, pause handling).
    pub replayer: ReplayerConfig,
    /// Metric loggers sampled during the run.
    pub loggers: Vec<Box<dyn MetricsLogger>>,
    /// Sampling interval for the logger thread.
    pub sampling_interval: Duration,
    /// The access level granted by the system under test. Level-0
    /// (black-box `/proc` observation) is included in every level, so the
    /// resource monitor runs unless [`Self::sysmon`] is `None`.
    pub level: EvaluationLevel,
    /// Level-0 resource monitor configuration; `None` disables it.
    pub sysmon: Option<SamplerConfig>,
    /// Level-2 event tracer. When set, the replayer stamps a
    /// [`Stage::PacedEmit`] tracepoint for every sampled graph event it
    /// emits, so emit→connector→apply latencies can be broken down per
    /// stage. The caller keeps a clone and calls [`Tracer::stop`] after
    /// the run to collect the matched stage-pair records.
    pub tracer: Option<Tracer>,
    /// Experiment watchdog; `None` runs unguarded. When set, the replayer
    /// carries the watchdog's abort flag and the outcome's
    /// [`RunOutcome::status`] reports whether the run was cut short.
    pub watchdog: Option<WatchdogConfig>,
    /// Live fault injection; `None` runs clean. When set, the sink is
    /// wrapped in a [`ChaosSink`] and the journal's fault/recovery events
    /// land in the merged log under the `chaos` source.
    pub chaos: Option<ChaosPlan>,
    /// Multi-client traffic layer; `None` replays single-sink. When set,
    /// the SUT runner ([`crate::load::run_load_sut_experiment`]) fans the
    /// stream across `load.total_connections()` concurrent TCP clients
    /// instead of the single replayer sink, and the plan's `replayer`
    /// pacing is ignored (each client paces its own arrival schedule).
    pub load: Option<gt_load::LoadPlan>,
    /// Deterministic network fault injection; `None` runs on a clean
    /// path. Honored by the SUT runners: single-sink runs get a TCP hop
    /// through a [`gt_netem::NetemProxy`] (see [`crate::netem`]), and
    /// load runs route every client through the proxy. The bare
    /// [`run_experiment`] has no TCP path and ignores this field.
    pub netem: Option<gt_netem::NetemPlan>,
}

impl RunPlan {
    /// A plan with the given stream and target rate, no loggers, at
    /// Level 0 with the default resource monitor and no tracer.
    pub fn new(stream: GraphStream, target_rate: f64) -> Self {
        RunPlan {
            stream,
            replayer: ReplayerConfig {
                target_rate,
                ..Default::default()
            },
            loggers: Vec::new(),
            sampling_interval: Duration::from_millis(100),
            level: EvaluationLevel::Level0,
            sysmon: Some(SamplerConfig::default()),
            tracer: None,
            watchdog: None,
            chaos: None,
            load: None,
            netem: None,
        }
    }

    /// Adds a logger (builder style).
    #[must_use]
    pub fn with_logger(mut self, logger: Box<dyn MetricsLogger>) -> Self {
        self.loggers.push(logger);
        self
    }

    /// Attaches a multi-client load plan (builder style).
    #[must_use]
    pub fn with_load(mut self, load: gt_load::LoadPlan) -> Self {
        self.load = Some(load);
        self
    }

    /// Sets the evaluation level (builder style).
    #[must_use]
    pub fn at_level(mut self, level: EvaluationLevel) -> Self {
        self.level = level;
        self
    }

    /// Replaces the Level-0 monitor configuration (builder style).
    #[must_use]
    pub fn with_sysmon(mut self, config: SamplerConfig) -> Self {
        self.sysmon = Some(config);
        self
    }

    /// Attaches a Level-2 event tracer (builder style).
    #[must_use]
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = Some(tracer.clone());
        self
    }

    /// Arms the experiment watchdog (builder style).
    #[must_use]
    pub fn with_watchdog(mut self, config: WatchdogConfig) -> Self {
        self.watchdog = Some(config);
        self
    }

    /// Arms live chaos injection (builder style).
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosPlan) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Arms deterministic network fault injection (builder style).
    #[must_use]
    pub fn with_netem(mut self, netem: gt_netem::NetemPlan) -> Self {
        self.netem = Some(netem);
        self
    }
}

/// Spawns the Level-0 monitor when the plan's level grants black-box
/// process access and a sampler is configured.
pub(crate) fn spawn_sysmon(
    level: EvaluationLevel,
    config: &Option<SamplerConfig>,
    clock: &Arc<dyn Clock>,
    hub: Option<&MetricsHub>,
) -> Option<gt_sysmon::SysmonHandle> {
    if !level.includes(EvaluationLevel::Level0) {
        return None;
    }
    let config = config.as_ref()?;
    Some(gt_sysmon::spawn(config.clone(), Arc::clone(clock), hub))
}

/// Stops the monitor and converts its outcome into records: the sampled
/// resource series, plus one text record when observation failed (so a
/// log from a non-Linux host says *why* the series is empty).
pub(crate) fn sysmon_records(
    handle: Option<gt_sysmon::SysmonHandle>,
    config: &Option<SamplerConfig>,
    clock: &Arc<dyn Clock>,
) -> Vec<MetricRecord> {
    let Some(handle) = handle else {
        return Vec::new();
    };
    let outcome = handle.stop();
    let mut records = outcome.records;
    if let Some(error) = outcome.error {
        let source = config
            .as_ref()
            .map_or_else(|| "sysmon".to_owned(), |c| c.source.clone());
        records.push(MetricRecord::text(
            clock.now_micros(),
            &source,
            "error",
            error.to_string(),
        ));
    }
    records
}

/// The outputs of one run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Streaming metrics from the replayer.
    pub report: ReplayReport,
    /// The merged result log: logger samples plus replayer marker
    /// records (source `replayer`, metric `marker`).
    pub log: ResultLog,
    /// Whether the run completed or the watchdog aborted it. An abort is
    /// also recorded in the log (source `watchdog`, metric `abort`).
    pub status: RunStatus,
}

/// Spawns the background thread that drives all loggers until `stop` is
/// raised, finishing with one final sample so the log covers the run end.
pub(crate) fn spawn_sampler(
    mut loggers: Vec<Box<dyn MetricsLogger>>,
    interval: Duration,
    stop: Arc<AtomicBool>,
) -> JoinHandle<Vec<MetricRecord>> {
    std::thread::Builder::new()
        .name("gt-harness-sampler".into())
        .spawn(move || {
            let mut records = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                for logger in &mut loggers {
                    records.extend(logger.sample());
                }
                std::thread::sleep(interval);
            }
            for logger in &mut loggers {
                records.extend(logger.sample());
            }
            records
        })
        .expect("spawn sampler")
}

/// Joins the sampler thread, degrading gracefully: a panicked logger
/// must not poison the whole run, so the lost series is replaced by one
/// typed degradation record (source `harness`) explaining the gap.
pub(crate) fn join_sampler(
    sampler: JoinHandle<Vec<MetricRecord>>,
    clock: &Arc<dyn Clock>,
) -> Vec<MetricRecord> {
    sampler.join().unwrap_or_else(|_| {
        vec![MetricRecord::text(
            clock.now_micros(),
            "harness",
            "degradation",
            "sampler thread panicked; sampled metric series truncated",
        )]
    })
}

/// Stops the watchdog (if armed) and converts its verdict into a run
/// status plus the abort record for the merged log.
pub(crate) fn finish_watchdog(
    watchdog: Option<WatchdogHandle>,
    clock: &Arc<dyn Clock>,
) -> (RunStatus, Vec<MetricRecord>) {
    let Some(reason) = watchdog.and_then(WatchdogHandle::finish) else {
        return (RunStatus::Completed, Vec::new());
    };
    let record = MetricRecord::text(clock.now_micros(), "watchdog", "abort", reason.to_string());
    (RunStatus::Aborted(reason), vec![record])
}

/// Replayer marker and ingress-rate records for the merged log.
fn replay_records(report: &ReplayReport) -> Vec<MetricRecord> {
    let mut records: Vec<MetricRecord> = report
        .markers
        .iter()
        .map(|(name, t)| MetricRecord::text(*t, "replayer", "marker", name.clone()))
        .collect();
    records.extend(report.rate_series.iter().map(|(t, rate)| {
        MetricRecord::float((*t * 1e6) as u64, "replayer", "ingress_rate", *rate)
    }));
    records
}

/// Executes one run: replays `plan.stream` into `sink` while sampling all
/// loggers every `plan.sampling_interval` on a background thread.
///
/// The shared run clock is created here; marker timestamps and logger
/// sample timestamps are directly comparable.
pub fn run_experiment<S: EventSink>(plan: RunPlan, sink: &mut S) -> std::io::Result<RunOutcome> {
    run_experiment_with_clock(plan, sink, Arc::new(WallClock::start()))
}

/// [`run_experiment`] against a caller-supplied clock, so records produced
/// *outside* the run (e.g. a system under test's final report) can share
/// its timeline. This is the primitive the SUT runner
/// ([`crate::sut::run_sut_experiment`]) builds on.
pub fn run_experiment_with_clock<S: EventSink + ?Sized>(
    plan: RunPlan,
    sink: &mut S,
    clock: Arc<dyn Clock>,
) -> std::io::Result<RunOutcome> {
    let stop = Arc::new(AtomicBool::new(false));
    let sysmon = spawn_sysmon(plan.level, &plan.sysmon, &clock, None);
    let sampler = spawn_sampler(plan.loggers, plan.sampling_interval, Arc::clone(&stop));

    let abort = Arc::new(AtomicBool::new(false));
    let progress = Counter::default();
    let watchdog = plan
        .watchdog
        .clone()
        .map(|config| spawn_watchdog(config, progress.clone(), Arc::clone(&abort)));

    let mut replayer = Replayer::new(plan.replayer).with_clock(Arc::clone(&clock));
    if watchdog.is_some() {
        replayer = replayer
            .with_abort_flag(Arc::clone(&abort))
            .with_ingress_counter(progress);
    }
    if let Some(tracer) = &plan.tracer {
        replayer = replayer.with_trace_probe(tracer.probe(Stage::PacedEmit));
    }
    let result = match &plan.chaos {
        Some(chaos) => {
            let mut chaos_sink = ChaosSink::new(
                &mut *sink,
                &chaos.schedule,
                chaos.journal.clone(),
                Arc::clone(&clock),
            );
            if let Some(supervisor) = &chaos.supervisor {
                chaos_sink = chaos_sink.with_supervisor(Arc::clone(supervisor));
            }
            replayer.replay_stream(&plan.stream, &mut chaos_sink)
        }
        None => replayer.replay_stream(&plan.stream, sink),
    };

    stop.store(true, Ordering::Relaxed);
    let sampled = join_sampler(sampler, &clock);
    let resource = sysmon_records(sysmon, &plan.sysmon, &clock);
    let (status, abort_records) = finish_watchdog(watchdog, &clock);
    let report = result?;

    let mut collector = LogCollector::new();
    collector
        .add_records(sampled)
        .add_records(resource)
        .add_records(replay_records(&report))
        .add_records(abort_records);
    if let Some(chaos) = &plan.chaos {
        collector.add_records(chaos.journal.records());
    }
    Ok(RunOutcome {
        report,
        log: collector.collect(),
        status,
    })
}

/// A run driven by the file-backed streaming pipeline instead of an
/// in-memory stream: the stream file is parsed on a dedicated reader
/// thread and never fully materialized.
pub struct FileRunPlan {
    /// Path of the stream file to replay.
    pub path: PathBuf,
    /// Pipeline configuration (pacing, channel capacity).
    pub session: ReplaySessionConfig,
    /// Metric loggers sampled during the run (the pipeline's own stage
    /// metrics are sampled automatically).
    pub loggers: Vec<Box<dyn MetricsLogger>>,
    /// Sampling interval for the logger thread.
    pub sampling_interval: Duration,
    /// The access level granted by the system under test. Level-0
    /// (black-box `/proc` observation) is included in every level, so the
    /// resource monitor runs unless [`Self::sysmon`] is `None`.
    pub level: EvaluationLevel,
    /// Level-0 resource monitor configuration; `None` disables it.
    pub sysmon: Option<SamplerConfig>,
    /// Level-2 event tracer. When set, the pipeline stamps
    /// [`Stage::ReaderDequeue`], [`Stage::PacedEmit`] and
    /// [`Stage::SinkWrite`] tracepoints for sampled graph events, so the
    /// replay pipeline's internal latencies can be broken down per stage.
    pub tracer: Option<Tracer>,
    /// Experiment watchdog; `None` runs unguarded. When set, the session
    /// carries the watchdog's abort flag and the outcome's
    /// [`FileRunOutcome::status`] reports whether the run was cut short.
    pub watchdog: Option<WatchdogConfig>,
    /// Live fault injection; `None` runs clean. When set, the sink is
    /// wrapped in a [`ChaosSink`] and the journal's fault/recovery events
    /// land in the merged log under the `chaos` source.
    pub chaos: Option<ChaosPlan>,
    /// Multi-client traffic layer; `None` replays single-sink. The load
    /// path materializes the stream file first (substream partitioning
    /// needs the whole stream), so a file plan with load behaves like the
    /// in-memory path — see [`crate::load::run_load_file_sut_experiment`].
    pub load: Option<gt_load::LoadPlan>,
    /// Deterministic network fault injection; `None` runs on a clean
    /// path. Honored by the SUT runners (see [`RunPlan::netem`]).
    pub netem: Option<gt_netem::NetemPlan>,
}

impl FileRunPlan {
    /// A plan replaying `path` at `target_rate`, no extra loggers, at
    /// Level 0 with the default resource monitor and no tracer.
    pub fn new(path: impl Into<PathBuf>, target_rate: f64) -> Self {
        FileRunPlan {
            path: path.into(),
            session: ReplaySessionConfig {
                replayer: ReplayerConfig {
                    target_rate,
                    ..Default::default()
                },
                ..Default::default()
            },
            loggers: Vec::new(),
            sampling_interval: Duration::from_millis(100),
            level: EvaluationLevel::Level0,
            sysmon: Some(SamplerConfig::default()),
            tracer: None,
            watchdog: None,
            chaos: None,
            load: None,
            netem: None,
        }
    }

    /// Adds a logger (builder style).
    #[must_use]
    pub fn with_logger(mut self, logger: Box<dyn MetricsLogger>) -> Self {
        self.loggers.push(logger);
        self
    }

    /// Attaches a multi-client load plan (builder style).
    #[must_use]
    pub fn with_load(mut self, load: gt_load::LoadPlan) -> Self {
        self.load = Some(load);
        self
    }

    /// Arms deterministic network fault injection (builder style).
    #[must_use]
    pub fn with_netem(mut self, netem: gt_netem::NetemPlan) -> Self {
        self.netem = Some(netem);
        self
    }

    /// Sets the reader→emitter channel capacity (builder style).
    #[must_use]
    pub fn with_buffer(mut self, entries: usize) -> Self {
        self.session.buffer = entries;
        self
    }

    /// Sets the evaluation level (builder style).
    #[must_use]
    pub fn at_level(mut self, level: EvaluationLevel) -> Self {
        self.level = level;
        self
    }

    /// Replaces the Level-0 monitor configuration (builder style).
    #[must_use]
    pub fn with_sysmon(mut self, config: SamplerConfig) -> Self {
        self.sysmon = Some(config);
        self
    }

    /// Attaches a Level-2 event tracer (builder style).
    #[must_use]
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = Some(tracer.clone());
        self
    }

    /// Arms the experiment watchdog (builder style).
    #[must_use]
    pub fn with_watchdog(mut self, config: WatchdogConfig) -> Self {
        self.watchdog = Some(config);
        self
    }

    /// Arms live chaos injection (builder style).
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosPlan) -> Self {
        self.chaos = Some(chaos);
        self
    }
}

/// The outputs of one file-backed run.
#[derive(Debug)]
pub struct FileRunOutcome {
    /// Streaming metrics plus per-stage pipeline health.
    pub report: SessionReport,
    /// The merged result log: logger samples, pipeline stage samples,
    /// replayer markers, ingress-rate series, and sink
    /// disconnect/reconnect events.
    pub log: ResultLog,
    /// Whether the run completed or the watchdog aborted it. An abort is
    /// also recorded in the log (source `watchdog`, metric `abort`).
    pub status: RunStatus,
}

/// Executes one file-backed run through [`ReplaySession`]: parses and
/// paces `plan.path` into `sink` while a background thread samples the
/// pipeline's stage metrics (queue depth, stalls, emit latency) and any
/// extra loggers. Sink disconnect/reconnect events land in the merged log
/// under source `sink`.
pub fn run_file_experiment<S: EventSink>(
    plan: FileRunPlan,
    sink: &mut S,
) -> Result<FileRunOutcome, ReplayError> {
    run_file_experiment_with_clock(plan, sink, Arc::new(WallClock::start()))
}

/// [`run_file_experiment`] against a caller-supplied clock — the
/// file-backed primitive of the SUT runner
/// ([`crate::sut::run_file_sut_experiment`]).
pub fn run_file_experiment_with_clock<S: EventSink + ?Sized>(
    plan: FileRunPlan,
    sink: &mut S,
    clock: Arc<dyn Clock>,
) -> Result<FileRunOutcome, ReplayError> {
    let stop = Arc::new(AtomicBool::new(false));

    let hub = MetricsHub::new();
    let sysmon = spawn_sysmon(plan.level, &plan.sysmon, &clock, Some(&hub));
    let mut loggers = plan.loggers;
    loggers.push(Box::new(HubSampler::new(
        hub.clone(),
        Arc::clone(&clock),
        "pipeline",
    )));
    let sampler = spawn_sampler(loggers, plan.sampling_interval, Arc::clone(&stop));

    let abort = Arc::new(AtomicBool::new(false));
    // The session's replayer counts emitted graph events into the
    // pipeline hub; the watchdog watches the very same counter.
    let watchdog = plan
        .watchdog
        .clone()
        .map(|config| spawn_watchdog(config, hub.counter("ingress_events"), Arc::clone(&abort)));

    let mut session = ReplaySession::new(plan.session)
        .with_clock(Arc::clone(&clock))
        .with_hub(hub);
    if watchdog.is_some() {
        session = session.with_abort_flag(Arc::clone(&abort));
    }
    if let Some(tracer) = &plan.tracer {
        session = session.with_tracer(tracer);
    }
    let result = match &plan.chaos {
        Some(chaos) => {
            let mut chaos_sink = ChaosSink::new(
                &mut *sink,
                &chaos.schedule,
                chaos.journal.clone(),
                Arc::clone(&clock),
            );
            if let Some(supervisor) = &chaos.supervisor {
                chaos_sink = chaos_sink.with_supervisor(Arc::clone(supervisor));
            }
            session.run(&plan.path, &mut chaos_sink)
        }
        None => session.run(&plan.path, sink),
    };

    stop.store(true, Ordering::Relaxed);
    let sampled = join_sampler(sampler, &clock);
    let resource = sysmon_records(sysmon, &plan.sysmon, &clock);
    let (status, abort_records) = finish_watchdog(watchdog, &clock);
    let report = result?;

    let sink_records: Vec<MetricRecord> = report
        .sink_events
        .iter()
        .map(|e| {
            let metric = match e.kind {
                SinkEventKind::Disconnected { .. } => "disconnect",
                SinkEventKind::Reconnected { .. } => "reconnect",
            };
            MetricRecord::text(e.t_micros, "sink", metric, e.detail.clone())
        })
        .collect();

    let mut collector = LogCollector::new();
    collector
        .add_records(sampled)
        .add_records(resource)
        .add_records(replay_records(&report.replay))
        .add_records(sink_records)
        .add_records(abort_records);
    if let Some(chaos) = &plan.chaos {
        collector.add_records(chaos.journal.records());
    }
    Ok(FileRunOutcome {
        report,
        log: collector.collect(),
        status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_metrics::{GaugeSampler, ManualClock};
    use gt_replayer::CollectSink;

    fn stream(n: u64) -> GraphStream {
        let mut s: GraphStream = (0..n)
            .map(|i| {
                StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                })
            })
            .collect();
        s.push(StreamEntry::marker("stream-end"));
        s
    }

    #[test]
    fn run_produces_merged_log() {
        let clock: Arc<dyn Clock> = Arc::new(ManualClock::new());
        let probe_clock = Arc::clone(&clock);
        let plan = RunPlan::new(stream(2_000), 50_000.0).with_logger(Box::new(GaugeSampler::new(
            probe_clock,
            "probe",
            "answer",
            || Some(42.0),
        )));
        let mut sink = CollectSink::new();
        let outcome = run_experiment(plan, &mut sink).unwrap();

        assert_eq!(outcome.report.graph_events, 2_000);
        assert!(outcome.log.marker("stream-end").is_some());
        // The probe sampled at least twice (startup + final flush).
        assert!(outcome.log.series("probe", "answer").len() >= 2);
        // The log is sorted.
        let ts: Vec<u64> = outcome.log.records().iter().map(|r| r.t_micros).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
        // Ingress rate records exist.
        assert!(!outcome.log.series("replayer", "ingress_rate").is_empty());
    }

    #[test]
    fn file_run_merges_pipeline_metrics() {
        let dir = std::env::temp_dir().join("gt-harness-file-run-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.csv");
        let mut content = String::new();
        for i in 0..3_000 {
            content.push_str(&format!("ADD_VERTEX,{i},\n"));
        }
        content.push_str("MARKER,stream-end,\n");
        std::fs::write(&path, content).unwrap();

        let plan = FileRunPlan::new(&path, 100_000.0).with_buffer(256);
        let mut sink = CollectSink::new();
        let outcome = run_file_experiment(plan, &mut sink).unwrap();

        assert_eq!(outcome.report.replay.graph_events, 3_000);
        assert_eq!(outcome.report.entries_read, 3_001);
        assert_eq!(outcome.report.emit_latency.count, 3_000);
        assert!(outcome.log.marker("stream-end").is_some());
        assert!(!outcome.log.series("replayer", "ingress_rate").is_empty());
        // The auto-registered pipeline sampler recorded stage metrics.
        assert!(!outcome.log.series("pipeline", "ingress_events").is_empty());
        assert!(!outcome.log.series("pipeline", "queue_depth").is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn file_run_surfaces_parse_errors() {
        let dir = std::env::temp_dir().join("gt-harness-file-run-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.csv");
        std::fs::write(&path, "ADD_VERTEX,1,\nBOGUS\n").unwrap();
        let plan = FileRunPlan::new(&path, 100_000.0);
        let mut sink = CollectSink::new();
        assert!(matches!(
            run_file_experiment(plan, &mut sink),
            Err(ReplayError::Source(_))
        ));
        std::fs::remove_file(path).ok();
    }

    /// True when the live `/proc` interface the monitor needs exists
    /// (Linux). Elsewhere the graceful-degradation assertions apply.
    fn proc_available() -> bool {
        std::path::Path::new("/proc/self/stat").exists()
    }

    #[test]
    fn level0_run_produces_resource_series() {
        let plan = RunPlan::new(stream(2_000), 50_000.0)
            .with_sysmon(SamplerConfig::default().every(Duration::from_millis(5)));
        assert_eq!(plan.level, EvaluationLevel::Level0);
        let mut sink = CollectSink::new();
        let outcome = run_experiment(plan, &mut sink).unwrap();
        if proc_available() {
            assert!(!outcome.log.series("sysmon", "rss_bytes").is_empty());
            // cpu_percent needs two ticks; the 5 ms cadence plus the
            // final flush tick guarantees them.
            assert!(!outcome.log.series("sysmon", "cpu_percent").is_empty());
        } else {
            // Off-Linux: empty series plus one typed error record.
            assert!(outcome.log.series("sysmon", "rss_bytes").is_empty());
            assert!(outcome
                .log
                .records()
                .iter()
                .any(|r| r.source == "sysmon" && r.metric == "error"));
        }
    }

    #[test]
    fn file_run_at_level0_produces_cpu_and_rss_series() {
        let dir = std::env::temp_dir().join("gt-harness-file-run-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sysmon-stream.csv");
        let mut content = String::new();
        for i in 0..5_000 {
            content.push_str(&format!("ADD_VERTEX,{i},\n"));
        }
        std::fs::write(&path, content).unwrap();

        let plan = FileRunPlan::new(&path, 100_000.0)
            .at_level(EvaluationLevel::Level0)
            .with_sysmon(SamplerConfig::default().every(Duration::from_millis(5)));
        let mut sink = CollectSink::new();
        let outcome = run_file_experiment(plan, &mut sink).unwrap();
        if proc_available() {
            assert!(!outcome.log.series("sysmon", "cpu_percent").is_empty());
            assert!(!outcome.log.series("sysmon", "rss_bytes").is_empty());
        } else {
            assert!(outcome
                .log
                .records()
                .iter()
                .any(|r| r.source == "sysmon" && r.metric == "error"));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sysmon_none_disables_the_monitor() {
        let mut plan = RunPlan::new(stream(200), 100_000.0);
        plan.sysmon = None;
        let mut sink = CollectSink::new();
        let outcome = run_experiment(plan, &mut sink).unwrap();
        assert!(outcome.log.records().iter().all(|r| r.source != "sysmon"));
    }

    #[test]
    fn marker_timestamps_are_monotone() {
        let mut s = stream(100);
        s.push(StreamEntry::marker("late"));
        let plan = RunPlan::new(s, 100_000.0);
        let mut sink = CollectSink::new();
        let outcome = run_experiment(plan, &mut sink).unwrap();
        let markers = &outcome.report.markers;
        assert_eq!(markers.len(), 2);
        assert!(markers[0].1 <= markers[1].1);
    }

    #[test]
    fn unguarded_run_completes() {
        let plan = RunPlan::new(stream(100), 200_000.0);
        let mut sink = CollectSink::new();
        let outcome = run_experiment(plan, &mut sink).unwrap();
        assert_eq!(outcome.status, crate::watchdog::RunStatus::Completed);
        assert!(!outcome.report.aborted);
        assert!(outcome.log.records().iter().all(|r| r.source != "watchdog"));
    }

    #[test]
    fn watchdog_aborts_a_stalled_run_and_salvages_the_log() {
        use crate::watchdog::{AbortReason, RunStatus};
        // A scripted 60 s pause stalls ingress; the watchdog must cut the
        // run short in well under a second and the partial log must still
        // carry everything delivered before the stall.
        let mut s: GraphStream = (0..50)
            .map(|i| {
                StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                })
            })
            .collect();
        s.push(StreamEntry::pause(Duration::from_secs(60)));
        for i in 50..100 {
            s.push(StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(i),
                state: State::empty(),
            }));
        }
        let mut plan = RunPlan::new(s, 1_000_000.0).with_watchdog(
            crate::watchdog::WatchdogConfig::stall_after(Duration::from_millis(100))
                .polling_every(Duration::from_millis(5)),
        );
        plan.sysmon = None;

        let started = std::time::Instant::now();
        let mut sink = CollectSink::new();
        let outcome = run_experiment(plan, &mut sink).unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "watchdog failed to cut the pause short"
        );
        assert!(outcome.report.aborted);
        match &outcome.status {
            RunStatus::Aborted(AbortReason::Stalled {
                events_delivered, ..
            }) => assert_eq!(*events_delivered, 50),
            other => panic!("expected a stall abort, got {other:?}"),
        }
        // Everything before the stall was salvaged...
        assert_eq!(outcome.report.graph_events, 50);
        // ...and the abort itself is a typed record in the merged log.
        assert!(outcome
            .log
            .records()
            .iter()
            .any(|r| r.source == "watchdog" && r.metric == "abort"));
    }

    #[test]
    fn watchdog_deadline_cuts_a_slow_run_short() {
        use crate::watchdog::{AbortReason, RunStatus};
        // 10k events at 1k/s would take 10 s; the 150 ms deadline fires
        // even though ingress keeps progressing the whole time.
        let mut plan = RunPlan::new(stream(10_000), 1_000.0).with_watchdog(
            crate::watchdog::WatchdogConfig::stall_after(Duration::from_secs(60))
                .with_deadline(Duration::from_millis(150))
                .polling_every(Duration::from_millis(5)),
        );
        plan.sysmon = None;
        let started = std::time::Instant::now();
        let mut sink = CollectSink::new();
        let outcome = run_experiment(plan, &mut sink).unwrap();
        assert!(started.elapsed() < Duration::from_secs(10));
        assert!(outcome.report.aborted);
        assert!(matches!(
            outcome.status,
            RunStatus::Aborted(AbortReason::DeadlineExceeded { .. })
        ));
        assert!(outcome.report.graph_events < 10_000);
    }

    #[test]
    fn chaos_run_folds_fault_and_recovery_markers_into_the_log() {
        use gt_chaos::FaultSchedule;
        let schedule = FaultSchedule::parse("disconnect@10,lose=5; stall@30,ms=1", 7).unwrap();
        let chaos = ChaosPlan::new(schedule);
        let journal = chaos.journal.clone();
        let mut plan = RunPlan::new(stream(100), 500_000.0).with_chaos(chaos);
        plan.sysmon = None;
        let mut sink = CollectSink::new();
        let outcome = run_experiment(plan, &mut sink).unwrap();
        // The replayer emitted all 100; 5 were lost downstream of it.
        assert_eq!(outcome.report.graph_events, 100);
        let delivered = sink
            .entries
            .iter()
            .filter(|e| matches!(e, StreamEntry::Graph(_)))
            .count();
        assert_eq!(delivered, 95);
        // Fault and recovery markers sit in the merged log under `chaos`.
        let faults: Vec<_> = outcome
            .log
            .records()
            .iter()
            .filter(|r| r.source == gt_chaos::CHAOS_SOURCE && r.metric == "fault")
            .collect();
        assert_eq!(faults.len(), 2);
        assert!(outcome
            .log
            .records()
            .iter()
            .any(|r| r.source == gt_chaos::CHAOS_SOURCE && r.metric == "recovery"));
        // The journal clone the caller kept sees the same events.
        assert_eq!(journal.signature().len(), 4);
    }

    /// A logger that panics on its very first sample — the regression
    /// shape for the old `sampler.join().expect("sampler panicked")`.
    struct PanickingLogger;

    impl MetricsLogger for PanickingLogger {
        fn sample(&mut self) -> Vec<MetricRecord> {
            panic!("deliberate test panic in logger");
        }
        fn source(&self) -> &str {
            "panicking"
        }
    }

    #[test]
    fn panicking_logger_degrades_instead_of_poisoning_the_run() {
        let mut plan = RunPlan::new(stream(200), 200_000.0).with_logger(Box::new(PanickingLogger));
        plan.sysmon = None;
        let mut sink = CollectSink::new();
        let outcome = run_experiment(plan, &mut sink).unwrap();
        // The run itself is unharmed...
        assert_eq!(outcome.report.graph_events, 200);
        assert_eq!(outcome.status, crate::watchdog::RunStatus::Completed);
        // ...and the lost series is explained by a typed degradation
        // record instead of a harness panic.
        assert!(outcome.log.records().iter().any(|r| r.source == "harness"
            && r.metric == "degradation"
            && r.value.to_string().contains("sampler")));
    }

    #[test]
    fn file_run_watchdog_and_chaos_share_the_pipeline() {
        use gt_chaos::FaultSchedule;
        let dir = std::env::temp_dir().join("gt-harness-file-run-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chaos-stream.csv");
        let mut content = String::new();
        for i in 0..2_000 {
            content.push_str(&format!("ADD_VERTEX,{i},\n"));
        }
        std::fs::write(&path, content).unwrap();

        let chaos = ChaosPlan::new(FaultSchedule::parse("disconnect@100,lose=50", 1).unwrap());
        let plan = FileRunPlan::new(&path, 400_000.0)
            .with_watchdog(crate::watchdog::WatchdogConfig::default())
            .with_chaos(chaos);
        let mut sink = CollectSink::new();
        let outcome = run_file_experiment(plan, &mut sink).unwrap();
        assert_eq!(outcome.status, crate::watchdog::RunStatus::Completed);
        assert_eq!(outcome.report.replay.graph_events, 2_000);
        let delivered = sink
            .entries
            .iter()
            .filter(|e| matches!(e, StreamEntry::Graph(_)))
            .count();
        assert_eq!(delivered, 1_950);
        assert!(outcome
            .log
            .records()
            .iter()
            .any(|r| r.source == gt_chaos::CHAOS_SOURCE && r.metric == "recovery"));
        std::fs::remove_file(path).ok();
    }
}

//! The experiment run loop.
//!
//! One run = one replay of one stream into one system under test, with
//! metric loggers sampling concurrently on a background thread, and all
//! outputs merged into a single chronologically sorted [`ResultLog`]
//! (Figure 2's data path).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gt_core::prelude::*;
use gt_metrics::{Clock, LogCollector, MetricRecord, MetricsLogger, ResultLog, WallClock};
use gt_replayer::{EventSink, ReplayReport, Replayer, ReplayerConfig};

/// Everything a single run needs besides the system under test.
pub struct RunPlan {
    /// The stream to replay.
    pub stream: GraphStream,
    /// Replayer configuration (target rate, pause handling).
    pub replayer: ReplayerConfig,
    /// Metric loggers sampled during the run.
    pub loggers: Vec<Box<dyn MetricsLogger>>,
    /// Sampling interval for the logger thread.
    pub sampling_interval: Duration,
}

impl RunPlan {
    /// A plan with the given stream and target rate, no loggers.
    pub fn new(stream: GraphStream, target_rate: f64) -> Self {
        RunPlan {
            stream,
            replayer: ReplayerConfig {
                target_rate,
                ..Default::default()
            },
            loggers: Vec::new(),
            sampling_interval: Duration::from_millis(100),
        }
    }

    /// Adds a logger (builder style).
    #[must_use]
    pub fn with_logger(mut self, logger: Box<dyn MetricsLogger>) -> Self {
        self.loggers.push(logger);
        self
    }
}

/// The outputs of one run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Streaming metrics from the replayer.
    pub report: ReplayReport,
    /// The merged result log: logger samples plus replayer marker
    /// records (source `replayer`, metric `marker`).
    pub log: ResultLog,
}

/// Executes one run: replays `plan.stream` into `sink` while sampling all
/// loggers every `plan.sampling_interval` on a background thread.
///
/// The shared run clock is created here; marker timestamps and logger
/// sample timestamps are directly comparable.
pub fn run_experiment<S: EventSink>(plan: RunPlan, sink: &mut S) -> std::io::Result<RunOutcome> {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
    let stop = Arc::new(AtomicBool::new(false));

    // Sampling thread: drives all loggers until told to stop.
    let sampler = {
        let stop = Arc::clone(&stop);
        let interval = plan.sampling_interval;
        let mut loggers = plan.loggers;
        std::thread::Builder::new()
            .name("gt-harness-sampler".into())
            .spawn(move || {
                let mut records = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    for logger in &mut loggers {
                        records.extend(logger.sample());
                    }
                    std::thread::sleep(interval);
                }
                // One final sample so the log covers the run end.
                for logger in &mut loggers {
                    records.extend(logger.sample());
                }
                records
            })
            .expect("spawn sampler")
    };

    let replayer = Replayer::new(plan.replayer).with_clock(Arc::clone(&clock));
    let result = replayer.replay_stream(&plan.stream, sink);

    stop.store(true, Ordering::Relaxed);
    let sampled = sampler.join().expect("sampler panicked");
    let report = result?;

    let marker_records: Vec<MetricRecord> = report
        .markers
        .iter()
        .map(|(name, t)| MetricRecord::text(*t, "replayer", "marker", name.clone()))
        .collect();
    let rate_records: Vec<MetricRecord> = report
        .rate_series
        .iter()
        .map(|(t, rate)| MetricRecord::float((*t * 1e6) as u64, "replayer", "ingress_rate", *rate))
        .collect();

    let mut collector = LogCollector::new();
    collector
        .add_records(sampled)
        .add_records(marker_records)
        .add_records(rate_records);
    Ok(RunOutcome {
        report,
        log: collector.collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_metrics::{GaugeSampler, ManualClock};
    use gt_replayer::CollectSink;

    fn stream(n: u64) -> GraphStream {
        let mut s: GraphStream = (0..n)
            .map(|i| {
                StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                })
            })
            .collect();
        s.push(StreamEntry::marker("stream-end"));
        s
    }

    #[test]
    fn run_produces_merged_log() {
        let clock: Arc<dyn Clock> = Arc::new(ManualClock::new());
        let probe_clock = Arc::clone(&clock);
        let plan = RunPlan::new(stream(2_000), 50_000.0)
            .with_logger(Box::new(GaugeSampler::new(
                probe_clock,
                "probe",
                "answer",
                || Some(42.0),
            )));
        let mut sink = CollectSink::new();
        let outcome = run_experiment(plan, &mut sink).unwrap();

        assert_eq!(outcome.report.graph_events, 2_000);
        assert!(outcome.log.marker("stream-end").is_some());
        // The probe sampled at least twice (startup + final flush).
        assert!(outcome.log.series("probe", "answer").len() >= 2);
        // The log is sorted.
        let ts: Vec<u64> = outcome.log.records().iter().map(|r| r.t_micros).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
        // Ingress rate records exist.
        assert!(!outcome.log.series("replayer", "ingress_rate").is_empty());
    }

    #[test]
    fn marker_timestamps_are_monotone() {
        let mut s = stream(100);
        s.push(StreamEntry::marker("late"));
        let plan = RunPlan::new(s, 100_000.0);
        let mut sink = CollectSink::new();
        let outcome = run_experiment(plan, &mut sink).unwrap();
        let markers = &outcome.report.markers;
        assert_eq!(markers.len(), 2);
        assert!(markers[0].1 <= markers[1].1);
    }
}

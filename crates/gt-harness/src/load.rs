//! The load-mode SUT runner: one multi-client traffic run against a
//! registry-selected platform.
//!
//! Where [`crate::sut::run_sut_experiment`] replays the stream through a
//! *single* platform connector, this runner hands the stream to the
//! `gt-load` layer: a seeded partitioner splits it into one substream per
//! connection, hundreds of concurrent TCP clients pace their own arrival
//! schedules (open, closed, or partial-open loop per class), and the
//! multi-connection listener feeds one platform connector per accepted
//! connection — markers stay totally ordered across all of them.
//!
//! The client reports are folded into the merged [`ResultLog`] under the
//! [`LOAD_SOURCE`] source using the conventions `gt-analysis::load`
//! consumes:
//!
//! * `marker` text records — the listener's totally-ordered marker log;
//! * `sojourn_us.<class>` — one float record per graph event, stamped at
//!   write completion, valued at completion minus *scheduled* arrival
//!   (the coordinated-omission-free latency);
//! * `offered_rate.<class>` / `achieved_rate.<class>` — per-second
//!   bucketed rate series (zero-filled inside the span, so a stall shows
//!   as an achieved-rate dip rather than a gap);
//! * run summary floats (`offered_total`, `sent_total`, `achieved_ratio`,
//!   `marker_violations`, `parse_errors`, `connections`).
//!
//! Load mode runs at up to Level 1 (native hub sampling); the Level-2
//! tracer and chaos/watchdog plan fields are single-sink concerns and are
//! ignored here.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gt_load::{run_load, ConnectorFactory, LoadOutcome, LoadPlan};
use gt_metrics::{Clock, LogCollector, MetricRecord, ResultLog, WallClock};
use gt_netem::NETEM_SOURCE;
use gt_sut::{StateDigest, SutOptions, SutRegistry, SutReport, SystemUnderTest};

use crate::run::{join_sampler, spawn_sampler, spawn_sysmon, sysmon_records, FileRunPlan, RunPlan};
use crate::sut::{fold_report, wire_sut, SutRunError, DEFAULT_QUIESCE_TIMEOUT};

/// The result-log source under which load records are filed. Matches
/// `gt_analysis::LOAD_SOURCE`.
pub const LOAD_SOURCE: &str = "load";

/// The outputs of one load-mode run.
#[derive(Debug)]
pub struct LoadSutRunOutcome {
    /// Both sides' raw reports: per-client counts/sojourns and the
    /// listener's marker log.
    pub load: LoadOutcome,
    /// The merged result log: sampled series, resource monitor, the
    /// platform's final report, and the load records described in the
    /// module docs.
    pub log: ResultLog,
    /// The platform's final report (also folded into the log).
    pub report: SutReport,
    /// Whether the platform drained within the quiesce timeout.
    pub quiesced: bool,
    /// The platform's final-state digest (only with the `digest=1`
    /// option). Note: multi-connection runs merge substreams in a
    /// nondeterministic order, so digests from load mode are only
    /// comparable across runs for order-insensitive streams (e.g.
    /// add-only).
    pub digest: Option<StateDigest>,
}

/// Runs `plan` (which must carry a [`LoadPlan`]) against the platform
/// registered under `name`, with the default quiesce timeout.
pub fn run_load_sut_experiment(
    plan: RunPlan,
    registry: &SutRegistry,
    name: &str,
    options: &SutOptions,
) -> Result<LoadSutRunOutcome, SutRunError> {
    run_load_sut_experiment_with_timeout(plan, registry, name, options, DEFAULT_QUIESCE_TIMEOUT)
}

/// [`run_load_sut_experiment`] with an explicit quiesce timeout.
///
/// Wiring: start the platform, clamp the level and register the L1 hub
/// sampler, spawn the Level-0 resource monitor and the sampling thread,
/// then run the load layer with a connector factory that builds one
/// platform connector per accepted connection (plus one control connector
/// for marker forwarding). Afterwards the platform drains and shuts down,
/// and everything is merged into one chronologically sorted log.
pub fn run_load_sut_experiment_with_timeout(
    mut plan: RunPlan,
    registry: &SutRegistry,
    name: &str,
    options: &SutOptions,
    quiesce_timeout: Duration,
) -> Result<LoadSutRunOutcome, SutRunError> {
    let mut load_plan = plan.load.take().ok_or_else(|| {
        SutRunError::from(io::Error::new(
            io::ErrorKind::InvalidInput,
            "run plan has no load layer (RunPlan::with_load)",
        ))
    })?;
    // A netem plan on the run plan routes the whole client fleet through
    // the fault proxy (the load runner stands it up); one already set on
    // the load plan itself wins.
    if load_plan.netem.is_none() {
        load_plan.netem = plan.netem.take();
    }

    let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
    let mut sut = registry.start(name, options)?;
    plan.level = wire_sut(&mut sut, plan.level, &mut plan.loggers, &clock);

    let stop = Arc::new(AtomicBool::new(false));
    let sysmon = spawn_sysmon(plan.level, &plan.sysmon, &clock, None);
    let sampler = spawn_sampler(plan.loggers, plan.sampling_interval, Arc::clone(&stop));

    // The connector factory runs on the listener's accept thread, so the
    // platform moves into a shared cell for the duration of the run and
    // is taken back out for quiesce/shutdown once all connections are
    // joined (run_load joins the listener before returning).
    let sut_cell: Arc<Mutex<Option<Box<dyn SystemUnderTest>>>> = Arc::new(Mutex::new(Some(sut)));
    let factory_cell = Arc::clone(&sut_cell);
    let factory: ConnectorFactory = Box::new(move || {
        factory_cell
            .lock()
            .expect("sut cell lock")
            .as_mut()
            .expect("platform present during run")
            .connector()
    });
    let result = run_load(&plan.stream, &load_plan, factory, Arc::clone(&clock));

    stop.store(true, Ordering::Relaxed);
    let sampled = join_sampler(sampler, &clock);
    let resource = sysmon_records(sysmon, &plan.sysmon, &clock);

    let mut sut = sut_cell
        .lock()
        .expect("sut cell lock")
        .take()
        .expect("platform present after run");
    let quiesced = sut.quiesce(quiesce_timeout);
    let (report, digest) = sut.shutdown_digest();
    let load = result?;

    let mut collector = LogCollector::new();
    collector
        .add_records(sampled)
        .add_records(resource)
        .add_records(load_records(&load, &load_plan, clock.now_micros()));
    let log = fold_report(&collector.collect(), &report, clock.now_micros());
    Ok(LoadSutRunOutcome {
        load,
        log,
        report,
        quiesced,
        digest,
    })
}

/// The file-backed variant: materializes the stream file (substream
/// partitioning needs the whole stream up front, unlike the single-sink
/// streaming pipeline) and delegates to [`run_load_sut_experiment`].
pub fn run_load_file_sut_experiment(
    plan: FileRunPlan,
    registry: &SutRegistry,
    name: &str,
    options: &SutOptions,
) -> Result<LoadSutRunOutcome, SutRunError> {
    let stream = gt_core::GraphStream::read_from_file(&plan.path).map_err(|e| {
        SutRunError::from(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    })?;
    let mut run_plan = RunPlan::new(stream, plan.session.replayer.target_rate);
    run_plan.loggers = plan.loggers;
    run_plan.sampling_interval = plan.sampling_interval;
    run_plan.level = plan.level;
    run_plan.sysmon = plan.sysmon;
    run_plan.load = plan.load;
    run_plan.netem = plan.netem;
    run_load_sut_experiment(run_plan, registry, name, options)
}

/// One-second rate buckets over `times`, zero-filled across the span so
/// stall windows read as dips rather than gaps. Records land at bucket
/// midpoints.
fn rate_records(times: &[u64], metric: &str) -> Vec<MetricRecord> {
    let (Some(&min), Some(&max)) = (times.iter().min(), times.iter().max()) else {
        return Vec::new();
    };
    let (first, last) = (min / 1_000_000, max / 1_000_000);
    let mut counts = vec![0u64; (last - first + 1) as usize];
    for &t in times {
        counts[(t / 1_000_000 - first) as usize] += 1;
    }
    counts
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let midpoint = (first + i as u64) * 1_000_000 + 500_000;
            MetricRecord::float(midpoint, LOAD_SOURCE, metric, n as f64)
        })
        .collect()
}

/// Folds a finished load run into result-log records (see module docs
/// for the conventions).
pub fn load_records(load: &LoadOutcome, plan: &LoadPlan, t_end: u64) -> Vec<MetricRecord> {
    let mut records: Vec<MetricRecord> = load
        .listener
        .markers
        .iter()
        .map(|(name, t)| MetricRecord::text(*t, LOAD_SOURCE, "marker", name.clone()))
        .collect();
    for class in plan.class_names() {
        let mut arrivals: Vec<u64> = Vec::new();
        let mut completions: Vec<u64> = Vec::new();
        for client in load.class_reports(class) {
            arrivals.extend(
                client
                    .schedule_micros
                    .iter()
                    .map(|&offset| client.started_micros + offset),
            );
            for &(t, sojourn) in &client.sojourn {
                completions.push(t);
                records.push(MetricRecord::float(
                    t,
                    LOAD_SOURCE,
                    &format!("sojourn_us.{class}"),
                    sojourn as f64,
                ));
            }
        }
        records.extend(rate_records(&arrivals, &format!("offered_rate.{class}")));
        records.extend(rate_records(
            &completions,
            &format!("achieved_rate.{class}"),
        ));
    }
    for (metric, value) in [
        ("offered_total", load.offered() as f64),
        ("sent_total", load.sent() as f64),
        ("achieved_ratio", load.achieved_ratio()),
        ("connections", load.listener.connections as f64),
        ("marker_violations", load.listener.marker_violations as f64),
        ("parse_errors", load.listener.parse_errors as f64),
        ("connections_lost", load.listener.connections_lost as f64),
        ("reader_stalls", load.listener.reader_stalls as f64),
        ("clients_failed", load.client_failures.len() as f64),
    ] {
        records.push(MetricRecord::float(t_end, LOAD_SOURCE, metric, value));
    }
    // Typed degradations — barrier excusals, stalled readers, killed
    // clients — as text records at the time they were observed.
    for (description, t) in &load.listener.degradations {
        records.push(MetricRecord::text(
            *t,
            LOAD_SOURCE,
            "degradation",
            description.clone(),
        ));
    }
    for (conn, error) in &load.client_failures {
        records.push(MetricRecord::text(
            t_end,
            LOAD_SOURCE,
            "degradation",
            format!("client {conn} failed: {error}"),
        ));
    }
    // Netem: the fault journal under its own source (so recovery-window
    // analysis can correlate faults against rate dips) plus the proxy's
    // traffic counters.
    if let Some(netem) = &plan.netem {
        records.extend(netem.journal.records_with_source(NETEM_SOURCE));
    }
    if let Some(report) = &load.netem {
        for (metric, value) in [
            ("proxy_connections", report.connections),
            ("kills_rst", report.kills_rst),
            ("kills_fin", report.kills_fin),
            ("bytes_corrupted", report.bytes_corrupted),
            ("bytes_dropped", report.bytes_dropped),
            ("dial_failures", report.dial_failures),
        ] {
            records.push(MetricRecord::int(t_end, NETEM_SOURCE, metric, value as i64));
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::prelude::*;
    use gt_load::LoopModel;
    use gt_sut::SutRegistry;

    fn registry() -> SutRegistry {
        let mut registry = SutRegistry::new();
        tide_store::sut::register(&mut registry);
        tide_graph::sut::register(&mut registry);
        registry
    }

    fn stream(n: u64) -> GraphStream {
        let mut s: GraphStream = (0..n)
            .map(|i| {
                StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::empty(),
                })
            })
            .collect();
        s.push(StreamEntry::marker("stream-end"));
        s
    }

    #[test]
    fn load_run_fans_out_and_folds_the_log() {
        let options = SutOptions::new()
            .set("timestamper_cost_us", 0)
            .set("shard_cost_us", 0)
            .set("batch_size", 10);
        let mut plan = RunPlan::new(stream(800), 0.0).with_load(LoadPlan::single(
            8,
            160_000.0,
            LoopModel::Open,
            3,
        ));
        plan.sysmon = None;
        let outcome = run_load_sut_experiment(plan, &registry(), "tide-store", &options).unwrap();

        assert!(outcome.quiesced);
        // Every event reached the platform exactly once across 8 clients.
        assert_eq!(outcome.report.get("events"), Some(800.0));
        assert_eq!(outcome.load.offered(), 800);
        assert_eq!(outcome.load.listener.connections, 8);
        assert_eq!(outcome.load.listener.marker_violations, 0);
        // The marker crossed the multi-connection boundary exactly once.
        assert!(outcome.log.marker("stream-end").is_some());
        // The analysis-facing series are present and consistent.
        let oa = gt_analysis::offered_vs_achieved(&outcome.log, "main").unwrap();
        assert!(oa.ratio() > 0.5, "achieved/offered = {}", oa.ratio());
        let tail = gt_analysis::sojourn_quantiles(&outcome.log, "main").unwrap();
        assert_eq!(tail.n, 800);
        // The platform's final report is folded in too.
        assert!(!outcome.log.series("tide-store", "events").is_empty());
        // Summary floats give CI something cheap to assert on.
        assert!(!outcome.log.series(LOAD_SOURCE, "achieved_ratio").is_empty());
    }

    // Tentpole, load side: partition 2 of 6 client connections mid-run,
    // heal, and require the run to complete with the fault journaled
    // under the netem source and the fault visible in the merged log.
    #[test]
    fn load_run_through_netem_partition_completes_and_journals() {
        let options = SutOptions::new()
            .set("timestamper_cost_us", 0)
            .set("shard_cost_us", 0)
            .set("batch_size", 10);
        let netem = gt_netem::NetemPlan::new(
            gt_netem::NetemSchedule::parse("partition@200ms,dur=300ms,conns=0-1", 17).unwrap(),
        );
        let journal = netem.journal.clone();
        let mut plan = RunPlan::new(stream(1_200), 0.0)
            .with_load(LoadPlan::single(6, 1_200.0, LoopModel::Open, 3))
            .with_netem(netem);
        plan.sysmon = None;
        let outcome = run_load_sut_experiment(plan, &registry(), "tide-store", &options).unwrap();

        // TCP backpressure rides the partition out: every event arrives.
        assert_eq!(outcome.report.get("events"), Some(1_200.0));
        assert_eq!(outcome.load.listener.marker_violations, 0);
        assert!(outcome.load.client_failures.is_empty());
        let netem_report = outcome.load.netem.as_ref().expect("netem report");
        assert_eq!(netem_report.connections, 6);
        assert_eq!(
            journal.signature(),
            vec![
                (200, "partition(dur=300ms, conns=0-1)@200ms".to_owned()),
                (
                    500,
                    "heal(partition(dur=300ms, conns=0-1)@200ms, conns=0-1)".to_owned()
                ),
            ]
        );
        let records = outcome.log.records();
        assert!(records
            .iter()
            .any(|r| r.source == NETEM_SOURCE && r.metric == "fault"));
        assert!(records
            .iter()
            .any(|r| r.source == NETEM_SOURCE && r.metric == "recovery"));
    }

    #[test]
    fn load_run_without_plan_is_rejected() {
        let plan = RunPlan::new(stream(10), 1000.0);
        let err = run_load_sut_experiment(plan, &registry(), "tide-store", &SutOptions::new())
            .unwrap_err();
        assert!(err.to_string().contains("no load layer"));
    }

    #[test]
    fn file_load_run_materializes_the_stream() {
        let dir = std::env::temp_dir().join("gt-harness-load-run-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.csv");
        let mut content = String::new();
        for i in 0..400 {
            content.push_str(&format!("ADD_VERTEX,{i},\n"));
        }
        content.push_str("MARKER,stream-end,\n");
        std::fs::write(&path, content).unwrap();

        let options = SutOptions::new().set("workers", 2);
        let mut plan = FileRunPlan::new(&path, 0.0);
        plan.load = Some(LoadPlan::single(4, 80_000.0, LoopModel::Closed, 7));
        plan.sysmon = None;
        let outcome =
            run_load_file_sut_experiment(plan, &registry(), "tide-graph", &options).unwrap();
        assert_eq!(outcome.report.get("events"), Some(400.0));
        assert_eq!(outcome.load.listener.connections, 4);
        assert!(outcome.log.marker("stream-end").is_some());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rate_records_zero_fill_the_span() {
        // Arrivals in seconds 0 and 3 only: the bucketed series must carry
        // explicit zeros for seconds 1 and 2 (a dip, not a gap).
        let times = [100_000, 200_000, 3_200_000];
        let records = rate_records(&times, "offered_rate.x");
        let values: Vec<f64> = records.iter().map(|r| r.value.as_f64().unwrap()).collect();
        assert_eq!(values, vec![2.0, 0.0, 0.0, 1.0]);
    }
}

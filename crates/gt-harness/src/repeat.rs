//! Repetition and statistically rigorous comparison (§4.5).

use gt_analysis::summary::{compare_ci95, Comparison, Summary};
use gt_analysis::ConfidenceInterval;

/// The aggregate of repeated runs of one configuration.
#[derive(Debug, Clone)]
pub struct RepeatOutcome {
    /// Summary of the collected metric across repetitions.
    pub summary: Summary,
    /// CI95 of the metric, if computable.
    pub ci95: Option<ConfidenceInterval>,
    /// Whether the repetition count meets the paper's n ≥ 30 rule.
    pub meets_n30: bool,
}

/// Runs `reps` repetitions of a measurement closure (repetition index in,
/// metric out) and aggregates.
pub fn repeat_runs(reps: u32, mut run: impl FnMut(u32) -> f64) -> RepeatOutcome {
    let mut summary = Summary::new();
    for i in 0..reps {
        summary.add(run(i));
    }
    RepeatOutcome {
        ci95: summary.ci95(),
        meets_n30: summary.meets_n30(),
        summary,
    }
}

/// Compares two repeated configurations by CI95 overlap; `None` when
/// either side lacks enough repetitions for an interval.
pub fn compare_metric(a: &RepeatOutcome, b: &RepeatOutcome) -> Option<Comparison> {
    compare_ci95(&a.summary, &b.summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_runs() {
        let outcome = repeat_runs(30, |i| 100.0 + (i % 5) as f64);
        assert!(outcome.meets_n30);
        assert_eq!(outcome.summary.count(), 30);
        let ci = outcome.ci95.unwrap();
        assert!(ci.lo < outcome.summary.mean() && outcome.summary.mean() < ci.hi);
    }

    #[test]
    fn detects_significant_difference() {
        let fast = repeat_runs(30, |i| 1_000.0 + (i % 3) as f64);
        let slow = repeat_runs(30, |i| 100.0 + (i % 3) as f64);
        assert_eq!(compare_metric(&fast, &slow), Some(Comparison::AGreater));
    }

    #[test]
    fn overlapping_runs_are_not_significant() {
        let a = repeat_runs(30, |i| 10.0 + (i % 4) as f64);
        let b = repeat_runs(30, |i| 10.2 + (i % 4) as f64);
        assert_eq!(compare_metric(&a, &b), Some(Comparison::NotSignificant));
    }

    #[test]
    fn too_few_reps_yield_none() {
        let one = repeat_runs(1, |_| 5.0);
        assert!(one.ci95.is_none());
        assert!(!one.meets_n30);
        let other = repeat_runs(30, |_| 5.0);
        assert_eq!(compare_metric(&one, &other), None);
    }
}

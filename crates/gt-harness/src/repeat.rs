//! Repetition and statistically rigorous comparison (§4.5).

use gt_analysis::summary::{compare_ci95, CiComparison, Summary};
use gt_analysis::ConfidenceInterval;

use crate::watchdog::RunStatus;

/// The aggregate of repeated runs of one configuration.
#[derive(Debug, Clone)]
pub struct RepeatOutcome {
    /// Summary of the collected metric across *clean* repetitions —
    /// aborted/salvaged runs never contribute samples.
    pub summary: Summary,
    /// CI95 of the metric, if computable.
    pub ci95: Option<ConfidenceInterval>,
    /// Whether the clean-repetition count meets the paper's n ≥ 30 rule.
    pub meets_n30: bool,
    /// Repetitions excluded from the summary because the watchdog cut
    /// them short (their salvaged partial metrics would poison the mean).
    pub excluded: u32,
}

/// Runs `reps` repetitions of a measurement closure (repetition index in,
/// metric out) and aggregates. Every repetition counts as clean; use
/// [`repeat_status_runs`] when a run can be aborted.
pub fn repeat_runs(reps: u32, mut run: impl FnMut(u32) -> f64) -> RepeatOutcome {
    repeat_status_runs(reps, |i| (run(i), RunStatus::Completed))
}

/// Runs `reps` repetitions of a measurement closure that also reports how
/// each run ended. Only [`RunStatus::Completed`] repetitions enter the
/// summary; aborted (watchdog-salvaged) runs are counted in
/// [`RepeatOutcome::excluded`] instead — a partial run's throughput is
/// not a sample of the configuration's throughput, and averaging it in
/// silently deflates the mean.
pub fn repeat_status_runs(
    reps: u32,
    mut run: impl FnMut(u32) -> (f64, RunStatus),
) -> RepeatOutcome {
    let mut summary = Summary::new();
    let mut excluded = 0u32;
    for i in 0..reps {
        let (metric, status) = run(i);
        match status {
            RunStatus::Completed => summary.add(metric),
            RunStatus::Aborted(_) => excluded += 1,
        }
    }
    RepeatOutcome {
        ci95: summary.ci95(),
        meets_n30: summary.meets_n30(),
        summary,
        excluded,
    }
}

/// Compares two repeated configurations by CI95 overlap; `None` when
/// either side lacks enough repetitions for an interval (or carries a
/// degenerate one). The verdict arrives with its
/// [`CiComparison::meets_n30`] caveat.
pub fn compare_metric(a: &RepeatOutcome, b: &RepeatOutcome) -> Option<CiComparison> {
    compare_ci95(&a.summary, &b.summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watchdog::AbortReason;
    use gt_analysis::Comparison;
    use std::time::Duration;

    #[test]
    fn aggregates_runs() {
        let outcome = repeat_runs(30, |i| 100.0 + (i % 5) as f64);
        assert!(outcome.meets_n30);
        assert_eq!(outcome.summary.count(), 30);
        assert_eq!(outcome.excluded, 0);
        let ci = outcome.ci95.unwrap();
        assert!(ci.lo < outcome.summary.mean() && outcome.summary.mean() < ci.hi);
    }

    #[test]
    fn detects_significant_difference() {
        let fast = repeat_runs(30, |i| 1_000.0 + (i % 3) as f64);
        let slow = repeat_runs(30, |i| 100.0 + (i % 3) as f64);
        let cmp = compare_metric(&fast, &slow).unwrap();
        assert_eq!(cmp.verdict, Comparison::AGreater);
        assert!(cmp.meets_n30);
    }

    #[test]
    fn overlapping_runs_are_not_significant() {
        let a = repeat_runs(30, |i| 10.0 + (i % 4) as f64);
        let b = repeat_runs(30, |i| 10.2 + (i % 4) as f64);
        assert_eq!(
            compare_metric(&a, &b).map(|c| c.verdict),
            Some(Comparison::NotSignificant)
        );
    }

    #[test]
    fn too_few_reps_yield_none() {
        let one = repeat_runs(1, |_| 5.0);
        assert!(one.ci95.is_none());
        assert!(!one.meets_n30);
        let other = repeat_runs(30, |_| 5.0);
        assert_eq!(compare_metric(&one, &other), None);
    }

    fn aborted() -> RunStatus {
        RunStatus::Aborted(AbortReason::Stalled {
            stalled_for: Duration::from_secs(1),
            events_delivered: 10,
        })
    }

    #[test]
    fn aborted_repetitions_are_excluded_from_the_summary() {
        // Regression: repeat_runs used to average a salvaged partial
        // run's metric in as if it were a clean sample. A watchdog-cut
        // run reporting ~0 throughput must not deflate the mean.
        let outcome = repeat_status_runs(10, |i| {
            if i % 3 == 2 {
                (0.0, aborted()) // salvaged partial: near-zero throughput
            } else {
                (100.0, RunStatus::Completed)
            }
        });
        assert_eq!(outcome.excluded, 3);
        assert_eq!(outcome.summary.count(), 7);
        assert_eq!(outcome.summary.mean(), 100.0);
        assert_eq!(outcome.summary.min(), Some(100.0));
    }

    #[test]
    fn meets_n30_counts_clean_runs_only() {
        // 30 repetitions launched, 5 aborted: only 25 clean samples, so
        // the n >= 30 rule is NOT met even though reps == 30.
        let outcome = repeat_status_runs(30, |i| {
            if i < 5 {
                (0.0, aborted())
            } else {
                (50.0 + (i % 2) as f64, RunStatus::Completed)
            }
        });
        assert_eq!(outcome.excluded, 5);
        assert_eq!(outcome.summary.count(), 25);
        assert!(!outcome.meets_n30);
    }

    #[test]
    fn all_aborted_yields_empty_summary() {
        let outcome = repeat_status_runs(3, |_| (42.0, aborted()));
        assert_eq!(outcome.excluded, 3);
        assert_eq!(outcome.summary.count(), 0);
        assert!(outcome.ci95.is_none());
    }
}

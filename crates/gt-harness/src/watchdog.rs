//! The experiment watchdog: stall detection and hard deadlines.
//!
//! A chaos experiment deliberately breaks the system mid-run — and a
//! broken platform must not be able to hang the harness. The watchdog is
//! a small background thread that watches *ingress progress* (graph
//! events delivered by the replayer) and wall time, and raises a shared
//! abort flag when either
//!
//! * no progress has been made for [`WatchdogConfig::stall_timeout`], or
//! * the run has exceeded its hard [`WatchdogConfig::deadline`].
//!
//! The replayer polls that flag between entries (and inside scripted
//! pauses), stops early, and reports `aborted = true`; the run loop then
//! salvages everything sampled so far into the merged [`ResultLog`] and
//! surfaces a typed [`RunStatus`] instead of hanging forever.
//!
//! The abort is *cooperative*: it interrupts a replay that is slow or
//! paused, not a sink thread blocked forever inside a single `send`.
//! That second failure mode is prevented one layer down — the platform
//! channels fail fast when their consumer dies (crash containment), so a
//! killed worker surfaces as lost events, never as a wedged sender. The
//! watchdog is the defense-in-depth layer above it.
//!
//! [`ResultLog`]: gt_metrics::ResultLog

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gt_metrics::hub::Counter;

/// When the watchdog pulls the plug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Abort when the ingress counter has not moved for this long.
    /// Scripted pauses count as stalls too — raise this above the longest
    /// expected pause when replaying streams with `PAUSE` phases.
    pub stall_timeout: Duration,
    /// Hard wall-clock bound on the whole replay; `None` means stall
    /// detection only.
    pub deadline: Option<Duration>,
    /// How often the watchdog wakes up to check. Detection latency is at
    /// most one interval past the configured bounds.
    pub poll_interval: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_timeout: Duration::from_secs(10),
            deadline: None,
            poll_interval: Duration::from_millis(20),
        }
    }
}

impl WatchdogConfig {
    /// Stall detection with the given timeout, no deadline.
    pub fn stall_after(timeout: Duration) -> Self {
        WatchdogConfig {
            stall_timeout: timeout,
            ..Default::default()
        }
    }

    /// Adds a hard wall-clock deadline (builder style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the poll interval (builder style).
    #[must_use]
    pub fn polling_every(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }
}

/// Why the watchdog aborted a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortReason {
    /// Ingress made no progress for longer than the stall timeout.
    Stalled {
        /// How long the ingress counter sat still before the abort.
        stalled_for: Duration,
        /// Graph events delivered up to the stall.
        events_delivered: u64,
    },
    /// The run exceeded its hard wall-clock deadline.
    DeadlineExceeded {
        /// The configured deadline.
        deadline: Duration,
        /// Graph events delivered when the deadline hit.
        events_delivered: u64,
    },
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::Stalled {
                stalled_for,
                events_delivered,
            } => write!(
                f,
                "stalled: no ingress progress for {} ms ({} events delivered)",
                stalled_for.as_millis(),
                events_delivered
            ),
            AbortReason::DeadlineExceeded {
                deadline,
                events_delivered,
            } => write!(
                f,
                "deadline exceeded: {} ms elapsed ({} events delivered)",
                deadline.as_millis(),
                events_delivered
            ),
        }
    }
}

/// How a run ended: to completion, or cut short by the watchdog. Either
/// way the outcome carries a (possibly partial) report and merged log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// The stream ran to its end.
    Completed,
    /// The watchdog aborted the run for the given reason.
    Aborted(AbortReason),
}

impl RunStatus {
    /// Whether the watchdog cut the run short.
    pub fn is_aborted(&self) -> bool {
        matches!(self, RunStatus::Aborted(_))
    }
}

impl std::fmt::Display for RunStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunStatus::Completed => write!(f, "completed"),
            RunStatus::Aborted(reason) => write!(f, "aborted ({reason})"),
        }
    }
}

/// A running watchdog thread.
pub(crate) struct WatchdogHandle {
    stop: Arc<AtomicBool>,
    join: JoinHandle<Option<AbortReason>>,
}

impl WatchdogHandle {
    /// Signals the thread and collects its verdict. `None` = the run
    /// finished on its own (or the watchdog thread itself died — a dead
    /// watchdog must not turn a healthy run into an aborted one).
    pub(crate) fn finish(self) -> Option<AbortReason> {
        self.stop.store(true, Ordering::Relaxed);
        self.join.join().unwrap_or(None)
    }
}

/// Spawns the watchdog. It polls `progress` every
/// [`WatchdogConfig::poll_interval`]; on a stall or a blown deadline it
/// raises `abort` (observed by the replayer) and exits with the reason.
///
/// The watchdog measures real elapsed time with [`Instant`] rather than
/// the run clock: a stall is a wall-clock phenomenon, and the run clock
/// may itself be a frozen [`gt_metrics::ManualClock`] in tests.
pub(crate) fn spawn_watchdog(
    config: WatchdogConfig,
    progress: Counter,
    abort: Arc<AtomicBool>,
) -> WatchdogHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("gt-harness-watchdog".into())
        .spawn(move || {
            let started = Instant::now();
            let mut last_value = progress.get();
            let mut last_change = Instant::now();
            loop {
                std::thread::sleep(config.poll_interval);
                if stop_flag.load(Ordering::Relaxed) {
                    return None;
                }
                let value = progress.get();
                if value != last_value {
                    last_value = value;
                    last_change = Instant::now();
                } else if last_change.elapsed() >= config.stall_timeout {
                    abort.store(true, Ordering::Relaxed);
                    return Some(AbortReason::Stalled {
                        stalled_for: last_change.elapsed(),
                        events_delivered: value,
                    });
                }
                if let Some(deadline) = config.deadline {
                    if started.elapsed() >= deadline {
                        abort.store(true, Ordering::Relaxed);
                        return Some(AbortReason::DeadlineExceeded {
                            deadline,
                            events_delivered: value,
                        });
                    }
                }
            }
        })
        .expect("spawn gt-harness-watchdog thread");
    WatchdogHandle { stop, join }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(stall_ms: u64) -> WatchdogConfig {
        WatchdogConfig::stall_after(Duration::from_millis(stall_ms))
            .polling_every(Duration::from_millis(2))
    }

    #[test]
    fn quiet_watchdog_reports_nothing() {
        let progress = Counter::default();
        let abort = Arc::new(AtomicBool::new(false));
        let handle = spawn_watchdog(fast(10_000), progress.clone(), Arc::clone(&abort));
        progress.add(5);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(handle.finish(), None);
        assert!(!abort.load(Ordering::Relaxed));
    }

    #[test]
    fn stall_raises_the_abort_flag() {
        let progress = Counter::default();
        let abort = Arc::new(AtomicBool::new(false));
        let handle = spawn_watchdog(fast(20), progress.clone(), Arc::clone(&abort));
        progress.add(7);
        // No further progress: the stall timeout must fire.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !abort.load(Ordering::Relaxed) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(abort.load(Ordering::Relaxed), "stall never detected");
        match handle.finish() {
            Some(AbortReason::Stalled {
                events_delivered, ..
            }) => assert_eq!(events_delivered, 7),
            other => panic!("expected a stall, got {other:?}"),
        }
    }

    #[test]
    fn steady_progress_defeats_the_stall_timer() {
        let progress = Counter::default();
        let abort = Arc::new(AtomicBool::new(false));
        let handle = spawn_watchdog(fast(40), progress.clone(), Arc::clone(&abort));
        for _ in 0..10 {
            progress.inc();
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!abort.load(Ordering::Relaxed));
        assert_eq!(handle.finish(), None);
    }

    #[test]
    fn deadline_fires_even_while_progressing() {
        let progress = Counter::default();
        let abort = Arc::new(AtomicBool::new(false));
        let config = fast(10_000).with_deadline(Duration::from_millis(20));
        let handle = spawn_watchdog(config, progress.clone(), Arc::clone(&abort));
        let deadline = Instant::now() + Duration::from_secs(5);
        while !abort.load(Ordering::Relaxed) && Instant::now() < deadline {
            progress.inc();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(abort.load(Ordering::Relaxed), "deadline never fired");
        assert!(matches!(
            handle.finish(),
            Some(AbortReason::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn status_display_is_reportable() {
        let status = RunStatus::Aborted(AbortReason::Stalled {
            stalled_for: Duration::from_millis(1500),
            events_delivered: 42,
        });
        assert!(status.is_aborted());
        assert_eq!(
            status.to_string(),
            "aborted (stalled: no ingress progress for 1500 ms (42 events delivered))"
        );
        assert_eq!(RunStatus::Completed.to_string(), "completed");
    }
}

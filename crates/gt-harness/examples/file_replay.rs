//! File-backed replay pipeline demo: generates a stream file, replays it
//! through the decoupled reader→pacer pipeline into an in-process TCP
//! consumer, and prints the per-stage metrics and the merged result log's
//! shape.
//!
//! ```text
//! cargo run --example file_replay -p gt-harness
//! ```

use std::io::{BufRead, BufReader};
use std::net::TcpListener;

use gt_harness::{run_file_experiment, FileRunPlan};
use gt_replayer::ReconnectingTcpSink;

fn main() {
    // 1. A stream file: 50k vertex additions with a mid-stream marker.
    let dir = std::env::temp_dir().join("gt-file-replay-example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("stream.csv");
    let mut content = String::with_capacity(1 << 20);
    for i in 0..25_000 {
        content.push_str(&format!("ADD_VERTEX,{i},\n"));
    }
    content.push_str("MARKER,halfway,\n");
    for i in 25_000..50_000 {
        content.push_str(&format!("ADD_VERTEX,{i},\n"));
    }
    content.push_str("MARKER,stream-end,\n");
    std::fs::write(&path, content).expect("write stream file");

    // 2. A TCP consumer standing in for the system under test.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let consumer = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        BufReader::new(stream).lines().count()
    });

    // 3. Replay the file through the pipeline at 200k events/s.
    let plan = FileRunPlan::new(&path, 200_000.0).with_buffer(4_096);
    let mut sink = ReconnectingTcpSink::connect(addr).expect("connect");
    let outcome = run_file_experiment(plan, &mut sink).expect("replay");
    drop(sink);

    let report = &outcome.report;
    println!("graph events:    {}", report.replay.graph_events);
    println!("entries read:    {}", report.entries_read);
    println!(
        "achieved rate:   {:.0} events/s",
        report.replay.achieved_rate
    );
    println!("max queue depth: {}", report.max_queue_depth);
    println!(
        "stalls:          reader {:.1}ms, sink {:.1}ms",
        report.reader_stall_micros as f64 / 1e3,
        report.sink_stall_micros as f64 / 1e3
    );
    println!(
        "emit lateness:   mean {:.0}us, p99 <= {}us",
        report.emit_latency.mean(),
        report.emit_latency.quantile_upper_bound(0.99)
    );
    println!(
        "result log:      {} records, markers at {:?} and {:?}",
        outcome.log.records().len(),
        outcome.log.marker("halfway"),
        outcome.log.marker("stream-end")
    );

    let received = consumer.join().expect("consumer");
    println!("consumer saw:    {received} lines");
    std::fs::remove_file(path).ok();
}

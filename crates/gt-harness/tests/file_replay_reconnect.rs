//! Acceptance test: a TCP listener killed and restarted mid-replay must
//! not abort a file-backed harness run — the replay completes through the
//! reconnecting sink, and the disconnect/reconnect events appear in the
//! merged result log alongside the ingress-rate series.

use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

use gt_harness::{run_file_experiment, FileRunPlan};
use gt_replayer::{ReconnectPolicy, ReconnectingTcpSink};

fn rebind(addr: SocketAddr) -> TcpListener {
    for _ in 0..200 {
        match TcpListener::bind(addr) {
            Ok(l) => return l,
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    panic!("could not rebind {addr}");
}

#[test]
fn listener_restart_lands_in_result_log() {
    let dir = std::env::temp_dir().join("gt-harness-reconnect-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.csv");
    let mut content = String::new();
    for i in 0..30_000 {
        content.push_str(&format!("ADD_VERTEX,{i},\n"));
    }
    content.push_str("MARKER,stream-end,\n");
    std::fs::write(&path, content).unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let consumer = std::thread::spawn(move || {
        // First life: consume a slice, then die.
        let (stream, _) = listener.accept().unwrap();
        drop(listener);
        let mut lines = BufReader::new(stream).lines();
        for _ in 0..500 {
            if lines.next().is_none() {
                break;
            }
        }
        drop(lines);
        // Second life: consume the rest.
        let listener = rebind(addr);
        let (stream, _) = listener.accept().unwrap();
        BufReader::new(stream).lines().count()
    });

    let plan = FileRunPlan::new(&path, 150_000.0).with_buffer(512);
    let mut sink = ReconnectingTcpSink::connect(addr)
        .unwrap()
        .with_policy(ReconnectPolicy {
            max_attempts: 100,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            multiplier: 2.0,
            ..Default::default()
        })
        .with_flush_every(64);
    let outcome = run_file_experiment(plan, &mut sink).unwrap();
    drop(sink);

    assert_eq!(outcome.report.replay.graph_events, 30_000);
    assert!(outcome.report.sink_events.len() >= 2);

    // The outage is visible in the merged result log, next to the
    // replayer's own series.
    let disconnects = outcome.log.metric_records("disconnect");
    let reconnects = outcome.log.metric_records("reconnect");
    assert!(disconnects.iter().any(|r| r.source == "sink"));
    assert!(reconnects.iter().any(|r| r.source == "sink"));
    // Chronology holds: the disconnect precedes the reconnect.
    assert!(disconnects[0].t_micros <= reconnects[0].t_micros);
    assert!(outcome.log.marker("stream-end").is_some());
    assert!(!outcome.log.series("replayer", "ingress_rate").is_empty());

    let consumed_after_restart = consumer.join().unwrap();
    assert!(consumed_after_restart > 0);
    std::fs::remove_file(path).ok();
}

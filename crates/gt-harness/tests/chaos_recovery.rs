//! End-to-end chaos runs against the registry platforms: a worker killed
//! mid-stream must never hang the harness, fault/recovery events must
//! land in the merged log, and identical `(schedule, seed)` runs must
//! produce identical fault sequences.

use std::time::{Duration, Instant};

use gt_core::prelude::*;
use gt_harness::run::ChaosPlan;
use gt_harness::watchdog::WatchdogConfig;
use gt_harness::{
    run_sut_experiment, EvaluationLevel, FaultSchedule, RunPlan, RunStatus, SutOptions,
    SutRegistry, CHAOS_SOURCE,
};

fn registry() -> SutRegistry {
    let mut registry = SutRegistry::new();
    tide_store::sut::register(&mut registry);
    tide_graph::sut::register(&mut registry);
    registry
}

fn stream(n: u64) -> GraphStream {
    let mut s: GraphStream = (0..n)
        .map(|i| {
            StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(i),
                state: State::empty(),
            })
        })
        .collect();
    s.push(StreamEntry::marker("stream-end"));
    s
}

/// The tentpole acceptance shape: kill a worker of each registry platform
/// mid-stream under a watchdog. The run must terminate well within the
/// deadline with a typed outcome and both fault and recovery markers in
/// the merged log.
#[test]
fn killing_a_worker_mid_stream_never_hangs_either_platform() {
    for (name, options) in [
        (
            "tide-store",
            SutOptions::new()
                .set("timestamper_cost_us", 0)
                .set("shard_cost_us", 0)
                .set("supervised", 1),
        ),
        (
            "tide-graph",
            SutOptions::new().set("workers", 2).set("supervised", 1),
        ),
    ] {
        let chaos =
            ChaosPlan::new(FaultSchedule::parse("crash@200,worker=0,restart=300", 5).unwrap());
        let journal = chaos.journal.clone();
        let plan = RunPlan::new(stream(1_000), 400_000.0)
            .at_level(EvaluationLevel::Level1)
            .with_chaos(chaos)
            .with_watchdog(
                WatchdogConfig::stall_after(Duration::from_secs(20))
                    .with_deadline(Duration::from_secs(60)),
            );

        let started = Instant::now();
        let outcome = run_sut_experiment(plan, &registry(), name, &options)
            .unwrap_or_else(|e| panic!("{name}: chaos run failed: {e}"));
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "{name}: run exceeded the watchdog deadline"
        );
        assert_eq!(outcome.run.status, RunStatus::Completed, "{name}");

        let log = &outcome.run.log;
        assert!(
            log.records()
                .iter()
                .any(|r| r.source == CHAOS_SOURCE && r.metric == "fault"),
            "{name}: no fault marker in merged log"
        );
        assert!(
            log.records()
                .iter()
                .any(|r| r.source == CHAOS_SOURCE && r.metric == "recovery"),
            "{name}: no recovery marker in merged log"
        );
        assert_eq!(
            journal.signature(),
            vec![
                (200, "crash(worker=0, restart=+300) ok".to_owned()),
                (500, "restart(worker=0) ok".to_owned()),
            ],
            "{name}"
        );
        assert_eq!(outcome.report.get("crashes"), Some(1.0), "{name}");
        assert_eq!(outcome.report.get("restarts"), Some(1.0), "{name}");
        assert!(log.marker("stream-end").is_some(), "{name}");
    }
}

/// The determinism contract: the same `(schedule, seed)` against the same
/// stream fires the same faults at the same stream positions, run after
/// run — wall-clock jitter must not leak into the fault sequence. (The
/// partial-batch fault is exercised elsewhere: its *recovery* entry
/// reports how many entries the truncated batch actually dropped, which
/// depends on the replayer's catch-up coalescing and is therefore
/// batch-shape- rather than stream-position-deterministic.)
#[test]
fn identical_schedule_and_seed_yield_identical_fault_sequences() {
    let spec = "crash@150,worker=1,restart=100; disconnect@400,lose=50; stall@700,ms=5";
    let run_once = || {
        let chaos = ChaosPlan::new(FaultSchedule::parse(spec, 42).unwrap());
        let journal = chaos.journal.clone();
        let options = SutOptions::new()
            .set("timestamper_cost_us", 0)
            .set("shard_cost_us", 0)
            .set("supervised", 1);
        let plan = RunPlan::new(stream(800), 400_000.0).with_chaos(chaos);
        run_sut_experiment(plan, &registry(), "tide-store", &options).unwrap();
        journal.signature()
    };
    let first = run_once();
    assert!(!first.is_empty());
    assert_eq!(first, run_once());
    assert_eq!(first, run_once());
}

/// A crash that is never repaired: the platform must degrade (events
/// lost to the dead worker) without wedging the run or the shutdown.
#[test]
fn unrepaired_crash_degrades_without_hanging() {
    let chaos = ChaosPlan::new(FaultSchedule::parse("crash@100,worker=0", 3).unwrap());
    let options = SutOptions::new()
        .set("timestamper_cost_us", 0)
        .set("shard_cost_us", 0)
        .set("supervised", 1);
    let plan = RunPlan::new(stream(500), 400_000.0)
        .with_chaos(chaos)
        .with_watchdog(WatchdogConfig::default().with_deadline(Duration::from_secs(60)));
    let started = Instant::now();
    let outcome = run_sut_experiment(plan, &registry(), "tide-store", &options).unwrap();
    assert!(started.elapsed() < Duration::from_secs(60));
    assert_eq!(outcome.report.get("crashes"), Some(1.0));
    assert_eq!(outcome.report.get("restarts"), Some(0.0));
    let lost = outcome.report.get("events_lost").unwrap_or(0.0);
    assert!(lost > 0.0, "dead shard should have lost events, got {lost}");
}

/// Wall-clock watchdog check for the release timing job: a scripted
/// pause far longer than the stall timeout must be cut short at roughly
/// the configured bound — not instantly, not at the full pause length.
#[test]
#[ignore = "wall-clock timing; run with --release -- --ignored"]
fn watchdog_stall_detection_holds_at_wall_clock_scale() {
    let mut s: GraphStream = (0..500)
        .map(|i| {
            StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(i),
                state: State::empty(),
            })
        })
        .collect();
    s.push(StreamEntry::pause(Duration::from_secs(120)));
    s.push(StreamEntry::marker("unreachable"));

    let mut plan = RunPlan::new(s, 200_000.0)
        .with_watchdog(WatchdogConfig::stall_after(Duration::from_secs(2)));
    plan.sysmon = None;
    let mut sink = gt_replayer::CollectSink::new();
    let started = Instant::now();
    let outcome = gt_harness::run_experiment(plan, &mut sink).unwrap();
    let elapsed = started.elapsed();
    assert!(outcome.report.aborted);
    assert!(outcome.status.is_aborted());
    assert!(
        elapsed >= Duration::from_secs(2),
        "stall fired early: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "stall detection took too long: {elapsed:?}"
    );
    assert_eq!(outcome.report.graph_events, 500);
    assert!(outcome.log.marker("unreachable").is_none());
}

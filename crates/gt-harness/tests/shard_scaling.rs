//! Wall-clock shard-scaling check for the release timing job: when the
//! sequencer's ordering cost dominates, the hash-partitioned store — which
//! pays that cost once per *shard* batch, concurrently — must beat the
//! serial store, which pays it once per transaction on a single thread.
//!
//! This is deliberately a throughput (wall-clock) assertion, so it runs
//! only in the `--release -- --ignored` timing job; the functional
//! sharding contract is covered by the always-on differential and
//! property suites at the workspace root.

use std::time::{Duration, Instant};

use gt_core::prelude::*;
use gt_harness::{run_sut_experiment, EvaluationLevel, RunPlan, SutOptions, SutRegistry};

fn registry() -> SutRegistry {
    let mut registry = SutRegistry::new();
    tide_store::sut::register(&mut registry);
    registry
}

fn vertices(n: u64) -> GraphStream {
    (0..n)
        .map(|i| {
            StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(i),
                state: State::empty(),
            })
        })
        .collect()
}

/// One backpressure-bound run: the offered rate is far above what the
/// simulated sequencer cost allows, so wall time measures the platform's
/// own throughput ceiling, not the replayer's pacing.
fn saturated_rate(sut: &str, options: &SutOptions, events: u64) -> f64 {
    let mut plan = RunPlan::new(vertices(events), 10_000_000.0).at_level(EvaluationLevel::Level0);
    plan.sysmon = None;
    let started = Instant::now();
    let outcome = run_sut_experiment(plan, &registry(), sut, options).unwrap();
    let elapsed = started.elapsed();
    assert!(outcome.quiesced, "{sut} failed to quiesce");
    assert_eq!(outcome.report.get("events"), Some(events as f64), "{sut}");
    events as f64 / elapsed.as_secs_f64()
}

#[test]
#[ignore = "wall-clock timing; run with --release -- --ignored"]
fn sharded_store_beats_serial_when_sequencing_dominates() {
    // The sequencer cost is modelled as CPU spin, so shard concurrency
    // needs real cores to buy anything; on a single-core box the curve is
    // honestly flat and this assertion would test the scheduler, not the
    // store.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 2 {
        println!("# skipping: {cores} core(s) available, spin-modelled sharding cannot scale");
        return;
    }
    const EVENTS: u64 = 2_000;
    // 250 µs of ordering work per single-event transaction caps the serial
    // store near 4k events/s; four shards sequencing concurrently (and
    // coalescing router batches) must clear a comfortably higher ceiling.
    let costed = SutOptions::new()
        .set("timestamper_cost_us", 250)
        .set("shard_cost_us", 0)
        .set("batch_size", 1);

    let serial = saturated_rate("tide-store", &costed.clone().set("shards", 1), EVENTS);
    let sharded = saturated_rate("tide-store-sharded", &costed.set("shards", 4), EVENTS);

    println!("# shard scaling @ 250us/tx sequencer cost, {EVENTS} events");
    println!("serial  {serial:>10.0} e/s");
    println!("4-shard {sharded:>10.0} e/s  ({:.2}x)", sharded / serial);
    assert!(
        serial < 8_000.0,
        "serial store should be sequencer-bound near 4k e/s, got {serial:.0}"
    );
    assert!(
        sharded > 1.5 * serial,
        "4 shards must beat serial by >1.5x: serial {serial:.0} e/s, sharded {sharded:.0} e/s"
    );
    // Guard against a degenerate measurement (e.g. the whole run finishing
    // inside scheduler noise).
    assert!(
        Duration::from_secs_f64(EVENTS as f64 / serial) > Duration::from_millis(100),
        "serial run too fast to be sequencer-bound"
    );
}

//! Resume-correctness properties of the scenario-matrix orchestrator.
//!
//! The journal's contract is that a matrix killed at **any byte** of the
//! file resumes to a bit-identical journal and bit-identical aggregates,
//! re-running only repetitions whose record was incomplete. The unit
//! tests in `orchestrator.rs` spot-check one truncation point; this
//! property test sweeps every byte boundary of the journal.

use std::time::Duration;

use gt_harness::{
    aggregate_records, cell_id, render_matrix_table, run_matrix, AbortReason, Assignment,
    CellRunResult, FactorSpace, JournalRecord, RunStatus, ScenarioMatrix,
};

const SPEC: &str = "\
matrix = resume-prop
repetitions = 3
seed = 99
factor sut = a | b
factor rate = 1 | 2
";

/// A deterministic runner: metrics and status are pure functions of
/// (cell, rep, seed), so any resume must reproduce the exact bytes an
/// uninterrupted execution writes. One cell's rep 1 aborts to keep the
/// excluded-repetition path in the property.
fn runner_result(cell: &Assignment, rep: u32, seed: u64) -> CellRunResult {
    let id = cell_id(cell);
    let status = if id.contains("sut=b") && rep == 1 {
        RunStatus::Aborted(AbortReason::Stalled {
            stalled_for: Duration::from_millis(seed % 50),
            events_delivered: seed,
        })
    } else {
        RunStatus::Completed
    };
    CellRunResult {
        status,
        metrics: vec![
            ("throughput".to_owned(), (seed % 1009) as f64 + 0.25),
            ("latency".to_owned(), (seed % 31) as f64 * 1.5),
        ],
    }
}

/// Complete, parseable records in a journal prefix (excluding the
/// header) — exactly what `MatrixJournal::open` will keep.
fn valid_records_in(prefix: &[u8]) -> usize {
    let text = String::from_utf8_lossy(prefix);
    let Some((_, body)) = text.split_once('\n') else {
        return 0;
    };
    let mut n = 0;
    for line in body.split_inclusive('\n') {
        if line.ends_with('\n') && JournalRecord::parse_json_line(line).is_ok() {
            n += 1;
        } else {
            break;
        }
    }
    n
}

#[test]
fn truncation_at_every_byte_resumes_bit_identical() {
    let dir = std::env::temp_dir().join("gt-matrix-resume-prop");
    std::fs::create_dir_all(&dir).unwrap();
    let matrix = ScenarioMatrix::parse(SPEC).unwrap();
    let total = matrix.total_runs();

    // Reference: one uninterrupted execution.
    let full_path = dir.join("full.jsonl");
    std::fs::remove_file(&full_path).ok();
    let full = run_matrix(&matrix, &full_path, &mut runner_result).unwrap();
    assert_eq!(full.progress.executed, total);
    let full_bytes = std::fs::read(&full_path).unwrap();
    let full_table = render_matrix_table(&full.cells);
    let header_end = full_bytes.iter().position(|&b| b == b'\n').unwrap() + 1;

    // Kill the matrix at every byte past the header and resume.
    let cut_path = dir.join("cut.jsonl");
    for cut in header_end..=full_bytes.len() {
        std::fs::write(&cut_path, &full_bytes[..cut]).unwrap();
        let survived = valid_records_in(&full_bytes[..cut]);
        let mut executed_reps = Vec::new();
        let resumed = run_matrix(
            &matrix,
            &cut_path,
            &mut |cell: &Assignment, rep: u32, seed: u64| {
                executed_reps.push((cell_id(cell), rep));
                runner_result(cell, rep, seed)
            },
        )
        .unwrap();

        assert_eq!(
            resumed.progress.executed,
            total - survived,
            "cut at byte {cut}: completed repetitions must not re-run"
        );
        assert_eq!(resumed.progress.resumed, survived, "cut at byte {cut}");
        assert_eq!(
            std::fs::read(&cut_path).unwrap(),
            full_bytes,
            "cut at byte {cut}: resumed journal must be bit-identical"
        );
        assert_eq!(
            render_matrix_table(&resumed.cells),
            full_table,
            "cut at byte {cut}: aggregates must be bit-identical"
        );
        // Resume executes the missing suffix in enumeration order, never
        // a repetition the journal already held.
        assert_eq!(executed_reps.len(), total - survived);
    }
}

#[test]
fn aggregates_from_journal_match_run_outcome() {
    let dir = std::env::temp_dir().join("gt-matrix-reread");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");
    std::fs::remove_file(&path).ok();
    let matrix = ScenarioMatrix::parse(SPEC).unwrap();
    let outcome = run_matrix(&matrix, &path, &mut runner_result).unwrap();

    // Re-reading the journal offline (the `gt-report --matrix` path)
    // reproduces the exact aggregates the live run reported.
    let text = std::fs::read_to_string(&path).unwrap();
    let records: Vec<JournalRecord> = text
        .lines()
        .skip(1)
        .map(|line| JournalRecord::parse_json_line(line).unwrap())
        .collect();
    assert_eq!(
        render_matrix_table(&aggregate_records(&records)),
        render_matrix_table(&outcome.cells)
    );
}

#[test]
fn factor_space_enumeration_order_is_stable() {
    let space = FactorSpace::new()
        .factor("sut", ["a", "b"])
        .factor("rate", ["1", "2", "3"])
        .factor("chaos", ["none", "crash"]);

    // Two enumerations of the same space are identical, and so is the
    // enumeration of an independently built equal space — resume depends
    // on this order never changing between invocations.
    let full = space.full_factorial();
    assert_eq!(full, space.full_factorial());
    let ofat = space.one_factor_at_a_time();
    assert_eq!(ofat, space.one_factor_at_a_time());

    let rebuilt = FactorSpace::new()
        .factor("sut", ["a", "b"])
        .factor("rate", ["1", "2", "3"])
        .factor("chaos", ["none", "crash"]);
    assert_eq!(full, rebuilt.full_factorial());
    assert_eq!(ofat, rebuilt.one_factor_at_a_time());

    // The full factorial varies the *last* factor fastest; golden-pin the
    // first cells so an accidental reordering fails loudly.
    let ids: Vec<String> = full.iter().map(cell_id).collect();
    assert_eq!(ids[0], "sut=a;rate=1;chaos=none");
    assert_eq!(ids[1], "sut=a;rate=1;chaos=crash");
    assert_eq!(ids[2], "sut=a;rate=2;chaos=none");
    assert_eq!(ids.len(), 12);

    // Parsing the same spec twice enumerates identically too.
    let a = ScenarioMatrix::parse(SPEC).unwrap();
    let b = ScenarioMatrix::parse(SPEC).unwrap();
    let a_ids: Vec<String> = a.cells().iter().map(cell_id).collect();
    let b_ids: Vec<String> = b.cells().iter().map(cell_id).collect();
    assert_eq!(a_ids, b_ids);
    assert_eq!(a.fingerprint(), b.fingerprint());
}

//! `gt-bench` — the persistent perf-trajectory runner.
//!
//! ```text
//! gt-bench trajectory [--smoke] [--check] [--out DIR]
//! ```
//!
//! Measures the §4.2 parse path (borrowed vs owned) and the graph-event
//! ingest path (hybrid-adjacency `EvolvingGraph` and the store's
//! `PartitionState`) with a counting global allocator, then writes
//! `BENCH_parse.json` and `BENCH_ingest.json` into `--out` (default: the
//! current directory — run from the repo root so the files land next to
//! the sources and get committed).
//!
//! * `--smoke` shrinks event counts and rounds for CI.
//! * `--check` compares against the committed files first and exits
//!   non-zero if any suite's median ns/event regressed by more than 15%
//!   or its allocations-per-event counter grew.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gt_bench::trajectory::{self, measure, BenchRecord, CountingAlloc};
use gt_core::format::{entry_to_line, parse_line, parse_line_ref};
use gt_core::prelude::*;
use gt_graph::EvolvingGraph;
use std::hint::black_box;
use tide_store::PartitionState;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Args {
    smoke: bool,
    check: bool,
    out: PathBuf,
}

const USAGE: &str = "usage: gt-bench trajectory [--smoke] [--check] [--out DIR]";

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("trajectory") => {}
        Some("--help") | Some("-h") | None => return Err(USAGE.into()),
        Some(other) => return Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    }
    let mut smoke = false;
    let mut check = false;
    let mut out = PathBuf::from(".");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--out" => out = PathBuf::from(args.next().ok_or("--out needs a directory")?),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(Args { smoke, check, out })
}

/// A deterministic mixed stream: the same LCG-scrambled shape the
/// differential tests replay, so parse and ingest measure realistic
/// entry diversity (vertices, hub-forming edges, updates, removals).
fn sample_events(n: u64) -> Vec<GraphEvent> {
    let vertices = (n / 8).max(16);
    let mut events: Vec<GraphEvent> = (0..vertices)
        .map(|i| GraphEvent::AddVertex {
            id: VertexId(i),
            state: State::new("name=v"),
        })
        .collect();
    let mut x = 0x9E37_79B9u64;
    while (events.len() as u64) < n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let src = VertexId((x >> 17) % vertices);
        let dst = VertexId((x >> 41) % vertices);
        let event = match x % 10 {
            0..=5 => GraphEvent::AddEdge {
                id: EdgeId::new(src, dst),
                state: State::weight(((x >> 7) % 9 + 1) as f64),
            },
            6..=7 => GraphEvent::UpdateEdge {
                id: EdgeId::new(src, dst),
                state: State::weight(((x >> 9) % 9 + 1) as f64),
            },
            8 => GraphEvent::UpdateVertex {
                id: src,
                state: State::new("name=w"),
            },
            _ => GraphEvent::RemoveEdge {
                id: EdgeId::new(src, dst),
            },
        };
        events.push(event);
    }
    events
}

fn sample_lines(events: &[GraphEvent]) -> Vec<String> {
    events
        .iter()
        .enumerate()
        .map(|(i, e)| {
            if i % 64 == 63 {
                entry_to_line(&StreamEntry::marker(format!("w-{i}")))
            } else {
                entry_to_line(&StreamEntry::graph(e.clone()))
            }
        })
        .collect()
}

fn parse_suites(lines: &[String], rounds: u32) -> Vec<BenchRecord> {
    let n = lines.len() as u64;
    vec![
        measure("parse/borrowed", n, rounds, || {
            let mut kept = 0usize;
            for line in lines {
                if parse_line_ref(black_box(line)).unwrap().is_some() {
                    kept += 1;
                }
            }
            black_box(kept);
        }),
        measure("parse/owned", n, rounds, || {
            let mut kept = 0usize;
            for line in lines {
                if parse_line(black_box(line)).unwrap().is_some() {
                    kept += 1;
                }
            }
            black_box(kept);
        }),
    ]
}

fn ingest_suites(events: &[GraphEvent], rounds: u32) -> Vec<BenchRecord> {
    let n = events.len() as u64;
    vec![
        measure("ingest/evolving-graph", n, rounds, || {
            let mut graph = EvolvingGraph::new();
            for event in events {
                let _ = black_box(graph.apply(black_box(event)));
            }
            black_box(graph.vertex_count());
        }),
        measure("ingest/partition-state", n, rounds, || {
            let mut state = PartitionState::new();
            for event in events {
                state.apply(black_box(event));
            }
            black_box(state.edge_count());
        }),
    ]
}

fn load_previous(path: &Path) -> Vec<BenchRecord> {
    match std::fs::read_to_string(path) {
        Ok(text) => trajectory::from_json(&text),
        Err(_) => Vec::new(),
    }
}

fn run(args: Args) -> Result<(), String> {
    // Smoke mode keeps the full event count (per-event medians are only
    // comparable at equal scale) and saves time on rounds instead.
    let (events_n, rounds) = if args.smoke {
        (100_000, 3)
    } else {
        (100_000, 9)
    };
    let events = sample_events(events_n);
    let lines = sample_lines(&events);

    let mut failed = false;
    for (area, fresh) in [
        ("parse", parse_suites(&lines, rounds)),
        ("ingest", ingest_suites(&events, rounds)),
    ] {
        let path = args.out.join(format!("BENCH_{area}.json"));
        println!("[{area}] ({} events x {rounds} rounds)", events_n);
        let previous = load_previous(&path);
        let delta = trajectory::compare(&previous, &fresh);
        for (name, old, new) in &delta.regressions {
            eprintln!(
                "REGRESSION {name}: {old:.1} -> {new:.1} ns/event \
                 (> {:.0}% threshold)",
                trajectory::REGRESSION_THRESHOLD * 100.0
            );
        }
        // Allocation counts are exact (a deterministic counter, not a
        // timing), so growth is gated as hard as ns/event regressions.
        for (name, old, new) in &delta.alloc_warnings {
            eprintln!("ALLOC GROWTH {name}: {old:.3} -> {new:.3} allocations per event");
        }
        if args.check && !(delta.regressions.is_empty() && delta.alloc_warnings.is_empty()) {
            failed = true;
        }
        std::fs::write(&path, trajectory::to_json(area, &fresh))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    if failed {
        return Err("perf trajectory check failed (median regression > 15%)".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gt-bench: {msg}");
            ExitCode::FAILURE
        }
    }
}

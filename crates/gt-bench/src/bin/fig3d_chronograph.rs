//! **Figure 3d** — stacked time-series of a Chronograph-class experiment
//! run with a social network workload.
//!
//! Paper setup (Table 4): converted LDBC SNB workload (persons and
//! connections only, 190,518 events), online influence rank, four
//! workers; base streaming rate 2,000 events/s, a 20 s pause after the
//! 100,000th event, doubled rate between events 100,001 and 150,000.
//!
//! Plotted series (top to bottom in the paper): replay rate, internal
//! ops/s per worker, CPU utilization, worker queue lengths, and the
//! relative rank error of the online computation, estimated
//! retrospectively against batch PageRank on the final graph.
//!
//! Scaled-down by default to 1/10 of the paper's stream (≈19k events,
//! pause after 10k, doubled rate for the next 5k) so the run finishes in
//! ~15 s; set `GT_BENCH_SCALE=10` for the paper-sized stream.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gt_algorithms::pagerank::{pagerank, PageRankConfig};
use gt_analysis::{phase_summaries, window_correlation};
use gt_bench::{header, scale};
use gt_core::prelude::*;
use gt_generator::StreamComposer;
use gt_graph::{CsrSnapshot, EvolvingGraph};
use gt_harness::{SutOptions, SutRegistry};
use gt_metrics::{Clock, MetricRecord, ResultLog, WallClock};
use gt_replayer::{Replayer, ReplayerConfig};
use gt_sysmon::SamplerConfig;
use gt_workloads::SnbWorkload;
use tide_graph::{TideGraph, TideGraphSut};

struct Samples {
    t: f64,
    replay_rate: f64,
    ops_per_worker: Vec<f64>,
    cpu_per_worker: Vec<f64>,
    queue_per_worker: Vec<i64>,
    board: BTreeMap<VertexId, f64>,
}

fn main() {
    header("Figure 3d: Chronograph-class engine under a varying-rate social stream");
    let workers = 4usize;
    let fraction = (scale() / 10.0).min(1.0);
    let workload = SnbWorkload::scaled(fraction, 2018);
    let total = workload.total_events();
    let pause_after = total / 2; // paper: pause after 100k of 190,518
    let doubled_until = total * 3 / 4; // doubled rate for the next quarter

    println!(
        "# Table 4 setup (scaled {fraction:.2}x): {} events, pause after {} events,",
        total, pause_after
    );
    println!(
        "# doubled rate until event {}, {} workers, online influence rank",
        doubled_until, workers
    );

    // Compose the varying-rate stream: base rate, pause, 2x phase, 1x tail.
    let base = workload.generate();
    let entries = base.entries().to_vec();
    let (head, rest) = entries.split_at(pause_after as usize);
    let (burst, tail) = rest.split_at((doubled_until - pause_after) as usize);
    let stream = StreamComposer::new()
        .segment(GraphStream::from_entries(head.to_vec()))
        .marker("pause-start")
        .pause(Duration::from_secs_f64(2.0 * scale().min(10.0))) // paper: 20 s
        .speed(2.0)
        .segment(GraphStream::from_entries(burst.to_vec()))
        .speed(1.0)
        .segment(GraphStream::from_entries(tail.to_vec()))
        .marker("stream-end")
        .build();

    // The engine is started through the SUT registry — the same boundary
    // the harness uses — and its typed handle recovered via the `as_any`
    // escape hatch for the board-sampling thread below.
    let mut registry = SutRegistry::new();
    tide_graph::sut::register(&mut registry);
    let options = SutOptions::new()
        .set("workers", workers)
        // A coarse push threshold keeps share traffic at a realistic
        // handful per mutation; the reseed fraction still forces
        // continuous recomputation (see the epsilon ablation bench).
        .set("epsilon", 0.05)
        .set("reseed", 0.3)
        // Per-message costs chosen so 4 workers saturate at the doubled
        // rate (~4k events/s + share fan-out) but keep up at the base
        // rate — the regime of the paper's experiment.
        .set("event_cost_us", 150)
        .set("share_cost_us", 15)
        .set("board_refresh_every", 128);
    let mut sut = registry
        .start(tide_graph::sut::SUT_NAME, &options)
        .expect("start engine");
    let hub = sut.hub().expect("engine exposes native metrics").clone();
    let engine = Arc::clone(
        sut.as_any()
            .downcast_mut::<TideGraphSut>()
            .expect("registered as TideGraphSut")
            .engine(),
    );

    // Shared run clock: marker timestamps, the ingress-rate series, and
    // the Level-0 resource series all live on the same time base.
    let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
    let sysmon = gt_sysmon::spawn(
        SamplerConfig::default().every(Duration::from_millis(100)),
        Arc::clone(&clock),
        Some(&hub),
    );

    // Background sampler: every 250 ms capture the full stack of series.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let hub = hub.clone();
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let started = Instant::now();
            let mut out: Vec<Samples> = Vec::new();
            let mut last_ingress = 0u64;
            let mut last_ops = vec![0u64; workers];
            let mut last_busy = vec![0u64; workers];
            loop {
                std::thread::sleep(Duration::from_millis(250));
                let t = started.elapsed().as_secs_f64();
                let ingress = hub.counter("replayer.ingress").get();
                let mut ops = Vec::with_capacity(workers);
                let mut cpu = Vec::with_capacity(workers);
                let mut queue = Vec::with_capacity(workers);
                for w in 0..workers {
                    let o = hub.counter(&format!("worker-{w}.ops")).get();
                    ops.push((o - last_ops[w]) as f64 * 4.0);
                    last_ops[w] = o;
                    let b = hub.counter(&format!("worker-{w}.busy_micros")).get();
                    cpu.push((b - last_busy[w]) as f64 / 250_000.0 * 100.0);
                    last_busy[w] = b;
                    queue.push(hub.gauge(&format!("worker-{w}.queue")).get());
                }
                out.push(Samples {
                    t,
                    replay_rate: (ingress - last_ingress) as f64 * 4.0,
                    ops_per_worker: ops,
                    cpu_per_worker: cpu,
                    queue_per_worker: queue,
                    board: engine.board_ranks(),
                });
                last_ingress = ingress;
                if stop.load(std::sync::atomic::Ordering::Relaxed) {
                    return out;
                }
            }
        })
    };

    // Replay at the Table 4 base rate.
    let replayer = Replayer::new(ReplayerConfig {
        target_rate: 2_000.0,
        ..Default::default()
    })
    .with_clock(Arc::clone(&clock))
    .with_ingress_counter(hub.counter("replayer.ingress"));
    let mut connector = sut.connector().expect("engine connector");
    let report = replayer
        .replay_stream(&stream, &mut connector)
        .expect("replay succeeds");
    let stream_end_t = report.duration_micros as f64 / 1e6;

    // Keep sampling until the backlog drains (the long tail of Fig. 3d).
    let drained = engine.quiesce(Duration::from_secs(600));
    let run_end_micros = clock.now_micros();
    let resources = sysmon.stop();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let samples = sampler.join().expect("sampler");
    // All engine handles must be gone before the typed shutdown: the
    // connector's, the sampler's (already joined), and the local clone.
    drop(connector);
    drop(engine);
    let stats = sut
        .into_any()
        .downcast::<TideGraphSut>()
        .expect("registered as TideGraphSut")
        .shutdown_engine();

    // Retrospective reference: batch PageRank on the final graph.
    let final_graph = EvolvingGraph::from_stream(&base).expect("stream applies");
    let csr = CsrSnapshot::from_graph(&final_graph);
    let exact = pagerank(&csr, &PageRankConfig::default());
    let exact_map: BTreeMap<VertexId, f64> = csr
        .indices()
        .map(|i| (csr.id_of(i), exact.ranks[i as usize]))
        .collect();
    // "relative errors of the online computations of certain vertices":
    // track the paper's "most influential users" — the exact top-10.
    let mut order: Vec<(&VertexId, &f64)> = exact_map.iter().collect();
    order.sort_by(|a, b| b.1.partial_cmp(a.1).expect("finite"));
    let watched: Vec<VertexId> = order.iter().take(10).map(|(id, _)| **id).collect();

    println!(
        "\n{:>7} {:>11} {:>10} {:>10} {:>10} {:>10} {:>11} {:>12}",
        "t[s]",
        "replay[e/s]",
        "ops/w[1/s]",
        "cpu/w[%]",
        "queue-max",
        "queue-sum",
        "rank-err[%]",
        "phase"
    );
    for s in &samples {
        let ops_mean = s.ops_per_worker.iter().sum::<f64>() / workers as f64;
        let cpu_mean = s.cpu_per_worker.iter().sum::<f64>() / workers as f64;
        let queue_max = s.queue_per_worker.iter().copied().max().unwrap_or(0);
        let queue_sum: i64 = s.queue_per_worker.iter().sum();
        let err = rank_error(&s.board, &exact_map, &watched);
        let phase = if s.t < stream_end_t {
            "stream"
        } else {
            "drain"
        };
        println!(
            "{:>7.2} {:>11.0} {:>10.0} {:>10.1} {:>10} {:>10} {:>11.2} {:>12}",
            s.t,
            s.replay_rate,
            ops_mean,
            cpu_mean,
            queue_max,
            queue_sum,
            err * 100.0,
            phase
        );
    }

    let final_ranks = TideGraph::normalized(&stats.ranks);
    let final_err = rank_error(&final_ranks, &exact_map, &watched);
    println!(
        "\nstream ended at t = {stream_end_t:.2}s; drained = {drained}; \
         final rank error of watched vertices: {:.2}%",
        final_err * 100.0
    );
    println!(
        "Expected shape (paper): worker queues build through the run and saturate\n\
         around stream end; the system keeps processing (ops > 0, workers busy)\n\
         long after the stream has ended, and the rank error decays only as the\n\
         backlog drains."
    );

    print_resource_phases(&report, resources, run_end_micros);
}

/// The Level-0 view of the same run: merge the monitor's resource series
/// with the replay markers into one result log, cut it along the stream
/// phases, and correlate CPU against the ingress rate.
fn print_resource_phases(
    report: &gt_replayer::ReplayReport,
    resources: gt_sysmon::SysmonOutcome,
    run_end_micros: u64,
) {
    if let Some(err) = &resources.error {
        println!("\nLevel-0 monitor unavailable on this host: {err}");
        return;
    }
    let mut records = resources.records;
    records.push(MetricRecord::text(0, "replayer", "marker", "run-start"));
    records.push(MetricRecord::text(
        run_end_micros,
        "replayer",
        "marker",
        "run-end",
    ));
    for (name, t) in &report.markers {
        records.push(MetricRecord::text(*t, "replayer", "marker", name.clone()));
    }
    for (t, rate) in &report.rate_series {
        records.push(MetricRecord::float(
            (*t * 1e6) as u64,
            "replayer",
            "ingress_rate",
            *rate,
        ));
    }
    let log = ResultLog::from_records(records);

    println!("\nLevel-0 resource phases (black-box /proc monitor):");
    println!(
        "{:>12} {:>9} {:>11} {:>11} {:>12}",
        "phase", "len[s]", "cpu-mean[%]", "cpu-max[%]", "rss-max[MiB]"
    );
    let phases = [
        ("load", "run-start", "pause-start"),
        ("catch-up", "pause-start", "stream-end"),
        ("drain", "stream-end", "run-end"),
    ];
    let cpu = phase_summaries(&log, &phases, "sysmon", "cpu_percent");
    let rss = phase_summaries(&log, &phases, "sysmon", "rss_bytes");
    // Both calls skip exactly the phases whose markers are missing, so
    // the two lists stay aligned.
    for (c, r) in cpu.iter().zip(&rss) {
        println!(
            "{:>12} {:>9.2} {:>11.1} {:>11.1} {:>12.1}",
            c.phase,
            c.duration_secs(),
            c.summary.mean(),
            c.summary.max().unwrap_or(0.0),
            r.summary.max().map_or(f64::NAN, |b| b / (1024.0 * 1024.0))
        );
    }
    match window_correlation(
        &log,
        "run-start",
        "stream-end",
        ("replayer", "ingress_rate"),
        ("sysmon", "cpu_percent"),
        16,
    ) {
        Some(r) => println!("ingress rate vs process CPU over the stream: r = {r:.2}"),
        None => println!("ingress rate vs process CPU: series too short to correlate"),
    }
}

/// Median relative error of the watched vertices' normalized ranks.
fn rank_error(
    online: &BTreeMap<VertexId, f64>,
    exact: &BTreeMap<VertexId, f64>,
    watched: &[VertexId],
) -> f64 {
    let mut errors: Vec<f64> = watched
        .iter()
        .map(|v| {
            let e = exact.get(v).copied().unwrap_or(0.0);
            let o = online.get(v).copied().unwrap_or(0.0);
            if e == 0.0 {
                o.abs()
            } else {
                (o - e).abs() / e
            }
        })
        .collect();
    errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    errors[errors.len() / 2]
}

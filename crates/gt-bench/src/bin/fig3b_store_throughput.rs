//! **Figure 3b** — events processed in the Weaver-class store over time
//! for different streaming rates and transaction batch sizes.
//!
//! Paper setup (Table 3): Barabási–Albert bootstrap (n = 10,000,
//! m₀ = 250, M = 50), then the Table 3 event mix streamed at target rates
//! 10², 10³, 10⁴ events/s, committed as either 1 event/tx or 10 events
//! batched per tx, against a single Weaver instance. Finding: "independent
//! of the actual streaming rates, Weaver appeared to have an upper bound
//! for throughput" — and batching raises that bound.
//!
//! Scaled-down reproduction: the same workload shape, a configurable run
//! window per cell (default 4 s × GT_BENCH_SCALE), and a store whose
//! timestamper costs 800 µs per transaction (ceiling ≈ 1.2k tx/s).

use std::time::{Duration, Instant};

use gt_bench::{header, scaled};
use gt_core::prelude::*;
use gt_harness::{SutOptions, SutRegistry};
use gt_replayer::{Replayer, ReplayerConfig};
use gt_workloads::Table3Workload;

const RATES: [f64; 3] = [100.0, 1_000.0, 10_000.0];
const BATCHES: [usize; 2] = [1, 10];

fn main() {
    header("Figure 3b: store write throughput over time (rate x batch)");
    let mut registry = SutRegistry::new();
    tide_store::sut::register(&mut registry);
    let window = scaled(Duration::from_secs(4));
    println!("# Table 3 workload: BA bootstrap + 10/5/35/35/15/0 event mix");
    println!("# store: timestamper 800us/tx, 2 shards, 20us/event");
    println!(
        "{:>10} {:>8} {:>6} {:>16} {:>16}",
        "rate[e/s]", "batch", "t[s]", "committed[e/s]", "offered[e/s]"
    );

    for &batch in &BATCHES {
        for &rate in &RATES {
            run_cell(&registry, rate, batch, window);
        }
    }

    println!(
        "\nExpected shape (paper): at low rates the committed series tracks the\n\
         offered rate; past the ceiling it flattens at the same bound regardless\n\
         of the offered rate, and the 10-events/tx ceiling sits about an order\n\
         of magnitude above the 1-event/tx ceiling."
    );
}

fn run_cell(registry: &SutRegistry, rate: f64, batch: usize, window: Duration) {
    // Enough workload to cover the window at the *offered* rate.
    let events = (rate * window.as_secs_f64() * 1.2) as usize + 1_000;
    let workload = Table3Workload::small(events, 42);
    let stream = strip_controls(workload.generate());

    let options = SutOptions::new()
        .set("shards", 2)
        .set("timestamper_cost_us", 800)
        .set("shard_cost_us", 20)
        .set("queue_capacity", 64)
        .set("batch_size", batch);
    let mut sut = registry
        .start(tide_store::sut::SUT_NAME, &options)
        .expect("start store");
    let hub = sut.hub().expect("store exposes native metrics").clone();
    let mut connector = sut.connector().expect("store connector");

    // Sample committed counts once a second on a background thread.
    let committed = hub.counter("store.events");
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let committed = committed.clone();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut series = Vec::new();
            let started = Instant::now();
            let mut last = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(500));
                let now = committed.get();
                series.push((started.elapsed().as_secs_f64(), (now - last) as f64 * 2.0));
                last = now;
            }
            series
        })
    };

    let replayer = Replayer::new(ReplayerConfig {
        target_rate: rate,
        ..Default::default()
    });
    let deadline = Instant::now() + window;
    // Replay entries until the window closes.
    let entries = stream
        .into_entries()
        .into_iter()
        .take_while(|_| Instant::now() < deadline);
    replayer
        .replay(entries, &mut connector)
        .expect("replay succeeds");

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let series = sampler.join().expect("sampler");
    drop(connector);
    sut.shutdown();

    for (t, committed_rate) in series {
        println!(
            "{:>10.0} {:>8} {:>6.1} {:>16.0} {:>16.0}",
            rate, batch, t, committed_rate, rate
        );
    }
}

/// The Figure 3b runs stream continuously; drop the two-phase pause.
fn strip_controls(stream: GraphStream) -> GraphStream {
    stream
        .into_entries()
        .into_iter()
        .filter(|e| !e.is_control())
        .collect()
}

//! **Figure 3a** — median throughput of the graph stream replayer for
//! given target rates, pipe vs TCP, with the (p5 … max) range.
//!
//! Paper setup (Table 2): a single local instance streams a generated
//! social-network workload either over a pipe (STDOUT → STDIN) or over a
//! local TCP socket; target rates 10k…320k events/s; the plot shows the
//! median with a range covering the 5th percentile to the maximum.
//!
//! Here "pipe" is a byte sink through the same line serialization the
//! paper's pipe used, and "TCP" is a real local socket drained by a
//! reader thread. Each cell replays ~0.5 s worth of events, repeated 7×.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;

use gt_analysis::Quantiles;
use gt_bench::{header, scale};
use gt_core::prelude::*;
use gt_replayer::{EventSink, Replayer, ReplayerConfig, TcpSink, WriterSink};
use gt_workloads::SnbWorkload;

const TARGET_RATES: [f64; 6] = [10_000.0, 20_000.0, 40_000.0, 80_000.0, 160_000.0, 320_000.0];
const REPETITIONS: usize = 7;

fn measure<S: EventSink>(stream: &GraphStream, rate: f64, sink: &mut S) -> f64 {
    let replayer = Replayer::new(ReplayerConfig {
        target_rate: rate,
        ..Default::default()
    });
    let report = replayer.replay_stream(stream, sink).expect("replay");
    report.achieved_rate
}

fn stream_for(rate: f64) -> GraphStream {
    // ~0.5 s of streaming per repetition (scaled).
    let events = ((rate * 0.5 * scale()) as u64).max(1_000);
    // Social workload per Table 2; persons:connections at the SNB ratio.
    let persons = (events / 19).max(2);
    SnbWorkload {
        persons,
        connections: events - persons,
        seed: 18,
    }
    .generate()
}

fn main() {
    header("Figure 3a: graph stream replayer throughput (pipe vs TCP)");
    println!("# Table 2 setup: generated social network workload, single instance");
    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>12}",
        "target[e/s]", "transport", "median[e/s]", "p5[e/s]", "max[e/s]"
    );

    for &rate in &TARGET_RATES {
        let stream = stream_for(rate);

        // Pipe: line-serialized bytes into an in-process sink.
        let mut pipe_rates = Vec::with_capacity(REPETITIONS);
        for _ in 0..REPETITIONS {
            let mut sink = WriterSink::new(std::io::sink());
            pipe_rates.push(measure(&stream, rate, &mut sink));
        }
        print_row(rate, "pipe", &pipe_rates);

        // TCP: real local socket, reader thread drains and counts lines.
        let mut tcp_rates = Vec::with_capacity(REPETITIONS);
        for _ in 0..REPETITIONS {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let drain = std::thread::spawn(move || {
                let (socket, _) = listener.accept().expect("accept");
                let reader = BufReader::with_capacity(1 << 20, socket);
                reader.lines().count()
            });
            let mut sink = TcpSink::connect(addr).expect("connect");
            let achieved = measure(&stream, rate, &mut sink);
            sink.flush().expect("flush");
            drop(sink);
            let received = drain.join().expect("drain");
            assert_eq!(received, stream.len(), "TCP receiver lost lines");
            tcp_rates.push(achieved);
        }
        print_row(rate, "tcp", &tcp_rates);
    }

    println!(
        "\nExpected shape (paper): achieved rate tracks the target closely at low\n\
         rates; beyond ~100k events/s the measured range (p5..max) widens while\n\
         the median stays roughly on target."
    );
}

fn print_row(rate: f64, transport: &str, rates: &[f64]) {
    // Degrade rather than abort: a repeat set can come back empty or
    // all-NaN if every attempt was salvaged away.
    match Quantiles::of(rates) {
        Some(q) => println!(
            "{:>12.0} {:>10} {:>12.0} {:>12.0} {:>12.0}",
            rate, transport, q.median, q.p5, q.max
        ),
        None => println!(
            "{rate:>12.0} {transport:>10} {:>38}",
            "insufficient samples"
        ),
    }
    let _ = std::io::stdout().flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Regression: an empty or all-NaN repeat set used to panic
    // `expect("non-empty")`; the row must degrade instead.
    #[test]
    fn empty_and_nan_rows_degrade_instead_of_panicking() {
        print_row(1000.0, "tcp", &[]);
        print_row(1000.0, "tcp", &[f64::NAN, f64::NAN]);
        print_row(1000.0, "tcp", &[900.0, 1000.0, 1100.0]);
    }
}

//! **Figure 3c** — CPU usage of the store's components over time at
//! 10,000 events/s batched as 10 events per transaction.
//!
//! Paper finding: "the evaluation showed a relatively high utilization of
//! the timestamper process of Weaver" — the serial ordering component
//! dominates, the shard processes stay comparatively idle. "This finding
//! could represent an entry point for optimizations."
//!
//! The store accounts each component's busy time into hub counters;
//! utilization is the per-interval busy-time delta over wall time — the
//! same computation a Level-0 `pidstat` logger would do per process.

use std::time::{Duration, Instant};

use gt_bench::{header, scaled};
use gt_core::prelude::*;
use gt_harness::{SutOptions, SutRegistry};
use gt_replayer::{Replayer, ReplayerConfig};
use gt_workloads::Table3Workload;

fn main() {
    header("Figure 3c: store component CPU at 10k events/s, 10 events/tx");
    let window = scaled(Duration::from_secs(6));
    let shards = 2usize;

    let events = (10_000.0 * window.as_secs_f64() * 1.2) as usize;
    let stream: GraphStream = Table3Workload::small(events, 7)
        .generate()
        .into_entries()
        .into_iter()
        .filter(|e| !e.is_control())
        .collect();

    let mut registry = SutRegistry::new();
    tide_store::sut::register(&mut registry);
    let options = SutOptions::new()
        .set("shards", shards)
        .set("timestamper_cost_us", 800)
        .set("shard_cost_us", 20)
        .set("queue_capacity", 64)
        .set("batch_size", 10);
    let mut sut = registry
        .start(tide_store::sut::SUT_NAME, &options)
        .expect("start store");
    let hub = sut.hub().expect("store exposes native metrics").clone();
    let mut connector = sut.connector().expect("store connector");

    // Sample busy-time deltas once per 500 ms.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let hub = hub.clone();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rows = Vec::new();
            let started = Instant::now();
            let mut last: Vec<u64> = vec![0; shards + 1];
            loop {
                std::thread::sleep(Duration::from_millis(500));
                let mut current = vec![hub.counter("timestamper.busy_micros").get()];
                for s in 0..shards {
                    current.push(hub.counter(&format!("shard-{s}.busy_micros")).get());
                }
                let t = started.elapsed().as_secs_f64();
                let cpu: Vec<f64> = current
                    .iter()
                    .zip(&last)
                    .map(|(now, prev)| (now - prev) as f64 / 500_000.0 * 100.0)
                    .collect();
                rows.push((t, cpu));
                last = current;
                if stop.load(std::sync::atomic::Ordering::Relaxed) {
                    return rows;
                }
            }
        })
    };

    let replayer = Replayer::new(ReplayerConfig {
        target_rate: 10_000.0,
        ..Default::default()
    });
    let deadline = Instant::now() + window;
    let entries = stream
        .into_entries()
        .into_iter()
        .take_while(|_| Instant::now() < deadline);
    replayer.replay(entries, &mut connector).expect("replay");

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let rows = sampler.join().expect("sampler");
    drop(connector);
    sut.shutdown();

    print!("{:>6} {:>16}", "t[s]", "timestamper[%]");
    for s in 0..shards {
        print!(" {:>12}", format!("shard-{s}[%]"));
    }
    println!();
    let mut ts_mean = 0.0;
    let mut shard_mean = 0.0;
    for (t, cpu) in &rows {
        print!("{t:>6.1} {:>16.1}", cpu[0]);
        for c in &cpu[1..] {
            print!(" {c:>12.1}");
        }
        println!();
        ts_mean += cpu[0];
        shard_mean += cpu[1..].iter().sum::<f64>() / shards as f64;
    }
    if !rows.is_empty() {
        ts_mean /= rows.len() as f64;
        shard_mean /= rows.len() as f64;
    }
    println!(
        "\nmean utilization: timestamper {ts_mean:.1}%, shards {shard_mean:.1}%\n\
         Expected shape (paper): the timestamper runs near saturation while\n\
         the shard processes stay far below it."
    );
}

//! **Table 1** — the example-computation catalogue, executed.
//!
//! The paper's Table 1 lists computation families suitable for
//! stream-based graph systems; this harness runs a representative of
//! every row on one evolving social graph, printing the result and the
//! wall time of each — the "computation goals" an analyst plugs into the
//! framework.

use std::time::Instant;

use gt_algorithms::online::{DegreeTracker, IncrementalWcc, ReservoirSampler, StreamingTriangles};
use gt_algorithms::OnlineComputation;
use gt_bench::header;
use gt_core::prelude::*;
use gt_graph::{CsrSnapshot, EvolvingGraph, GraphProperties};
use gt_workloads::SnbWorkload;

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let started = Instant::now();
    let result = f();
    (result, started.elapsed().as_secs_f64() * 1e3)
}

fn row(family: &str, example: &str, result: String, millis: f64) {
    println!("{family:<22} {example:<28} {result:<34} {millis:>9.2}ms");
}

fn main() {
    header("Table 1: example computations for stream-based graph systems");
    let workload = SnbWorkload::scaled(0.05, 5);
    let stream = workload.generate();
    let graph = EvolvingGraph::from_stream(&stream).expect("stream applies");
    let csr = CsrSnapshot::from_graph(&graph);
    println!(
        "workload: social stream, {} vertices, {} edges\n",
        graph.vertex_count(),
        graph.edge_count()
    );
    println!(
        "{:<22} {:<28} {:<34} {:>11}",
        "family", "computation", "result", "time"
    );

    // Graph statistics.
    let (props, ms) = timed(|| GraphProperties::measure(&graph));
    row(
        "graph statistics",
        "global properties",
        format!(
            "n={}, m={}, mean deg {:.1}",
            props.vertices, props.edges, props.mean_degree
        ),
        ms,
    );
    let (dist, ms) = timed(|| gt_graph::DegreeDistribution::total(&graph));
    row(
        "graph statistics",
        "degree distribution",
        format!("max {}, p(deg>=10) {:.3}", dist.max_degree(), dist.ccdf(10)),
        ms,
    );

    // Graph properties.
    let (pr, ms) = timed(|| {
        gt_algorithms::pagerank::pagerank(&csr, &gt_algorithms::pagerank::PageRankConfig::default())
    });
    let top = pr.top_k(1)[0];
    row(
        "graph properties",
        "PageRank",
        format!(
            "top vertex {} ({:.4}), {} iters",
            csr.id_of(top),
            pr.ranks[top as usize],
            pr.iterations
        ),
        ms,
    );
    let (cyc, ms) = timed(|| gt_algorithms::cycles::has_cycle(&csr));
    row(
        "graph properties",
        "cycle detection",
        format!("has cycle: {cyc}"),
        ms,
    );
    let (scc, ms) = timed(|| gt_algorithms::scc::strongly_connected_components(&csr));
    row(
        "graph properties",
        "strongly connected comp.",
        format!("{} SCCs, largest {}", scc.count, scc.largest()),
        ms,
    );
    let (bc, ms) = timed(|| gt_algorithms::centrality::approx_betweenness(&csr, 32));
    let top_bc = bc
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| csr.id_of(i as u32))
        .expect("non-empty");
    row(
        "graph properties",
        "betweenness (32 pivots)",
        format!("top broker: vertex {top_bc}"),
        ms,
    );

    // Routing & traversals.
    let (bfs, ms) = timed(|| gt_algorithms::traversal::bfs_distances(&csr, 0));
    let reachable = bfs
        .iter()
        .filter(|&&d| d != gt_algorithms::traversal::UNREACHABLE)
        .count();
    row(
        "routing & traversals",
        "breadth-first search",
        format!("{reachable} reachable from v0"),
        ms,
    );
    let (sp, ms) = timed(|| gt_algorithms::shortest::bellman_ford(&csr, 0));
    let finite = sp
        .as_ref()
        .map(|s| s.dist.iter().filter(|d| d.is_finite()).count())
        .unwrap_or(0);
    row(
        "routing & traversals",
        "Bellman-Ford",
        format!("{finite} finite distances"),
        ms,
    );
    let (forest, ms) = timed(|| gt_algorithms::spanning::minimum_spanning_forest(&csr));
    row(
        "routing & traversals",
        "spanning tree construction",
        format!(
            "{} edges, weight {:.0}",
            forest.edges.len(),
            forest.total_weight
        ),
        ms,
    );
    let (diam, ms) = timed(|| gt_algorithms::diameter::estimate_diameter(&csr, 4));
    row(
        "routing & traversals",
        "diameter estimation",
        format!("diameter >= {diam}"),
        ms,
    );

    // Graph theory.
    let (coloring, ms) = timed(|| gt_algorithms::coloring::greedy_coloring(&csr));
    row(
        "graph theory",
        "vertex coloring",
        format!(
            "{} colors (proper: {})",
            coloring.color_count,
            coloring.is_proper(&csr)
        ),
        ms,
    );
    let (tri, ms) = timed(|| gt_algorithms::triangles::triangle_count(&csr));
    row(
        "graph theory",
        "triangle count",
        format!("{tri} triangles"),
        ms,
    );

    // Communities.
    let (wcc, ms) = timed(|| gt_algorithms::components::weakly_connected_components(&csr));
    row(
        "communities",
        "weakly connected components",
        format!("{} components, largest {}", wcc.count, wcc.largest()),
        ms,
    );
    let (lp, ms) = timed(|| gt_algorithms::communities::label_propagation(&csr, 30));
    row(
        "communities",
        "community detection (LPA)",
        format!("{} communities in {} sweeps", lp.count, lp.iterations),
        ms,
    );
    let (km, ms) = timed(|| gt_algorithms::communities::kmeans_degree_features(&csr, 3, 30));
    row(
        "communities",
        "k-means (degree features)",
        format!("{} clusters, {} iters", km.centroids.len(), km.iterations),
        ms,
    );

    // Temporal analyses: online computations over the stream itself.
    println!();
    let events: Vec<GraphEvent> = stream.graph_events().cloned().collect();
    let (snapshot, ms) = timed(|| {
        let mut tracker = DegreeTracker::new();
        for e in &events {
            tracker.apply_event(e);
        }
        tracker.result()
    });
    row(
        "temporal analyses",
        "online degree stats",
        format!(
            "{} vertices, max deg {}",
            snapshot.vertices, snapshot.max_degree
        ),
        ms,
    );
    let (count, ms) = timed(|| {
        let mut tri = StreamingTriangles::new();
        for e in &events {
            tri.apply_event(e);
        }
        tri.count()
    });
    row(
        "temporal analyses",
        "streaming triangle count",
        format!("{count} triangles (matches batch: {})", count == tri),
        ms,
    );
    let (components, ms) = timed(|| {
        let mut wcc = IncrementalWcc::new();
        for e in &events {
            wcc.apply_event(e);
        }
        wcc.component_count()
    });
    row(
        "temporal analyses",
        "incremental WCC",
        format!(
            "{components} components (matches batch: {})",
            components == wcc.count
        ),
        ms,
    );
    let (sample, ms) = timed(|| {
        let mut sampler = ReservoirSampler::new(256, 1);
        for e in &events {
            sampler.apply_event(e);
        }
        sampler.estimate_fraction(|e| e.is_topology_change())
    });
    row(
        "temporal analyses",
        "online sampling",
        format!("topology-change share ~{sample:.2}"),
        ms,
    );
    let (trend, ms) = timed(|| {
        let mut timeline = gt_algorithms::online::PropertyTimeline::new(500);
        for e in &events {
            timeline.apply_event(e);
        }
        timeline.sample_now();
        gt_analysis::densification_exponent(&timeline.growth_samples())
    });
    row(
        "temporal analyses",
        "trend: densification law",
        match trend {
            Some(a) => format!("m ~ n^{a:.2}"),
            None => "insufficient samples".to_owned(),
        },
        ms,
    );
}

//! # gt-bench
//!
//! The experiment harness that regenerates every figure and table of the
//! paper's evaluation (§5). Each `fig*`/`table*` binary prints the same
//! rows/series the paper reports, scaled to run on one machine in seconds
//! rather than the paper's multi-machine, multi-minute setups — the
//! *shape* of each result (who wins, where ceilings and crossovers sit)
//! is the reproduction target, not absolute numbers.
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `fig3a_replayer` | Fig. 3a — replayer throughput, pipe vs TCP |
//! | `fig3b_store_throughput` | Fig. 3b — store events/s over time per rate × batch |
//! | `fig3c_store_cpu` | Fig. 3c — timestamper vs shard CPU over time |
//! | `fig3d_chronograph` | Fig. 3d — stacked engine time series + rank error |
//! | `table1_computations` | Table 1 — the computation catalogue, executed |
//!
//! Criterion microbenchmarks (`cargo bench`) cover the performance-
//! critical components and the ablations called out in `DESIGN.md`.

use std::time::Duration;

pub mod trajectory;

/// Scale factor for experiment durations, settable via the
/// `GT_BENCH_SCALE` environment variable (default 1.0). Values below 1
/// shorten runs proportionally — useful for CI smoke tests.
pub fn scale() -> f64 {
    std::env::var("GT_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s: &f64| *s > 0.0)
        .unwrap_or(1.0)
}

/// A duration scaled by [`scale`].
pub fn scaled(base: Duration) -> Duration {
    base.mul_f64(scale())
}

/// Prints a section header in the common harness style.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a time series as aligned columns.
pub fn print_series(label: &str, series: &[(f64, f64)]) {
    println!("# {label}");
    println!("{:>8}  {:>14}", "t[s]", "value");
    for (t, v) in series {
        println!("{t:>8.2}  {v:>14.2}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_one() {
        // The env var is not set under `cargo test`.
        if std::env::var("GT_BENCH_SCALE").is_err() {
            assert_eq!(scale(), 1.0);
        }
    }

    #[test]
    fn scaled_duration() {
        let d = scaled(Duration::from_secs(2));
        assert!(d > Duration::ZERO);
    }
}

//! Persistent performance trajectory for the ingest hot path.
//!
//! `gt-bench trajectory` measures the two paths this repo keeps
//! re-optimising — §4.2 CSV parsing and graph-event ingest — and writes
//! the results to `BENCH_parse.json` / `BENCH_ingest.json` at the repo
//! root. The files are committed, so every PR that touches the hot path
//! leaves a measured before/after trail instead of a claim in prose.
//!
//! Each run prints a delta against the previous committed numbers; with
//! `--check` a >15% median-ns/event regression in any suite fails the
//! run (allocation counters only warn — they are exact, but machine-
//! independent thresholds for them are not meaningful).
//!
//! The JSON is hand-written and hand-parsed (the workspace deliberately
//! vendors no `serde_json`): one suite per line, fixed key order, flat
//! numeric fields. See [`BenchRecord`].

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A global allocator wrapper that counts allocations, for measuring the
/// allocation rate of the hot paths. Install it in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: gt_bench::trajectory::CountingAlloc = CountingAlloc;
/// ```
pub struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        std::alloc::System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        std::alloc::System.realloc(ptr, layout, new_size)
    }
}

/// Allocations observed so far in this process (0 until a binary installs
/// [`CountingAlloc`] as its `#[global_allocator]`).
pub fn alloc_count() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

/// One measured suite: the unit every `BENCH_*.json` line stores.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Suite name, e.g. `parse/borrowed`.
    pub name: String,
    /// Median over rounds of (wall ns / events).
    pub median_ns_per_event: f64,
    /// Throughput implied by the median round.
    pub events_per_sec: f64,
    /// Median over rounds of (allocations / events). Exact when the
    /// counting allocator is installed, 0 otherwise.
    pub allocs_per_event: f64,
    /// Events per round.
    pub events: u64,
    /// Measurement rounds taken.
    pub rounds: u32,
}

/// Measures `f` over `rounds` repetitions of `events` events and reduces
/// to medians. `f` must perform exactly `events` events per call.
pub fn measure(name: &str, events: u64, rounds: u32, mut f: impl FnMut()) -> BenchRecord {
    assert!(events > 0 && rounds > 0);
    // One warm-up round outside the sample set (page faults, lazy init).
    f();
    let mut ns: Vec<f64> = Vec::with_capacity(rounds as usize);
    let mut allocs: Vec<f64> = Vec::with_capacity(rounds as usize);
    for _ in 0..rounds {
        let a0 = alloc_count();
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_nanos() as f64;
        let da = (alloc_count() - a0) as f64;
        ns.push(dt / events as f64);
        allocs.push(da / events as f64);
    }
    let median_ns = median(&mut ns);
    BenchRecord {
        name: name.to_owned(),
        median_ns_per_event: median_ns,
        events_per_sec: if median_ns > 0.0 {
            1e9 / median_ns
        } else {
            0.0
        },
        allocs_per_event: median(&mut allocs),
        events,
        rounds,
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Serializes one trajectory area (`parse`, `ingest`) to the committed
/// JSON format: one suite object per line, fixed key order.
pub fn to_json(area: &str, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"area\": \"{area}\",");
    let _ = writeln!(out, "  \"suites\": [");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"median_ns_per_event\": {:.2}, \
             \"events_per_sec\": {:.0}, \"allocs_per_event\": {:.3}, \
             \"events\": {}, \"rounds\": {}}}{comma}",
            r.name, r.median_ns_per_event, r.events_per_sec, r.allocs_per_event, r.events, r.rounds,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Parses the format written by [`to_json`]. Tolerant of whitespace and
/// field reordering, but not a general JSON parser — it only needs to
/// read files this module wrote.
pub fn from_json(text: &str) -> Vec<BenchRecord> {
    let mut records = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !(line.starts_with('{') && line.contains("\"name\"")) {
            continue;
        }
        let Some(name) = extract_str(line, "name") else {
            continue;
        };
        records.push(BenchRecord {
            name,
            median_ns_per_event: extract_num(line, "median_ns_per_event").unwrap_or(0.0),
            events_per_sec: extract_num(line, "events_per_sec").unwrap_or(0.0),
            allocs_per_event: extract_num(line, "allocs_per_event").unwrap_or(0.0),
            events: extract_num(line, "events").unwrap_or(0.0) as u64,
            rounds: extract_num(line, "rounds").unwrap_or(0.0) as u32,
        });
    }
    records
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_owned())
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = line[line.find(&pat)? + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Outcome of comparing a fresh run against the committed numbers.
#[derive(Debug, Default)]
pub struct Delta {
    /// Suites whose median ns/event regressed beyond the threshold:
    /// `(name, old_ns, new_ns)`.
    pub regressions: Vec<(String, f64, f64)>,
    /// Suites whose allocation counter grew: `(name, old, new)`.
    pub alloc_warnings: Vec<(String, f64, f64)>,
}

/// Allowed median-ns/event growth before [`compare`] flags a regression.
pub const REGRESSION_THRESHOLD: f64 = 0.15;

/// Compares fresh records against previously committed ones, printing a
/// per-suite delta line and collecting regressions beyond
/// [`REGRESSION_THRESHOLD`] plus any allocation-counter growth (both
/// fail `gt-bench --check`).
pub fn compare(previous: &[BenchRecord], fresh: &[BenchRecord]) -> Delta {
    let mut delta = Delta::default();
    for new in fresh {
        let Some(old) = previous.iter().find(|r| r.name == new.name) else {
            println!(
                "  {:<28} {:>9.1} ns/event  {:>12.0} events/s  {:>7.3} allocs/event  (new suite)",
                new.name, new.median_ns_per_event, new.events_per_sec, new.allocs_per_event
            );
            continue;
        };
        if old.events != new.events {
            // Per-event medians are only comparable at equal scale — a
            // changed event count resets the baseline rather than gating.
            println!(
                "  {:<28} {:>9.1} ns/event  {:>12.0} events/s  {:>7.3} allocs/event  (scale changed, baseline reset)",
                new.name, new.median_ns_per_event, new.events_per_sec, new.allocs_per_event
            );
            continue;
        }
        let pct = if old.median_ns_per_event > 0.0 {
            (new.median_ns_per_event - old.median_ns_per_event) / old.median_ns_per_event * 100.0
        } else {
            0.0
        };
        println!(
            "  {:<28} {:>9.1} ns/event  {:>12.0} events/s  {:>7.3} allocs/event  ({pct:+.1}% vs committed)",
            new.name, new.median_ns_per_event, new.events_per_sec, new.allocs_per_event
        );
        if pct > REGRESSION_THRESHOLD * 100.0 {
            delta.regressions.push((
                new.name.clone(),
                old.median_ns_per_event,
                new.median_ns_per_event,
            ));
        }
        // Tolerance matches the file's 3-decimal serialization so a
        // re-read baseline never warns against its own measurement.
        if new.allocs_per_event > old.allocs_per_event + 5e-3 {
            delta.alloc_warnings.push((
                new.name.clone(),
                old.allocs_per_event,
                new.allocs_per_event,
            ));
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, ns: f64, allocs: f64) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            median_ns_per_event: ns,
            events_per_sec: if ns > 0.0 { 1e9 / ns } else { 0.0 },
            allocs_per_event: allocs,
            events: 1000,
            rounds: 5,
        }
    }

    #[test]
    fn json_round_trips() {
        let records = vec![
            rec("parse/borrowed", 41.25, 0.0),
            rec("parse/owned", 93.5, 1.004),
        ];
        let text = to_json("parse", &records);
        let back = from_json(&text);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "parse/borrowed");
        assert!((back[0].median_ns_per_event - 41.25).abs() < 1e-9);
        assert!((back[1].allocs_per_event - 1.004).abs() < 1e-9);
        assert_eq!(back[1].events, 1000);
        assert_eq!(back[1].rounds, 5);
    }

    #[test]
    fn measure_produces_sane_numbers() {
        let r = measure("noop-ish", 1000, 3, || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(acc);
        });
        assert_eq!(r.events, 1000);
        assert_eq!(r.rounds, 3);
        assert!(r.median_ns_per_event >= 0.0);
        assert!(r.events_per_sec > 0.0);
    }

    #[test]
    fn compare_flags_regressions_and_alloc_growth() {
        let old = vec![rec("a", 100.0, 1.0), rec("b", 100.0, 1.0)];
        let new = vec![rec("a", 120.0, 1.0), rec("b", 105.0, 2.0)];
        let delta = compare(&old, &new);
        assert_eq!(delta.regressions.len(), 1);
        assert_eq!(delta.regressions[0].0, "a");
        assert_eq!(delta.alloc_warnings.len(), 1);
        assert_eq!(delta.alloc_warnings[0].0, "b");
    }

    #[test]
    fn compare_skips_mismatched_scales() {
        let mut old = rec("a", 100.0, 1.0);
        old.events = 500; // committed at a different scale
        let delta = compare(&[old], &[rec("a", 200.0, 2.0)]);
        assert!(delta.regressions.is_empty());
        assert!(delta.alloc_warnings.is_empty());
    }

    #[test]
    fn compare_tolerates_new_suites() {
        let delta = compare(&[], &[rec("fresh", 50.0, 0.0)]);
        assert!(delta.regressions.is_empty());
        assert!(delta.alloc_warnings.is_empty());
    }

    #[test]
    fn median_of_even_and_odd() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }
}

//! Benchmarks and ablations of the tide-graph engine: ingestion
//! throughput, the push-threshold (ε) cost curve, and the queue-discipline
//! ablation from DESIGN.md — a shared mailbox (the Chronograph pathology)
//! vs pre-draining mutations before computation.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gt_core::prelude::*;
use gt_metrics::MetricsHub;
use gt_workloads::SnbWorkload;
use tide_graph::{EngineConfig, RankParams, TideGraph};

fn social_events(persons: u64, connections: u64) -> Vec<GraphEvent> {
    SnbWorkload {
        persons,
        connections,
        seed: 31,
    }
    .generate()
    .graph_events()
    .cloned()
    .collect()
}

/// Ingests all events and waits for full quiescence.
fn run_engine(events: &[GraphEvent], epsilon: f64) -> u64 {
    run_engine_with(events, epsilon, 64)
}

fn run_engine_with(events: &[GraphEvent], epsilon: f64, drain_batch: usize) -> u64 {
    let hub = MetricsHub::new();
    let engine = Arc::new(TideGraph::start(
        EngineConfig {
            workers: 4,
            rank: RankParams {
                epsilon,
                ..Default::default()
            },
            drain_batch,
            ..Default::default()
        },
        &hub,
    ));
    for e in events {
        engine.ingest(e.clone());
    }
    assert!(engine.quiesce(Duration::from_secs(120)));
    let engine = Arc::try_unwrap(engine).ok().expect("sole owner");
    let stats = engine.shutdown();
    stats.shares
}

fn bench_epsilon_ablation(c: &mut Criterion) {
    let events = social_events(200, 1_800);
    let mut group = c.benchmark_group("engine_epsilon");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    for epsilon in [1e-1, 1e-2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{epsilon:e}")),
            &epsilon,
            |b, &epsilon| b.iter(|| run_engine(&events, epsilon)),
        );
    }
    group.finish();
}

fn bench_ingest_throughput(c: &mut Criterion) {
    let events = social_events(500, 4_500);
    let mut group = c.benchmark_group("engine_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("snb_5k_events_to_quiescence", |b| {
        b.iter(|| run_engine(&events, 1e-2))
    });
    group.finish();
}

fn bench_drain_batch_ablation(c: &mut Criterion) {
    // The queue-discipline ablation of DESIGN.md: per-message pushes
    // (drain_batch = 1, the naive engine) vs coalesced pushes across a
    // 64-message drain. Coalescing cuts share traffic at fan-in hubs.
    let events = social_events(150, 1_350);
    let mut group = c.benchmark_group("engine_drain_batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    for drain in [1usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(drain), &drain, |b, &drain| {
            b.iter(|| run_engine_with(&events, 1e-2, drain))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_epsilon_ablation,
    bench_ingest_throughput,
    bench_drain_batch_ablation
);
criterion_main!(benches);

//! The §4.2 parse-path ablation behind the zero-allocation ingest
//! refactor: `parse/borrowed-vs-owned` pits [`parse_line_ref`] (borrowed
//! `StreamEntryRef`, no per-line heap traffic) against [`parse_line`]
//! (owned `StreamEntry`, one `String` per stateful event). The borrowed
//! row must win — it is the same validation logic minus the copies.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gt_core::format::{entry_to_line, parse_line, parse_line_ref};
use gt_core::prelude::*;
use std::hint::black_box;

const N: u64 = 10_000;

fn sample_lines() -> Vec<String> {
    (0..N)
        .map(|i| {
            let entry = match i % 4 {
                0 => StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::new("name=v"),
                }),
                1 => StreamEntry::graph(GraphEvent::AddEdge {
                    id: EdgeId::from((i, (i * 7) % N)),
                    state: State::weight(1.5),
                }),
                2 => StreamEntry::graph(GraphEvent::UpdateEdge {
                    id: EdgeId::from((i, (i * 7) % N)),
                    state: State::weight(2.5),
                }),
                _ => StreamEntry::marker(format!("w-{i}")),
            };
            entry_to_line(&entry)
        })
        .collect()
}

fn bench_borrowed_vs_owned(c: &mut Criterion) {
    let lines = sample_lines();
    let mut group = c.benchmark_group("parse/borrowed-vs-owned");
    group.throughput(Throughput::Elements(N));
    group.bench_function("borrowed", |b| {
        b.iter(|| {
            let mut kept = 0usize;
            for line in &lines {
                if parse_line_ref(black_box(line)).unwrap().is_some() {
                    kept += 1;
                }
            }
            kept
        })
    });
    group.bench_function("owned", |b| {
        b.iter(|| {
            let mut kept = 0usize;
            for line in &lines {
                if parse_line(black_box(line)).unwrap().is_some() {
                    kept += 1;
                }
            }
            kept
        })
    });
    group.finish();
}

criterion_group!(benches, bench_borrowed_vs_owned);
criterion_main!(benches);

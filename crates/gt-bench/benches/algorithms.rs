//! Microbenchmarks of the Table 1 computation catalogue — batch references
//! and the online variants' per-event cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gt_algorithms::online::{DegreeTracker, IncrementalWcc, StreamingTriangles};
use gt_algorithms::pagerank::{pagerank, PageRankConfig};
use gt_algorithms::OnlineComputation;
use gt_core::prelude::*;
use gt_graph::builders::BarabasiAlbert;
use gt_graph::{CsrSnapshot, EvolvingGraph};
use std::hint::black_box;

fn ba_graph() -> (GraphStream, CsrSnapshot) {
    let stream = BarabasiAlbert {
        n: 2_000,
        m0: 20,
        m: 5,
        seed: 11,
    }
    .generate();
    let graph = EvolvingGraph::from_stream(&stream).expect("applies");
    let csr = CsrSnapshot::from_graph(&graph);
    (stream, csr)
}

fn bench_batch_algorithms(c: &mut Criterion) {
    let (_, csr) = ba_graph();
    let mut group = c.benchmark_group("batch");
    group.bench_function("pagerank_ba2000", |b| {
        b.iter(|| pagerank(black_box(&csr), &PageRankConfig::default()))
    });
    group.bench_function("wcc_ba2000", |b| {
        b.iter(|| gt_algorithms::components::weakly_connected_components(black_box(&csr)))
    });
    group.bench_function("triangles_ba2000", |b| {
        b.iter(|| gt_algorithms::triangles::triangle_count(black_box(&csr)))
    });
    group.bench_function("bfs_ba2000", |b| {
        b.iter(|| gt_algorithms::traversal::bfs_distances(black_box(&csr), 0))
    });
    group.bench_function("coloring_ba2000", |b| {
        b.iter(|| gt_algorithms::coloring::greedy_coloring(black_box(&csr)))
    });
    group.bench_function("diameter_estimate_ba2000", |b| {
        b.iter(|| gt_algorithms::diameter::estimate_diameter(black_box(&csr), 4))
    });
    group.finish();
}

fn bench_online_ingestion(c: &mut Criterion) {
    let (stream, _) = ba_graph();
    let events: Vec<GraphEvent> = stream.graph_events().cloned().collect();
    let mut group = c.benchmark_group("online");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("degree_tracker_ingest", |b| {
        b.iter_batched(
            DegreeTracker::new,
            |mut tracker| {
                for e in &events {
                    tracker.apply_event(black_box(e));
                }
                tracker
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("streaming_triangles_ingest", |b| {
        b.iter_batched(
            StreamingTriangles::new,
            |mut tri| {
                for e in &events {
                    tri.apply_event(black_box(e));
                }
                tri.count()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("incremental_wcc_ingest", |b| {
        b.iter_batched(
            IncrementalWcc::new,
            |mut wcc| {
                for e in &events {
                    wcc.apply_event(black_box(e));
                }
                wcc.component_count()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_graph_apply(c: &mut Criterion) {
    let (stream, _) = ba_graph();
    let events: Vec<GraphEvent> = stream.graph_events().cloned().collect();
    let mut group = c.benchmark_group("graph");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("evolving_graph_apply", |b| {
        b.iter_batched(
            EvolvingGraph::new,
            |mut g| {
                for e in &events {
                    g.apply(black_box(e)).unwrap();
                }
                g
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("csr_snapshot", |b| {
        let g = EvolvingGraph::from_stream(&stream).unwrap();
        b.iter(|| CsrSnapshot::from_graph(black_box(&g)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_algorithms,
    bench_online_ingestion,
    bench_graph_apply
);
criterion_main!(benches);

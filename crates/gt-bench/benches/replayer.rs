//! Microbenchmarks of the replayer's performance-critical pieces: line
//! serialization, sink throughput, and the pacing ablation called out in
//! DESIGN.md (hybrid sleep+spin vs pure sleep accuracy is covered by the
//! fig3a harness; here we measure the *overhead* ceiling — how fast the
//! replayer can emit when pacing is effectively off).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gt_core::format::entry_to_line;
use gt_core::prelude::*;
use gt_replayer::{CollectSink, EventSink, Replayer, ReplayerConfig, WriterSink};
use gt_workloads::SnbWorkload;
use std::hint::black_box;

fn sample_stream() -> GraphStream {
    SnbWorkload {
        persons: 500,
        connections: 9_500,
        seed: 1,
    }
    .generate()
}

fn bench_serialization(c: &mut Criterion) {
    let stream = sample_stream();
    let mut group = c.benchmark_group("format");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("serialize_10k_events", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for entry in stream.entries() {
                total += entry_to_line(black_box(entry)).len();
            }
            total
        })
    });
    group.bench_function("parse_10k_events", |b| {
        let text = stream.to_csv_string();
        b.iter(|| GraphStream::parse_csv(black_box(&text)).unwrap())
    });
    group.finish();
}

fn bench_unpaced_emission(c: &mut Criterion) {
    let stream = sample_stream();
    let mut group = c.benchmark_group("replayer");
    group.throughput(Throughput::Elements(stream.stats().graph_events as u64));
    group.bench_function("writer_sink_max_rate", |b| {
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e9, // pacing effectively disabled
            honor_pauses: false,
            ..Default::default()
        });
        b.iter_batched(
            || stream.clone(),
            |s| {
                let mut sink = WriterSink::new(std::io::sink());
                replayer.replay_stream(&s, &mut sink).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("collect_sink_max_rate", |b| {
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e9,
            honor_pauses: false,
            ..Default::default()
        });
        b.iter_batched(
            || stream.clone(),
            |s| {
                let mut sink = CollectSink::new();
                replayer.replay_stream(&s, &mut sink).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_sink_send(c: &mut Criterion) {
    let entry = StreamEntry::graph(GraphEvent::AddEdge {
        id: EdgeId::from((123, 456)),
        state: State::new("w=1.5"),
    });
    let mut group = c.benchmark_group("sink");
    group.throughput(Throughput::Elements(1));
    group.bench_function("writer_sink_send", |b| {
        let mut sink = WriterSink::new(std::io::sink());
        b.iter(|| sink.send(black_box(&entry)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_serialization,
    bench_unpaced_emission,
    bench_sink_send
);
criterion_main!(benches);

//! Microbenchmarks of the ingest hot path refactored in the gt-sut PR:
//! the parse/serialize round-trip and — the acceptance check of that
//! refactor — per-event vs. batched sink dispatch. Batched dispatch moves
//! `Arc` handles instead of cloning `GraphEvent` payloads, so the batched
//! rows should beat the per-event rows for both the writer sink and the
//! store connector.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gt_core::format::{entry_to_line, parse_line, write_line};
use gt_core::prelude::*;
use gt_metrics::MetricsHub;
use gt_replayer::{EventSink, WriterSink};
use std::hint::black_box;
use std::time::Duration;
use tide_store::{BatchingConnector, StoreConfig, TideStore};

const N: u64 = 10_000;

fn sample_entries() -> Vec<StreamEntry> {
    (0..N)
        .map(|i| {
            if i % 2 == 0 {
                StreamEntry::graph(GraphEvent::AddVertex {
                    id: VertexId(i),
                    state: State::new("name=v"),
                })
            } else {
                StreamEntry::graph(GraphEvent::AddEdge {
                    id: EdgeId::from((i - 1, (i + 1) % N)),
                    state: State::new("w=1.5"),
                })
            }
        })
        .collect()
}

fn shared(entries: &[StreamEntry]) -> Vec<SharedEntry> {
    entries
        .iter()
        .map(|e| SharedEntry::new(e.clone()))
        .collect()
}

fn bench_round_trip(c: &mut Criterion) {
    let entries = sample_entries();
    let lines: Vec<String> = entries.iter().map(entry_to_line).collect();
    let mut group = c.benchmark_group("ingest/format");
    group.throughput(Throughput::Elements(N));
    group.bench_function("parse_10k_lines", |b| {
        b.iter(|| {
            let mut parsed = 0usize;
            for line in &lines {
                if parse_line(black_box(line)).unwrap().is_some() {
                    parsed += 1;
                }
            }
            parsed
        })
    });
    group.bench_function("serialize_10k_alloc_per_line", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for entry in &entries {
                total += entry_to_line(black_box(entry)).len();
            }
            total
        })
    });
    group.bench_function("serialize_10k_reused_buffer", |b| {
        let mut buf = String::with_capacity(64);
        b.iter(|| {
            let mut total = 0usize;
            for entry in &entries {
                buf.clear();
                write_line(black_box(entry), &mut buf);
                total += buf.len();
            }
            total
        })
    });
    group.finish();
}

fn bench_writer_dispatch(c: &mut Criterion) {
    let entries = sample_entries();
    let batch = shared(&entries);
    // Both rows dispatch from `SharedEntry` handles — the replayer's
    // channel hands the sink shared entries on either path — and write to
    // an unbuffered `File`, so per-event dispatch pays one write syscall
    // per line while batched dispatch pays one per burst (the replayer's
    // default `max_batch` of 256).
    let mut group = c.benchmark_group("ingest/writer_sink");
    group.throughput(Throughput::Elements(N));
    group.bench_function("per_event", |b| {
        let mut sink = WriterSink::new(devnull());
        b.iter(|| {
            for entry in &batch {
                sink.send(black_box(entry.as_ref())).unwrap();
            }
            sink.flush().unwrap()
        })
    });
    group.bench_function("batched", |b| {
        let mut sink = WriterSink::new(devnull());
        b.iter(|| {
            for burst in batch.chunks(256) {
                sink.send_batch(black_box(burst)).unwrap();
            }
            sink.flush().unwrap()
        })
    });
    group.finish();
}

fn devnull() -> std::fs::File {
    std::fs::OpenOptions::new()
        .write(true)
        .open("/dev/null")
        .expect("open /dev/null")
}

fn bench_connector_dispatch(c: &mut Criterion) {
    let entries = sample_entries();
    let batch = shared(&entries);
    // A zero-cost store: the measured work is the connector's dispatch
    // (clone vs. Arc hand-off), not the store's simulated processing.
    let store_config = StoreConfig {
        shards: 2,
        timestamper_cost_per_tx: Duration::ZERO,
        shard_cost_per_event: Duration::ZERO,
        queue_capacity: 4096,
        supervised: false,
    };
    let mut group = c.benchmark_group("ingest/store_connector");
    group.throughput(Throughput::Elements(N));
    group.bench_function("per_event", |b| {
        b.iter_batched(
            || {
                let hub = MetricsHub::new();
                TideStore::start(store_config.clone(), &hub)
            },
            |store| {
                let mut connector = BatchingConnector::new(store.client(), 10);
                for entry in &batch {
                    connector.send(black_box(entry.as_ref())).unwrap();
                }
                connector.flush().unwrap();
                store.shutdown()
            },
            BatchSize::PerIteration,
        )
    });
    group.bench_function("batched", |b| {
        b.iter_batched(
            || {
                let hub = MetricsHub::new();
                TideStore::start(store_config.clone(), &hub)
            },
            |store| {
                let mut connector = BatchingConnector::new(store.client(), 10);
                connector.send_batch(black_box(&batch)).unwrap();
                connector.flush().unwrap();
                store.shutdown()
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_traced_dispatch(c: &mut Criterion) {
    use gt_metrics::{Clock, WallClock};
    use gt_trace::{Stage, TraceConfig, Tracer};
    use std::sync::Arc;

    let entries = sample_entries();
    let batch = shared(&entries);
    let store_config = StoreConfig {
        shards: 2,
        timestamper_cost_per_tx: Duration::ZERO,
        shard_cost_per_event: Duration::ZERO,
        queue_capacity: 4096,
        supervised: false,
    };
    // The Level-2 tracing overhead budget (ISSUE acceptance): the traced
    // row stamps a ConnectorRecv tracepoint for 1 event in 64 and an
    // EngineApply stamp on the shard threads, and must stay within 5% of
    // the untraced row. The collector thread runs concurrently, as it
    // would in a real run.
    let mut group = c.benchmark_group("ingest/tracing");
    group.throughput(Throughput::Elements(N));
    group.bench_function("untraced", |b| {
        b.iter_batched(
            || {
                let hub = MetricsHub::new();
                TideStore::start(store_config.clone(), &hub)
            },
            |store| {
                let mut connector = BatchingConnector::new(store.client(), 10);
                connector.send_batch(black_box(&batch)).unwrap();
                connector.flush().unwrap();
                store.shutdown()
            },
            BatchSize::PerIteration,
        )
    });
    group.bench_function("traced_1_in_64", |b| {
        b.iter_batched(
            || {
                let hub = MetricsHub::new();
                let store = TideStore::start(store_config.clone(), &hub);
                let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
                let trace_hub = MetricsHub::new();
                let tracer = Tracer::new(TraceConfig::default().sampling(64), clock, &trace_hub);
                store.tracer_cell().install(&tracer);
                (store, tracer)
            },
            |(store, tracer)| {
                let mut connector = BatchingConnector::new(store.client(), 10)
                    .with_trace_probe(tracer.probe(Stage::ConnectorRecv));
                connector.send_batch(black_box(&batch)).unwrap();
                connector.flush().unwrap();
                let stats = store.shutdown();
                tracer.stop();
                stats
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_round_trip,
    bench_writer_dispatch,
    bench_connector_dispatch,
    bench_traced_dispatch
);
criterion_main!(benches);

//! Benchmarks of stream generation: bootstrap builders, rule-driven
//! evolution, the Zipf sampler, and fault injection.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gt_faults::{DropFaults, FaultInjector, ShuffleWindows};
use gt_generator::{MixModel, StreamGenerator, ZipfSampler};
use gt_graph::builders::BarabasiAlbert;
use gt_workloads::SnbWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("bootstrap");
    group.sample_size(10);
    group.bench_function("barabasi_albert_10k_m50", |b| {
        // The exact Table 3 bootstrap.
        b.iter(|| BarabasiAlbert::table3().generate())
    });
    group.finish();
}

fn bench_evolution(c: &mut Criterion) {
    let bootstrap = BarabasiAlbert {
        n: 1_000,
        m0: 20,
        m: 5,
        seed: 3,
    }
    .generate();
    let mut group = c.benchmark_group("evolution");
    group.sample_size(10);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("table3_mix_10k_rounds", |b| {
        b.iter_batched(
            || {
                let mut generator = StreamGenerator::new(MixModel::table3(), 5);
                generator.bootstrap(&bootstrap).unwrap();
                generator
            },
            |mut generator| generator.evolve(10_000),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");
    group.sample_size(10);
    group.bench_function("snb_19k_events", |b| {
        b.iter(|| SnbWorkload::scaled(0.1, 1).generate())
    });
    group.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf");
    group.throughput(Throughput::Elements(1));
    group.bench_function("sample_n10000", |b| {
        let sampler = ZipfSampler::new(1.0);
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| sampler.sample(black_box(10_000), &mut rng))
    });
    group.finish();
}

fn bench_faults(c: &mut Criterion) {
    let stream = SnbWorkload {
        persons: 500,
        connections: 9_500,
        seed: 2,
    }
    .generate();
    let mut group = c.benchmark_group("faults");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("drop_10k", |b| {
        let injector = DropFaults { probability: 0.2 };
        b.iter_batched(
            || stream.clone(),
            |s| injector.inject(s, 9),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("shuffle_10k_w64", |b| {
        let injector = ShuffleWindows { window: 64 };
        b.iter_batched(
            || stream.clone(),
            |s| injector.inject(s, 9),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bootstrap,
    bench_evolution,
    bench_workloads,
    bench_zipf,
    bench_faults
);
criterion_main!(benches);

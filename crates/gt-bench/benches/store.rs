//! Ablation benchmarks of the tide-store design choices (DESIGN.md §5):
//! the timestamper cost model (per-transaction vs per-event) and the
//! batching factor — the mechanism behind Figure 3b's ceiling shift.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gt_core::prelude::*;
use gt_metrics::MetricsHub;
use tide_store::{StoreConfig, TideStore, Transaction};

fn vertex_events(n: u64) -> Vec<GraphEvent> {
    (0..n)
        .map(|i| GraphEvent::AddVertex {
            id: VertexId(i),
            state: State::empty(),
        })
        .collect()
}

/// Commits 2,000 events through a fresh store with the given batch size
/// and a small (10 µs) timestamper cost; returns after full drain.
fn commit_all(batch: usize, ts_cost: Duration) {
    let hub = MetricsHub::new();
    let store = TideStore::start(
        StoreConfig {
            shards: 2,
            timestamper_cost_per_tx: ts_cost,
            shard_cost_per_event: Duration::ZERO,
            queue_capacity: 128,
            supervised: false,
        },
        &hub,
    );
    let client = store.client();
    for chunk in vertex_events(2_000).chunks(batch) {
        client
            .submit(Transaction::from_events(chunk.iter().cloned()))
            .expect("store alive");
    }
    let stats = store.shutdown();
    assert_eq!(stats.events, 2_000);
}

fn bench_batching_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_batching");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2_000));
    for batch in [1usize, 5, 10, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| commit_all(batch, Duration::from_micros(10)));
        });
    }
    group.finish();
}

fn bench_zero_cost_pipeline(c: &mut Criterion) {
    // The pure pipeline overhead: channel hops + shard routing + logging,
    // with simulated component costs off.
    let mut group = c.benchmark_group("store_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2_000));
    group.bench_function("overhead_batch10", |b| {
        b.iter(|| commit_all(10, Duration::ZERO));
    });
    group.finish();
}

criterion_group!(benches, bench_batching_ablation, bench_zero_cost_pipeline);
criterion_main!(benches);

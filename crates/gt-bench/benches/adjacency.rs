//! The hybrid-adjacency ablation: `adjacency/hybrid-vs-map` replays the
//! same skewed insert/lookup/remove workload against
//! [`HybridAdjacency`] and a plain `BTreeMap` per-vertex adjacency. Most
//! real vertices stay below the inline capacity, so the hybrid rows
//! should match or beat the map rows — that is the acceptance check for
//! adopting it across the engine and store partitions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gt_core::prelude::*;
use gt_graph::HybridAdjacency;
use std::collections::BTreeMap;
use std::hint::black_box;

const OPS: u64 = 10_000;

/// A skewed op stream over per-vertex adjacency lists: ~90% of vertices
/// keep degree <= 8 (inline territory) and a few hubs blow past it.
fn sample_ops() -> Vec<(VertexId, VertexId, u8)> {
    let mut x = 0xC0FF_EE11u64;
    (0..OPS)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // 16 hub sources get a fan-out of up to 256 targets; the
            // remaining 1024 sources stay within the inline capacity.
            let (src, dst) = if x % 10 < 2 {
                (VertexId((x >> 13) % 16), VertexId((x >> 29) % 256))
            } else {
                (VertexId(16 + (x >> 13) % 1024), VertexId((x >> 29) % 8))
            };
            (src, dst, (x % 16) as u8)
        })
        .collect()
}

fn bench_hybrid_vs_map(c: &mut Criterion) {
    let ops = sample_ops();
    let mut group = c.benchmark_group("adjacency/hybrid-vs-map");
    group.throughput(Throughput::Elements(OPS));
    group.bench_function("hybrid", |b| {
        b.iter_batched(
            BTreeMap::<VertexId, HybridAdjacency<u64>>::new,
            |mut adj| {
                for &(src, dst, op) in &ops {
                    let list = adj.entry(src).or_default();
                    match op {
                        0..=9 => {
                            list.insert(dst, dst.0);
                        }
                        10..=13 => {
                            black_box(list.get(dst));
                        }
                        _ => {
                            list.remove(dst);
                        }
                    }
                }
                adj
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("map", |b| {
        b.iter_batched(
            BTreeMap::<VertexId, BTreeMap<VertexId, u64>>::new,
            |mut adj| {
                for &(src, dst, op) in &ops {
                    let list = adj.entry(src).or_default();
                    match op {
                        0..=9 => {
                            list.insert(dst, dst.0);
                        }
                        10..=13 => {
                            black_box(list.get(&dst));
                        }
                        _ => {
                            list.remove(&dst);
                        }
                    }
                }
                adj
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_hybrid_vs_map);
criterion_main!(benches);

//! Run-relative clocks.
//!
//! All timestamps in the framework are microseconds since run start. The
//! paper requires synchronized clocks across components (§4.1, PTP); in
//! this single-process reproduction every component shares one [`Clock`]
//! handle, which is the strongest possible synchronization. [`ManualClock`]
//! makes simulated experiments fully deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A source of run-relative time.
pub trait Clock: Send + Sync {
    /// Microseconds since run start.
    fn now_micros(&self) -> u64;

    /// Seconds since run start.
    fn now_secs(&self) -> f64 {
        self.now_micros() as f64 / 1e6
    }
}

/// Wall-clock time anchored at construction.
#[derive(Debug, Clone)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Starts a new run clock at the current instant.
    pub fn start() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn now_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

/// A manually advanced clock for deterministic simulations and tests.
/// Cloning shares the underlying time.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    micros: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances by the given number of microseconds.
    pub fn advance_micros(&self, delta: u64) {
        self.micros.fetch_add(delta, Ordering::SeqCst);
    }

    /// Advances by (fractional) seconds.
    pub fn advance_secs(&self, secs: f64) {
        self.advance_micros((secs * 1e6) as u64);
    }

    /// Sets the absolute time in microseconds.
    pub fn set_micros(&self, micros: u64) {
        self.micros.store(micros, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let clock = WallClock::start();
        let a = clock.now_micros();
        let b = clock.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_controlled() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_micros(), 0);
        clock.advance_micros(500);
        assert_eq!(clock.now_micros(), 500);
        clock.advance_secs(1.5);
        assert_eq!(clock.now_micros(), 1_500_500);
        assert!((clock.now_secs() - 1.5005).abs() < 1e-9);
        clock.set_micros(10);
        assert_eq!(clock.now_micros(), 10);
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let clock = ManualClock::new();
        let other = clock.clone();
        clock.advance_micros(42);
        assert_eq!(other.now_micros(), 42);
    }
}

//! Metric records and the result log.
//!
//! Every measurement in the framework is a timestamped record
//! `(t_micros, source, metric, value)`. The on-disk result log is one
//! record per line: `T_MICROS,SOURCE,METRIC,VALUE` — deliberately the same
//! comma-separated, stream-friendly shape as the graph stream format.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A metric value: numeric or free text (e.g. a marker name).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// A floating-point measurement.
    Float(f64),
    /// An integer measurement (kept distinct for exact counters).
    Int(i64),
    /// Free-form text (marker names, status strings).
    Text(String),
}

impl MetricValue {
    /// Numeric view (integers widen; text is `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            MetricValue::Float(v) => Some(*v),
            MetricValue::Int(v) => Some(*v as f64),
            MetricValue::Text(_) => None,
        }
    }
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::Float(v) => write!(f, "{v}"),
            MetricValue::Int(v) => write!(f, "{v}"),
            MetricValue::Text(s) => f.write_str(s),
        }
    }
}

/// One timestamped measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricRecord {
    /// Microseconds since run start.
    pub t_micros: u64,
    /// Which logger/component produced the record (e.g. `worker-2`).
    pub source: String,
    /// Metric name (e.g. `queue_length`).
    pub metric: String,
    /// The measured value.
    pub value: MetricValue,
}

impl MetricRecord {
    /// Builds a float record.
    pub fn float(t_micros: u64, source: &str, metric: &str, value: f64) -> Self {
        MetricRecord {
            t_micros,
            source: source.to_owned(),
            metric: metric.to_owned(),
            value: MetricValue::Float(value),
        }
    }

    /// Builds an integer record.
    pub fn int(t_micros: u64, source: &str, metric: &str, value: i64) -> Self {
        MetricRecord {
            t_micros,
            source: source.to_owned(),
            metric: metric.to_owned(),
            value: MetricValue::Int(value),
        }
    }

    /// Builds a text record (markers, statuses).
    pub fn text(t_micros: u64, source: &str, metric: &str, value: impl Into<String>) -> Self {
        MetricRecord {
            t_micros,
            source: source.to_owned(),
            metric: metric.to_owned(),
            value: MetricValue::Text(value.into()),
        }
    }

    /// Timestamp in seconds.
    pub fn t_secs(&self) -> f64 {
        self.t_micros as f64 / 1e6
    }

    /// Serializes as one log line (no newline).
    pub fn to_line(&self) -> String {
        format!(
            "{},{},{},{}",
            self.t_micros, self.source, self.metric, self.value
        )
    }
}

impl FromStr for MetricRecord {
    type Err = String;

    fn from_str(line: &str) -> Result<Self, Self::Err> {
        let mut parts = line.splitn(4, ',');
        let t = parts
            .next()
            .ok_or("missing timestamp")?
            .trim()
            .parse::<u64>()
            .map_err(|e| format!("bad timestamp: {e}"))?;
        let source = parts.next().ok_or("missing source")?.to_owned();
        let metric = parts.next().ok_or("missing metric")?.to_owned();
        let raw = parts.next().ok_or("missing value")?;
        // Integers parse as Int, other numerics as Float, rest as Text.
        let value = if let Ok(i) = raw.trim().parse::<i64>() {
            MetricValue::Int(i)
        } else if let Ok(f) = raw.trim().parse::<f64>() {
            MetricValue::Float(f)
        } else {
            MetricValue::Text(raw.to_owned())
        };
        Ok(MetricRecord {
            t_micros: t,
            source,
            metric,
            value,
        })
    }
}

/// A chronologically sorted sequence of metric records — the output of an
/// experiment run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResultLog {
    records: Vec<MetricRecord>,
}

impl ResultLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a log, sorting by timestamp. Equal timestamps keep their
    /// input order — see [`Self::sort`] for why this is guaranteed
    /// explicitly rather than left to sort-stability.
    pub fn from_records(records: Vec<MetricRecord>) -> Self {
        let mut log = ResultLog { records };
        log.sort();
        log
    }

    /// The records in chronological order.
    pub fn records(&self) -> &[MetricRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record (timestamps may arrive out of order; call
    /// [`Self::sort`] before analysis or use [`Self::from_records`]).
    pub fn push(&mut self, record: MetricRecord) {
        self.records.push(record);
    }

    /// Restores chronological order after out-of-order pushes.
    ///
    /// Records sharing a microsecond timestamp — routine when a sampler
    /// emits a whole batch per tick, or when merged logger threads race —
    /// keep their current relative order. The tie-break is an explicit
    /// insertion index rather than a reliance on sort stability, so the
    /// exported series order is a documented invariant of the format, not
    /// an accident of the sort algorithm: serialize → parse → serialize
    /// is byte-identical.
    pub fn sort(&mut self) {
        let mut indexed: Vec<(usize, MetricRecord)> = std::mem::take(&mut self.records)
            .into_iter()
            .enumerate()
            .collect();
        indexed.sort_unstable_by(|(ia, a), (ib, b)| a.t_micros.cmp(&b.t_micros).then(ia.cmp(ib)));
        self.records = indexed.into_iter().map(|(_, r)| r).collect();
    }

    /// All records for one `(source, metric)` pair as a time series of
    /// `(seconds, value)`, skipping text records.
    pub fn series(&self, source: &str, metric: &str) -> Vec<(f64, f64)> {
        self.records
            .iter()
            .filter(|r| r.source == source && r.metric == metric)
            .filter_map(|r| r.value.as_f64().map(|v| (r.t_secs(), v)))
            .collect()
    }

    /// All records for a metric across sources: `(seconds, source, value)`.
    pub fn metric_records(&self, metric: &str) -> Vec<&MetricRecord> {
        self.records.iter().filter(|r| r.metric == metric).collect()
    }

    /// The distinct sources in the log, sorted.
    pub fn sources(&self) -> Vec<String> {
        let mut out: Vec<String> = self.records.iter().map(|r| r.source.clone()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The first marker record with the given name, if any (markers are
    /// text records with metric `marker`).
    pub fn marker(&self, name: &str) -> Option<&MetricRecord> {
        self.records
            .iter()
            .find(|r| r.metric == "marker" && matches!(&r.value, MetricValue::Text(t) if t == name))
    }

    /// The records between two markers (exclusive of the marker records
    /// themselves) — the per-phase slice the watermark pattern of §4.5
    /// exists to enable. `None` if either marker is missing or they are
    /// out of order.
    pub fn between_markers(&self, start: &str, end: &str) -> Option<ResultLog> {
        let t_start = self.marker(start)?.t_micros;
        let t_end = self.marker(end)?.t_micros;
        if t_end < t_start {
            return None;
        }
        Some(ResultLog::from_records(
            self.records
                .iter()
                .filter(|r| r.t_micros >= t_start && r.t_micros <= t_end && r.metric != "marker")
                .cloned()
                .collect(),
        ))
    }

    /// Serializes the log, one record per line.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 32);
        for r in &self.records {
            out.push_str(&r.to_line());
            out.push('\n');
        }
        out
    }

    /// Parses a log from text, sorting chronologically.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            records.push(
                line.parse::<MetricRecord>()
                    .map_err(|e| format!("line {}: {e}", i + 1))?,
            );
        }
        Ok(ResultLog::from_records(records))
    }

    /// Writes the log to a file.
    pub fn write_to_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Reads a log from a file.
    pub fn read_from_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

impl FromIterator<MetricRecord> for ResultLog {
    fn from_iter<T: IntoIterator<Item = MetricRecord>>(iter: T) -> Self {
        ResultLog::from_records(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_line_roundtrip() {
        let records = [
            MetricRecord::float(1_500_000, "worker-1", "cpu", 42.5),
            MetricRecord::int(2_000_000, "replayer", "events", 1000),
            MetricRecord::text(3_000_000, "replayer", "marker", "phase-2"),
        ];
        for r in &records {
            let parsed: MetricRecord = r.to_line().parse().unwrap();
            assert_eq!(&parsed, r);
        }
    }

    #[test]
    fn text_values_may_contain_commas() {
        let r = MetricRecord::text(1, "s", "m", "a,b,c");
        let parsed: MetricRecord = r.to_line().parse().unwrap();
        assert_eq!(parsed.value, MetricValue::Text("a,b,c".to_owned()));
    }

    #[test]
    fn value_casting() {
        assert_eq!(MetricValue::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(MetricValue::Int(-3).as_f64(), Some(-3.0));
        assert_eq!(MetricValue::Text("x".into()).as_f64(), None);
    }

    #[test]
    fn log_sorts_chronologically() {
        let log = ResultLog::from_records(vec![
            MetricRecord::int(300, "a", "m", 3),
            MetricRecord::int(100, "a", "m", 1),
            MetricRecord::int(200, "b", "m", 2),
        ]);
        let ts: Vec<u64> = log.records().iter().map(|r| r.t_micros).collect();
        assert_eq!(ts, [100, 200, 300]);
    }

    #[test]
    fn series_extraction() {
        let log = ResultLog::from_records(vec![
            MetricRecord::float(1_000_000, "w1", "queue", 5.0),
            MetricRecord::float(2_000_000, "w1", "queue", 7.0),
            MetricRecord::float(1_500_000, "w2", "queue", 9.0),
            MetricRecord::text(1_200_000, "w1", "queue", "n/a"),
        ]);
        assert_eq!(log.series("w1", "queue"), [(1.0, 5.0), (2.0, 7.0)]);
        assert_eq!(log.sources(), ["w1", "w2"]);
        assert_eq!(log.metric_records("queue").len(), 4);
    }

    #[test]
    fn marker_lookup() {
        let log = ResultLog::from_records(vec![
            MetricRecord::text(5_000_000, "replayer", "marker", "bootstrap-done"),
            MetricRecord::text(9_000_000, "replayer", "marker", "stream-end"),
        ]);
        assert_eq!(log.marker("stream-end").unwrap().t_micros, 9_000_000);
        assert!(log.marker("nope").is_none());
    }

    #[test]
    fn phase_extraction_between_markers() {
        let log = ResultLog::from_records(vec![
            MetricRecord::float(1_000_000, "w", "q", 1.0),
            MetricRecord::text(2_000_000, "replayer", "marker", "phase-a"),
            MetricRecord::float(3_000_000, "w", "q", 2.0),
            MetricRecord::float(4_000_000, "w", "q", 3.0),
            MetricRecord::text(5_000_000, "replayer", "marker", "phase-b"),
            MetricRecord::float(6_000_000, "w", "q", 4.0),
        ]);
        let phase = log.between_markers("phase-a", "phase-b").unwrap();
        assert_eq!(phase.series("w", "q"), [(3.0, 2.0), (4.0, 3.0)]);
        // Missing or reversed markers yield None.
        assert!(log.between_markers("phase-b", "phase-a").is_none());
        assert!(log.between_markers("phase-a", "nope").is_none());
    }

    #[test]
    fn text_log_roundtrip() {
        let log = ResultLog::from_records(vec![
            MetricRecord::float(1, "a", "x", 0.5),
            MetricRecord::int(2, "b", "y", 7),
            MetricRecord::text(3, "c", "marker", "end"),
        ]);
        let parsed = ResultLog::parse(&log.to_text()).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn equal_timestamps_keep_insertion_order() {
        // A sampler emits whole batches with one timestamp; merged logs
        // must preserve batch-internal order deterministically.
        let batch = vec![
            MetricRecord::float(1_000, "sysmon", "cpu_percent", 40.0),
            MetricRecord::float(1_000, "sysmon", "cpu_user_percent", 30.0),
            MetricRecord::float(1_000, "sysmon", "cpu_sys_percent", 10.0),
            MetricRecord::int(1_000, "sysmon", "rss_bytes", 4096),
            MetricRecord::int(500, "pipeline", "queue_depth", 3),
            MetricRecord::text(1_000, "replayer", "marker", "tied"),
        ];
        let log = ResultLog::from_records(batch.clone());
        let expected: Vec<&MetricRecord> = std::iter::once(&batch[4])
            .chain(&batch[..4])
            .chain(std::iter::once(&batch[5]))
            .collect();
        let got: Vec<&MetricRecord> = log.records().iter().collect();
        assert_eq!(got, expected);
        // Re-sorting an already sorted log is a no-op.
        let mut resorted = log.clone();
        resorted.sort();
        assert_eq!(resorted, log);
        // The order survives the text round trip byte-for-byte.
        let parsed = ResultLog::parse(&log.to_text()).unwrap();
        assert_eq!(parsed.to_text(), log.to_text());
    }

    #[test]
    fn parse_skips_comments_and_rejects_garbage() {
        let ok = ResultLog::parse("# header\n\n100,a,m,1\n").unwrap();
        assert_eq!(ok.len(), 1);
        assert!(ResultLog::parse("not-a-timestamp,a,m,1").is_err());
        assert!(ResultLog::parse("100,only-two-fields").is_err());
    }
}

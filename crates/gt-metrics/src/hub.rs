//! The metrics hub — the Level-1/Level-2 instrumentation surface.
//!
//! A system under test registers named counters, gauges, and histograms;
//! logger threads snapshot them periodically without coordination.
//! Counters are monotone `u64` (e.g. events processed), gauges are
//! instantaneous `i64` values (e.g. queue length), histograms record
//! `u64` sample distributions (e.g. emit latencies) in power-of-two
//! buckets. All are lock-free on the hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// A monotone counter handle. Cloning shares the underlying value.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous gauge handle. Cloning shares the underlying value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two histogram buckets: bucket `i` counts samples
/// `v` with `floor(log2(v + 1)) == i`, so bucket 0 is `{0}`, bucket 1 is
/// `{1, 2}`, …, covering the full `u64` range in 64 buckets.
const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free histogram of `u64` samples (latencies in microseconds,
/// queue depths, …) with power-of-two buckets. Cloning shares the
/// underlying storage.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    saturated: AtomicBool,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            saturated: AtomicBool::new(false),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let bucket = (u64::BITS - (value.saturating_add(1)).leading_zeros() - 1) as usize;
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        // The sum must saturate, not wrap: a week-long run recording large
        // latencies would otherwise overflow and make `mean()` silently
        // wrong. Saturation is flagged so the snapshot can report it.
        let prev = self
            .0
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |sum| {
                Some(sum.saturating_add(value))
            })
            .expect("closure always returns Some");
        if prev.checked_add(value).is_none() {
            self.0.saturated.store(true, Ordering::Relaxed);
        }
        self.0.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy (buckets are read without a
    /// global lock, so a snapshot taken mid-record may be off by the
    /// in-flight sample — fine for monitoring).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed)),
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            max: self.0.max.load(Ordering::Relaxed),
            saturated: self.0.saturated.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sample counts per power-of-two bucket (bucket `i` holds values in
    /// `[2^i - 1, 2^(i+1) - 2]`).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Whether the sample sum overflowed `u64` and was clamped to
    /// `u64::MAX`. When set, [`Self::mean`] is a lower bound, not the
    /// true mean.
    pub saturated: bool,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty; a lower bound when
    /// [`Self::saturated`] is set).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]` —
    /// a conservative estimate with power-of-two resolution (0 when
    /// empty).
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                // Bucket i spans [2^i - 1, 2^(i+1) - 2].
                return (1u128 << (i + 1)).saturating_sub(2) as u64;
            }
        }
        self.max
    }
}

/// A shared, thread-safe registry of named counters and gauges.
///
/// Registration takes a write lock; reads and metric updates are
/// lock-free / read-locked, so sampling never stalls the system under
/// test.
#[derive(Debug, Clone, Default)]
pub struct MetricsHub {
    inner: Arc<RwLock<Registry>>,
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) a counter by name.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.read().counters.get(name) {
            return c.clone();
        }
        self.inner
            .write()
            .counters
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Registers (or retrieves) a gauge by name.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.read().gauges.get(name) {
            return g.clone();
        }
        self.inner
            .write()
            .gauges
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Registers (or retrieves) a histogram by name.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.inner.read().histograms.get(name) {
            return h.clone();
        }
        self.inner
            .write()
            .histograms
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Snapshot of all counters, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.inner
            .read()
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of all gauges, sorted by name.
    pub fn gauge_values(&self) -> Vec<(String, i64)> {
        self.inner
            .read()
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of all histograms, sorted by name.
    pub fn histogram_values(&self) -> Vec<(String, HistogramSnapshot)> {
        self.inner
            .read()
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_are_shared_by_name() {
        let hub = MetricsHub::new();
        let a = hub.counter("events");
        let b = hub.counter("events");
        a.inc();
        b.add(2);
        assert_eq!(hub.counter("events").get(), 3);
    }

    #[test]
    fn gauges_set_and_add() {
        let hub = MetricsHub::new();
        let g = hub.gauge("queue");
        g.set(10);
        g.add(-3);
        assert_eq!(hub.gauge("queue").get(), 7);
    }

    #[test]
    fn snapshots_are_sorted() {
        let hub = MetricsHub::new();
        hub.counter("zeta").add(1);
        hub.counter("alpha").add(2);
        hub.gauge("mid").set(5);
        let counters = hub.counter_values();
        assert_eq!(counters, [("alpha".to_owned(), 2), ("zeta".to_owned(), 1)]);
        assert_eq!(hub.gauge_values(), [("mid".to_owned(), 5)]);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let hub = MetricsHub::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = hub.counter("hits");
            handles.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hub.counter("hits").get(), 80_000);
    }

    #[test]
    fn cloned_hub_shares_registry() {
        let hub = MetricsHub::new();
        let clone = hub.clone();
        hub.counter("x").inc();
        assert_eq!(clone.counter("x").get(), 1);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 6, 7, 100, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.buckets[0], 1); // {0}
        assert_eq!(snap.buckets[1], 2); // {1, 2}
        assert_eq!(snap.buckets[2], 2); // {3..=6}
        assert_eq!(snap.buckets[3], 1); // {7..=14}
        assert_eq!(snap.buckets[6], 1); // {63..=126}
        assert_eq!(snap.buckets[63], 1); // top bucket
    }

    #[test]
    fn histogram_mean_and_quantiles() {
        let h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert!((snap.mean() - 49.5).abs() < 1e-9);
        // The median of 0..100 is ~50; the p50 bucket upper bound must be
        // at least that and within one power of two.
        let p50 = snap.quantile_upper_bound(0.5);
        assert!((50..=126).contains(&p50), "p50 bound {p50}");
        assert!(snap.quantile_upper_bound(1.0) >= 99);
        let empty = Histogram::new().snapshot();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.quantile_upper_bound(0.9), 0);
    }

    #[test]
    fn histogram_sum_saturates_instead_of_wrapping() {
        // Regression: `sum` used `fetch_add`, so the second sample here
        // wrapped the sum around to ~89 and the mean collapsed to ~44
        // with no indication anything was wrong.
        let h = Histogram::new();
        h.record(u64::MAX - 10);
        h.record(100);
        let snap = h.snapshot();
        assert_eq!(snap.sum, u64::MAX, "sum must clamp at u64::MAX");
        assert!(snap.saturated, "overflow must be flagged");
        assert!(
            snap.mean() > 1e18,
            "mean must stay a large lower bound, got {}",
            snap.mean()
        );
        // A histogram that never overflows stays unflagged.
        let clean = Histogram::new();
        clean.record(5);
        clean.record(7);
        let snap = clean.snapshot();
        assert!(!snap.saturated);
        assert_eq!(snap.sum, 12);
    }

    #[test]
    fn histograms_shared_by_name_and_thread_safe() {
        let hub = MetricsHub::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = hub.histogram("lat");
            handles.push(thread::spawn(move || {
                for v in 0..1_000u64 {
                    h.record(v);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        let values = hub.histogram_values();
        assert_eq!(values.len(), 1);
        assert_eq!(values[0].1.count, 4_000);
    }
}

//! The metrics hub — the Level-1/Level-2 instrumentation surface.
//!
//! A system under test registers named counters and gauges; logger threads
//! snapshot them periodically without coordination. Counters are monotone
//! `u64` (e.g. events processed), gauges are instantaneous `i64` values
//! (e.g. queue length). Both are lock-free on the hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// A monotone counter handle. Cloning shares the underlying value.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous gauge handle. Cloning shares the underlying value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared, thread-safe registry of named counters and gauges.
///
/// Registration takes a write lock; reads and metric updates are
/// lock-free / read-locked, so sampling never stalls the system under
/// test.
#[derive(Debug, Clone, Default)]
pub struct MetricsHub {
    inner: Arc<RwLock<Registry>>,
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) a counter by name.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.read().counters.get(name) {
            return c.clone();
        }
        self.inner
            .write()
            .counters
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Registers (or retrieves) a gauge by name.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.read().gauges.get(name) {
            return g.clone();
        }
        self.inner
            .write()
            .gauges
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Snapshot of all counters, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.inner
            .read()
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of all gauges, sorted by name.
    pub fn gauge_values(&self) -> Vec<(String, i64)> {
        self.inner
            .read()
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_are_shared_by_name() {
        let hub = MetricsHub::new();
        let a = hub.counter("events");
        let b = hub.counter("events");
        a.inc();
        b.add(2);
        assert_eq!(hub.counter("events").get(), 3);
    }

    #[test]
    fn gauges_set_and_add() {
        let hub = MetricsHub::new();
        let g = hub.gauge("queue");
        g.set(10);
        g.add(-3);
        assert_eq!(hub.gauge("queue").get(), 7);
    }

    #[test]
    fn snapshots_are_sorted() {
        let hub = MetricsHub::new();
        hub.counter("zeta").add(1);
        hub.counter("alpha").add(2);
        hub.gauge("mid").set(5);
        let counters = hub.counter_values();
        assert_eq!(
            counters,
            [("alpha".to_owned(), 2), ("zeta".to_owned(), 1)]
        );
        assert_eq!(hub.gauge_values(), [("mid".to_owned(), 5)]);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let hub = MetricsHub::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = hub.counter("hits");
            handles.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hub.counter("hits").get(), 80_000);
    }

    #[test]
    fn cloned_hub_shares_registry() {
        let hub = MetricsHub::new();
        let clone = hub.clone();
        hub.counter("x").inc();
        assert_eq!(clone.counter("x").get(), 1);
    }
}

//! Runtime metrics loggers (§4.3, §5.1).
//!
//! The paper's prototype ran "small Python and Node.js scripts" that
//! periodically executed an operation and appended timestamped outcomes to
//! a local log. A [`MetricsLogger`] is the same idea in-process: the
//! harness calls [`sample`](MetricsLogger::sample) on a schedule and feeds
//! the records to a [`crate::ResultLog`].

use std::sync::Arc;

use crate::clock::Clock;
use crate::hub::MetricsHub;
use crate::record::MetricRecord;

/// A periodic metric probe.
pub trait MetricsLogger: Send {
    /// Collects the current records.
    fn sample(&mut self) -> Vec<MetricRecord>;

    /// The logger's source label.
    fn source(&self) -> &str;
}

/// Snapshots every counter and gauge of a [`MetricsHub`] — the Level-1
/// native-metrics logger.
pub struct HubSampler {
    hub: MetricsHub,
    clock: Arc<dyn Clock>,
    source: String,
    /// Previous counter values, for emitting per-interval deltas alongside
    /// totals.
    last_counters: Vec<(String, u64)>,
}

impl HubSampler {
    /// Creates a sampler over `hub`, labeling records with `source`.
    pub fn new(hub: MetricsHub, clock: Arc<dyn Clock>, source: &str) -> Self {
        HubSampler {
            hub,
            clock,
            source: source.to_owned(),
            last_counters: Vec::new(),
        }
    }
}

impl MetricsLogger for HubSampler {
    fn sample(&mut self) -> Vec<MetricRecord> {
        let now = self.clock.now_micros();
        let mut records = Vec::new();
        let counters = self.hub.counter_values();
        for (name, value) in &counters {
            records.push(MetricRecord::int(now, &self.source, name, *value as i64));
            // Delta since last sample, for rate-style analysis.
            if let Some((_, prev)) = self.last_counters.iter().find(|(n, _)| n == name) {
                records.push(MetricRecord::int(
                    now,
                    &self.source,
                    &format!("{name}.delta"),
                    value.saturating_sub(*prev) as i64,
                ));
            }
        }
        self.last_counters = counters;
        for (name, value) in self.hub.gauge_values() {
            records.push(MetricRecord::int(now, &self.source, &name, value));
        }
        for (name, snap) in self.hub.histogram_values() {
            if snap.count == 0 {
                continue;
            }
            records.push(MetricRecord::int(
                now,
                &self.source,
                &format!("{name}.count"),
                snap.count as i64,
            ));
            records.push(MetricRecord::float(
                now,
                &self.source,
                &format!("{name}.mean"),
                snap.mean(),
            ));
            records.push(MetricRecord::int(
                now,
                &self.source,
                &format!("{name}.p99"),
                snap.quantile_upper_bound(0.99) as i64,
            ));
            records.push(MetricRecord::int(
                now,
                &self.source,
                &format!("{name}.max"),
                snap.max as i64,
            ));
        }
        records
    }

    fn source(&self) -> &str {
        &self.source
    }
}

/// A closure-based gauge probe — the generic "submit a query, log the
/// outcome" logger (used e.g. for periodically querying computation
/// results from a system under test).
pub struct GaugeSampler<F> {
    probe: F,
    metric: String,
    source: String,
    clock: Arc<dyn Clock>,
}

impl<F: FnMut() -> Option<f64> + Send> GaugeSampler<F> {
    /// Creates a sampler that records `probe()` under `metric`.
    pub fn new(clock: Arc<dyn Clock>, source: &str, metric: &str, probe: F) -> Self {
        GaugeSampler {
            probe,
            metric: metric.to_owned(),
            source: source.to_owned(),
            clock,
        }
    }
}

impl<F: FnMut() -> Option<f64> + Send> MetricsLogger for GaugeSampler<F> {
    fn sample(&mut self) -> Vec<MetricRecord> {
        match (self.probe)() {
            Some(v) => vec![MetricRecord::float(
                self.clock.now_micros(),
                &self.source,
                &self.metric,
                v,
            )],
            None => Vec::new(),
        }
    }

    fn source(&self) -> &str {
        &self.source
    }
}

/// The Level-0 black-box process sampler: reads CPU time and resident set
/// size of the current process from `/proc/self/stat` (Linux). On other
/// platforms or read failure it produces no records — Level-0 observation
/// is inherently best-effort.
pub struct ProcessSampler {
    clock: Arc<dyn Clock>,
    source: String,
    last_cpu_ticks: Option<(u64, u64)>, // (ticks, t_micros)
    ticks_per_sec: f64,
}

impl ProcessSampler {
    /// Creates a process sampler.
    pub fn new(clock: Arc<dyn Clock>, source: &str) -> Self {
        ProcessSampler {
            clock,
            source: source.to_owned(),
            last_cpu_ticks: None,
            ticks_per_sec: 100.0, // Linux USER_HZ default
        }
    }

    fn read_proc(&self) -> Option<(u64, u64)> {
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        // Field 2 is `(comm)` and may contain spaces; skip past it.
        let rest = stat.rsplit_once(')')?.1;
        let fields: Vec<&str> = rest.split_whitespace().collect();
        // After the comm field: state is index 0, utime is field 14 overall
        // → index 11 here, stime index 12, rss pages index 21.
        let utime: u64 = fields.get(11)?.parse().ok()?;
        let stime: u64 = fields.get(12)?.parse().ok()?;
        let rss_pages: u64 = fields.get(21)?.parse().ok()?;
        Some((utime + stime, rss_pages * 4096))
    }
}

impl MetricsLogger for ProcessSampler {
    fn sample(&mut self) -> Vec<MetricRecord> {
        let Some((cpu_ticks, rss_bytes)) = self.read_proc() else {
            return Vec::new();
        };
        let now = self.clock.now_micros();
        let mut records = vec![MetricRecord::int(
            now,
            &self.source,
            "rss_bytes",
            rss_bytes as i64,
        )];
        if let Some((prev_ticks, prev_t)) = self.last_cpu_ticks {
            let dt_secs = (now.saturating_sub(prev_t)) as f64 / 1e6;
            if dt_secs > 0.0 {
                let cpu_secs = cpu_ticks.saturating_sub(prev_ticks) as f64 / self.ticks_per_sec;
                records.push(MetricRecord::float(
                    now,
                    &self.source,
                    "cpu_percent",
                    100.0 * cpu_secs / dt_secs,
                ));
            }
        }
        self.last_cpu_ticks = Some((cpu_ticks, now));
        records
    }

    fn source(&self) -> &str {
        &self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::record::MetricValue;

    fn manual() -> (Arc<dyn Clock>, ManualClock) {
        let clock = ManualClock::new();
        (Arc::new(clock.clone()), clock)
    }

    #[test]
    fn hub_sampler_reports_counters_gauges_and_deltas() {
        let (clock, manual) = manual();
        let hub = MetricsHub::new();
        hub.counter("ops").add(10);
        hub.gauge("queue").set(4);
        let mut sampler = HubSampler::new(hub.clone(), clock, "worker-1");

        manual.advance_secs(1.0);
        let first = sampler.sample();
        assert!(first
            .iter()
            .any(|r| r.metric == "ops" && r.value == MetricValue::Int(10)));
        assert!(first
            .iter()
            .any(|r| r.metric == "queue" && r.value == MetricValue::Int(4)));
        // No delta on the first sample.
        assert!(!first.iter().any(|r| r.metric == "ops.delta"));

        hub.counter("ops").add(5);
        manual.advance_secs(1.0);
        let second = sampler.sample();
        assert!(second
            .iter()
            .any(|r| r.metric == "ops.delta" && r.value == MetricValue::Int(5)));
        assert_eq!(second[0].t_micros, 2_000_000);
        assert_eq!(sampler.source(), "worker-1");
    }

    #[test]
    fn gauge_sampler_records_probe_values() {
        let (clock, manual) = manual();
        let mut value = 0.0;
        let mut sampler = GaugeSampler::new(clock, "probe", "latency_ms", move || {
            value += 1.5;
            Some(value)
        });
        manual.advance_secs(0.5);
        let r1 = sampler.sample();
        assert_eq!(r1.len(), 1);
        assert_eq!(r1[0].value, MetricValue::Float(1.5));
        let r2 = sampler.sample();
        assert_eq!(r2[0].value, MetricValue::Float(3.0));
    }

    #[test]
    fn gauge_sampler_skips_none() {
        let (clock, _) = manual();
        let mut sampler = GaugeSampler::new(clock, "probe", "x", || None);
        assert!(sampler.sample().is_empty());
    }

    #[test]
    fn process_sampler_reports_on_linux() {
        let (clock, manual) = manual();
        let mut sampler = ProcessSampler::new(clock, "self");
        let first = sampler.sample();
        if first.is_empty() {
            // Not a Linux-like /proc environment; nothing to assert.
            return;
        }
        assert!(first.iter().any(|r| r.metric == "rss_bytes"));
        // Burn some CPU so the next delta is meaningful.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        std::hint::black_box(acc);
        manual.advance_secs(1.0);
        let second = sampler.sample();
        assert!(second.iter().any(|r| r.metric == "cpu_percent"));
    }
}

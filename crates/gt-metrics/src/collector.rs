//! The log collector (§4.1, §5.1): "once a test run is finished, the log
//! collector script gathers the remote log files of all logger instances
//! and merges them into a single, chronologically sorted result log file."

use std::path::Path;

use crate::record::{MetricRecord, ResultLog};

/// Merges per-logger logs into one chronologically sorted result log.
#[derive(Debug, Default)]
pub struct LogCollector {
    merged: Vec<MetricRecord>,
}

impl LogCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds all records of a log.
    pub fn add_log(&mut self, log: ResultLog) -> &mut Self {
        self.merged.extend(log.records().iter().cloned());
        self
    }

    /// Adds raw records.
    pub fn add_records(&mut self, records: Vec<MetricRecord>) -> &mut Self {
        self.merged.extend(records);
        self
    }

    /// Reads and adds a log file.
    pub fn add_file(&mut self, path: impl AsRef<Path>) -> std::io::Result<&mut Self> {
        let log = ResultLog::read_from_file(path)?;
        self.add_log(log);
        Ok(self)
    }

    /// Produces the merged, chronologically sorted result log.
    pub fn collect(self) -> ResultLog {
        ResultLog::from_records(self.merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_and_sorts() {
        let a = ResultLog::from_records(vec![
            MetricRecord::int(300, "w1", "ops", 3),
            MetricRecord::int(100, "w1", "ops", 1),
        ]);
        let b = ResultLog::from_records(vec![MetricRecord::int(200, "w2", "ops", 2)]);
        let mut collector = LogCollector::new();
        collector.add_log(a).add_log(b);
        let merged = collector.collect();
        let ts: Vec<u64> = merged.records().iter().map(|r| r.t_micros).collect();
        assert_eq!(ts, [100, 200, 300]);
        assert_eq!(merged.sources(), ["w1", "w2"]);
    }

    #[test]
    fn collects_files() {
        let dir = std::env::temp_dir().join("gt-metrics-collector-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("log1.csv");
        let p2 = dir.join("log2.csv");
        ResultLog::from_records(vec![MetricRecord::int(50, "a", "m", 1)])
            .write_to_file(&p1)
            .unwrap();
        ResultLog::from_records(vec![MetricRecord::int(25, "b", "m", 2)])
            .write_to_file(&p2)
            .unwrap();

        let mut collector = LogCollector::new();
        collector.add_file(&p1).unwrap();
        collector.add_file(&p2).unwrap();
        let merged = collector.collect();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.records()[0].source, "b");
        std::fs::remove_file(p1).ok();
        std::fs::remove_file(p2).ok();
    }

    #[test]
    fn empty_collector_yields_empty_log() {
        assert!(LogCollector::new().collect().is_empty());
    }
}

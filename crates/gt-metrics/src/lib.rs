#![warn(missing_docs)]

//! # gt-metrics
//!
//! The measurement side of the GraphTides test harness (paper §4.3):
//!
//! * [`record`] — timestamped metric records and the line format of the
//!   result log,
//! * [`hub`] — a shared registry of named counters and gauges; systems
//!   under test expose Level-1/Level-2 internals through it, loggers
//!   snapshot it,
//! * [`logger`] — periodic samplers: the hub snapshotter, a closure-based
//!   gauge probe, and a Level-0 process sampler reading `/proc/self`,
//! * [`collector`] — the log collector that merges per-logger logs into a
//!   single, chronologically sorted result log,
//! * [`clock`] — run-relative clocks, including a manual clock so
//!   simulated experiments are fully deterministic.
//!
//! The three evaluation levels of the paper map onto this crate as:
//! Level 0 uses only [`logger::ProcessSampler`] and external observation;
//! Level 1 systems export read-only counters through a [`hub::MetricsHub`];
//! Level 2 systems are instrumented in-source and push arbitrary records.

pub mod clock;
pub mod collector;
pub mod hub;
pub mod logger;
pub mod record;

pub use clock::{Clock, ManualClock, WallClock};
pub use collector::LogCollector;
pub use hub::{Histogram, HistogramSnapshot, MetricsHub};
pub use logger::{GaugeSampler, HubSampler, MetricsLogger, ProcessSampler};
pub use record::{MetricRecord, MetricValue, ResultLog};

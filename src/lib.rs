//! # GraphTides
//!
//! A Rust implementation of **GraphTides** — the evaluation framework for
//! stream-based graph processing platforms from Erb et al. (GRADES-NDA
//! ’18) — together with everything needed to run its experiments end to
//! end: the graph stream format and generator, a rate-controlled
//! replayer, metric loggers and the log collector, reference and online
//! graph computations, analysis statistics, and two built-in systems
//! under test.
//!
//! This crate is a façade: every component lives in its own crate under
//! `crates/`, re-exported here under stable module names.
//!
//! ```
//! use graphtides::prelude::*;
//!
//! // Generate a two-phase stream, replay it into a collecting sink, and
//! // inspect the streaming metrics.
//! let workload = graphtides::workloads::SnbWorkload::scaled(0.005, 7);
//! let stream = workload.generate();
//! let replayer = Replayer::new(ReplayerConfig { target_rate: 1e6, ..Default::default() });
//! let mut sink = CollectSink::new();
//! let report = replayer.replay_stream(&stream, &mut sink).unwrap();
//! assert_eq!(report.graph_events as u64, workload.total_events());
//! ```

/// Reference (batch) and online graph computations.
pub use gt_algorithms as algorithms;
/// Statistics for result analysis.
pub use gt_analysis as analysis;
/// Live fault injection inside the replay path: seeded schedules,
/// crash/stall/disconnect sinks, and the determinism-witness journal.
pub use gt_chaos as chaos;
/// Core event model and graph stream format.
pub use gt_core as core;
/// Deterministic fault injection.
pub use gt_faults as faults;
/// The two-phase stream generator.
pub use gt_generator as generator;
/// The evolving property graph, snapshots, and builders.
pub use gt_graph as graph;
/// The test harness: specs, run loop, repetition.
pub use gt_harness as harness;
/// The multi-client open/closed/partial-open-loop traffic layer.
pub use gt_load as load;
/// Metric records, loggers, hub, and log collector.
pub use gt_metrics as metrics;
/// Deterministic network fault injection: the seeded TCP fault proxy.
pub use gt_netem as netem;
/// The rate-controlled replayer and its connectors.
pub use gt_replayer as replayer;
/// The system-under-test boundary: trait, registry, evaluation levels.
pub use gt_sut as sut;
/// The Level-0 black-box process monitor (`/proc` sampler).
pub use gt_sysmon as sysmon;
/// Level-2 in-source event tracing: sampled pipeline tracepoints.
pub use gt_trace as trace;
/// Ready-made representative workloads.
pub use gt_workloads as workloads;
/// The Chronograph-class online engine under test.
pub use tide_graph as engine;
/// The Weaver-class transactional store under test.
pub use tide_store as store;

/// A [`sut::SutRegistry`] with both built-in platforms registered:
/// `tide-store` (the Weaver-class transactional store) and `tide-graph`
/// (the Chronograph-class online engine).
pub fn builtin_registry() -> gt_sut::SutRegistry {
    let mut registry = gt_sut::SutRegistry::new();
    tide_store::sut::register(&mut registry);
    tide_graph::sut::register(&mut registry);
    registry
}

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use gt_core::prelude::*;
    pub use gt_graph::{CsrSnapshot, EvolvingGraph};
    pub use gt_harness::{run_experiment, run_sut_experiment, ExperimentSpec, RunOutcome, RunPlan};
    pub use gt_metrics::{MetricsHub, ResultLog};
    pub use gt_replayer::{ChannelSink, CollectSink, EventSink, Replayer, ReplayerConfig};
    pub use gt_sut::{SutOptions, SutRegistry, SystemUnderTest};
}

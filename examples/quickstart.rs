//! Quickstart: generate a graph stream, replay it at a controlled rate
//! into a system under test, sample metrics while it runs, and analyse
//! the merged result log — the full GraphTides pipeline in one file.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use std::time::Duration;

use graphtides::engine::{EngineConfig, EngineConnector, TideGraph};
use graphtides::generator::{EventMix, MixModel, StreamComposer, StreamGenerator};
use graphtides::graph::builders::BarabasiAlbert;
use graphtides::harness::{run_experiment, RunPlan};
use graphtides::metrics::{GaugeSampler, MetricsHub, WallClock};
use graphtides::prelude::*;

fn main() {
    // 1. Generate a two-phase stream: Barabási–Albert bootstrap, then
    //    2,000 evolution events under the paper's Table 3 event mix.
    let bootstrap = BarabasiAlbert {
        n: 1_000,
        m0: 20,
        m: 5,
        seed: 42,
    }
    .generate();
    let mut generator = StreamGenerator::new(MixModel::new(EventMix::table3()), 42);
    generator.bootstrap(&bootstrap).expect("bootstrap applies");
    let evolution = generator.evolve(2_000);
    let stream = StreamComposer::two_phase(bootstrap, Duration::from_millis(100), evolution.stream);
    println!(
        "stream: {} entries ({} graph events)",
        stream.len(),
        stream.stats().graph_events
    );

    // 2. Start a system under test: the vertex-centric online engine with
    //    4 workers running an online influence rank.
    let hub = MetricsHub::new();
    let engine = Arc::new(TideGraph::start(EngineConfig::default(), &hub));
    let mut connector = EngineConnector::new(Arc::clone(&engine));

    // 3. Run the experiment: replay at 20k events/s while a logger samples
    //    the engine's total backlog every 50 ms.
    let clock = Arc::new(WallClock::start());
    let backlog_probe = {
        let engine = Arc::clone(&engine);
        GaugeSampler::new(clock, "engine", "backlog", move || {
            Some(engine.total_queue_len() as f64)
        })
    };
    let plan = RunPlan {
        sampling_interval: Duration::from_millis(50),
        ..RunPlan::new(stream, 20_000.0)
    }
    .with_logger(Box::new(backlog_probe));
    let outcome = run_experiment(plan, &mut connector).expect("replay succeeds");

    println!(
        "replayed {} events in {:.2}s (achieved {:.0} events/s)",
        outcome.report.graph_events,
        outcome.report.duration_micros as f64 / 1e6,
        outcome.report.achieved_rate,
    );
    for (name, t) in &outcome.report.markers {
        println!("marker `{name}` at t = {:.3}s", *t as f64 / 1e6);
    }

    // 4. Let the computation drain, then query the most influential
    //    vertices.
    engine.quiesce(Duration::from_secs(30));
    drop(connector);
    let engine = Arc::try_unwrap(engine).ok().expect("sole owner");
    let stats = engine.shutdown();
    let ranks = TideGraph::normalized(&stats.ranks);
    let mut top: Vec<(&VertexId, &f64)> = ranks.iter().collect();
    top.sort_by(|a, b| b.1.partial_cmp(a.1).expect("finite"));
    println!("\ntop-5 influence ranks:");
    for (id, rank) in top.into_iter().take(5) {
        println!("  vertex {id}: {rank:.5}");
    }

    // 5. Analyse the result log: peak backlog over the run.
    let backlog = outcome.log.series("engine", "backlog");
    let peak = backlog.iter().map(|&(_, v)| v).fold(0.0, f64::max);
    println!("\npeak engine backlog during replay: {peak} messages");
}

//! Route planning on an evolving road network — the paper's "routing &
//! traversals" computations (Table 1) on a state-churn-dominated stream
//! (§3.2 names road traffic networks as a core domain).
//!
//! A grid road network streams travel-time updates with a rush-hour
//! congestion phase. At every phase marker we run Bellman–Ford on the
//! current snapshot and report how the fastest corner-to-corner route and
//! its cost change as congestion builds and clears.
//!
//! ```sh
//! cargo run --release --example traffic_routing
//! ```

use graphtides::algorithms::shortest::bellman_ford;
use graphtides::prelude::*;
use graphtides::workloads::traffic::{TrafficWorkload, RUSH_HOUR_END, RUSH_HOUR_START};

fn route_report(graph: &EvolvingGraph, rows: u64, cols: u64, label: &str) {
    let csr = CsrSnapshot::from_graph(graph);
    let start = csr.index_of(VertexId(0)).expect("corner exists");
    let goal_id = VertexId(rows * cols - 1);
    let goal = csr.index_of(goal_id).expect("corner exists");
    let sp = bellman_ford(&csr, start).expect("travel times are positive");
    match sp.path_to(goal) {
        Some(path) => {
            let junctions: Vec<String> = path.iter().map(|&i| csr.id_of(i).to_string()).collect();
            println!(
                "{label}: fastest route 0 -> {goal_id} costs {:.1} over {} segments",
                sp.dist[goal as usize],
                path.len() - 1,
            );
            println!("    via {}", junctions.join(" -> "));
        }
        None => println!("{label}: {goal_id} currently unreachable (closures)"),
    }
}

fn main() {
    let workload = TrafficWorkload {
        rows: 8,
        cols: 8,
        ticks: 120,
        updates_per_tick: 60,
        closure_prob: 0.08,
        ..Default::default()
    };
    let stream = workload.generate();
    println!(
        "traffic stream: {} events over a {}x{} junction grid\n",
        stream.stats().graph_events,
        workload.rows,
        workload.cols
    );

    let mut graph = EvolvingGraph::new();
    for entry in stream.entries() {
        match entry {
            StreamEntry::Graph(event) => {
                graph.apply(event).expect("traffic streams apply strictly");
            }
            StreamEntry::Marker(name) => {
                let label = match name.as_str() {
                    "bootstrap-done" => "free flow",
                    RUSH_HOUR_START => "rush hour begins",
                    RUSH_HOUR_END => "rush hour ends",
                    other => other,
                };
                route_report(&graph, workload.rows, workload.cols, label);
            }
            StreamEntry::Control(_) => {}
        }
    }
    route_report(&graph, workload.rows, workload.cols, "stream end");

    // Network-level view: mean travel time across all open segments.
    let weights: Vec<f64> = graph.edges().filter_map(|(_, s)| s.as_weight()).collect();
    let mean = weights.iter().sum::<f64>() / weights.len() as f64;
    println!(
        "\nfinal network: {} open segments, mean travel time {mean:.1}",
        weights.len()
    );
}

//! The social-network use case (paper §2.4, first scenario): a growing
//! social graph streams into an online engine that maintains a live
//! influence ranking, while a batch reference quantifies the
//! latency/accuracy trade-off of the online results.
//!
//! ```sh
//! cargo run --release --example social_influence
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use graphtides::algorithms::pagerank::{pagerank, PageRankConfig};
use graphtides::analysis::{median_relative_error, top_k_overlap};
use graphtides::engine::{EngineConfig, EngineConnector, TideGraph};
use graphtides::prelude::*;
use graphtides::workloads::SnbWorkload;

fn main() {
    // An SNB-like social stream: 1% of the paper's Table 4 size.
    let workload = SnbWorkload::scaled(0.01, 7);
    let stream = workload.generate();
    println!(
        "social stream: {} persons, {} connections",
        workload.persons, workload.connections
    );

    let hub = MetricsHub::new();
    let engine = Arc::new(TideGraph::start(EngineConfig::default(), &hub));
    let mut connector = EngineConnector::new(Arc::clone(&engine));

    let replayer = Replayer::new(ReplayerConfig {
        target_rate: 50_000.0,
        ..Default::default()
    });
    let report = replayer
        .replay_stream(&stream, &mut connector)
        .expect("replay succeeds");
    println!(
        "streamed {} events at {:.0} events/s",
        report.graph_events, report.achieved_rate
    );

    // Snapshot the *intermediate* ranking right at stream end (possibly
    // stale), then the converged ranking after quiescence.
    let intermediate = engine.board_ranks();
    engine.quiesce(Duration::from_secs(60));
    drop(connector);
    let engine = Arc::try_unwrap(engine).ok().expect("sole owner");
    let stats = engine.shutdown();
    let converged = TideGraph::normalized(&stats.ranks);

    // Batch reference: exact PageRank on the reconstructed final graph.
    let graph = EvolvingGraph::from_stream(&stream).expect("stream applies");
    let csr = CsrSnapshot::from_graph(&graph);
    let exact = pagerank(&csr, &PageRankConfig::default());
    let exact_map: BTreeMap<VertexId, f64> = csr
        .indices()
        .map(|i| (csr.id_of(i), exact.ranks[i as usize]))
        .collect();

    // The latency/accuracy trade-off, quantified (§4.3 computation
    // metrics).
    for (label, ranking) in [
        ("at stream end", &intermediate),
        ("after drain", &converged),
    ] {
        let med = median_relative_error(ranking, &exact_map).unwrap_or(f64::NAN);
        let overlap = top_k_overlap(ranking, &exact_map, 10);
        println!("{label}: median relative rank error {med:.4}, top-10 overlap {overlap:.2}");
    }

    println!("\nmost influential users (converged online ranking):");
    let mut top: Vec<(&VertexId, &f64)> = converged.iter().collect();
    top.sort_by(|a, b| b.1.partial_cmp(a.1).expect("finite"));
    for (id, rank) in top.into_iter().take(10) {
        let exact_rank = exact_map.get(id).copied().unwrap_or(0.0);
        println!("  user {id}: online {rank:.5}, exact {exact_rank:.5}");
    }
}

//! The DDoS use case (paper §2.4, second scenario): flow data streams
//! into an evolving traffic graph; per-server in-degree and traffic-rate
//! monitoring flags the victim of a distributed attack whose individual
//! flows look benign.
//!
//! ```sh
//! cargo run --release --example ddos_detection
//! ```

use graphtides::algorithms::online::DegreeTracker;
use graphtides::algorithms::OnlineComputation;
use graphtides::prelude::*;
use graphtides::workloads::ddos::{DdosWorkload, ATTACK_END, ATTACK_START};

/// A simple online detector: tracks per-server in-degree and flags any
/// server whose in-degree exceeds `threshold ×` the median server.
struct Detector {
    servers: Vec<VertexId>,
    graph: EvolvingGraph,
    threshold: f64,
}

impl Detector {
    fn new(servers: u64, threshold: f64) -> Self {
        Detector {
            servers: (0..servers).map(VertexId).collect(),
            graph: EvolvingGraph::new(),
            threshold,
        }
    }

    fn ingest(&mut self, event: &GraphEvent) {
        let _ = self
            .graph
            .apply_with(event, graphtides::graph::ApplyPolicy::Lenient);
    }

    /// Servers currently flagged as under anomalous load.
    fn flagged(&self) -> Vec<(VertexId, usize)> {
        let mut degrees: Vec<usize> = self
            .servers
            .iter()
            .map(|&s| self.graph.in_degree(s).unwrap_or(0))
            .collect();
        degrees.sort_unstable();
        let median = degrees[degrees.len() / 2].max(1);
        self.servers
            .iter()
            .filter_map(|&s| {
                let deg = self.graph.in_degree(s).unwrap_or(0);
                (deg as f64 > self.threshold * median as f64).then_some((s, deg))
            })
            .collect()
    }
}

fn main() {
    let workload = DdosWorkload {
        servers: 12,
        baseline_clients: 500,
        attack_clients: 1_500,
        victim: 3,
        updates_per_phase: 300,
        seed: 99,
    };
    let stream = workload.generate();
    println!(
        "flow stream: {} events across baseline/attack/recovery phases",
        stream.stats().graph_events
    );

    let mut detector = Detector::new(workload.servers, 5.0);
    let mut stats = DegreeTracker::new();
    let mut phase = "baseline";

    for entry in stream.entries() {
        match entry {
            StreamEntry::Graph(event) => {
                detector.ingest(event);
                stats.apply_event(event);
            }
            StreamEntry::Marker(name) => {
                // Report detection state at each phase boundary.
                let snapshot = stats.result();
                println!(
                    "\n--- marker `{name}` (phase was: {phase}) ---\n    graph: {} hosts, {} flows, max degree {}",
                    snapshot.vertices, snapshot.edges, snapshot.max_degree
                );
                let flagged = detector.flagged();
                if flagged.is_empty() {
                    println!("    no anomalous servers");
                } else {
                    for (server, degree) in &flagged {
                        println!(
                            "    ALERT: server {server} under anomalous load (in-degree {degree})"
                        );
                    }
                }
                phase = match name.as_str() {
                    ATTACK_START => "attack",
                    ATTACK_END => "recovery",
                    _ => phase,
                };
            }
            StreamEntry::Control(_) => {}
        }
    }

    // Final state: the attack flows have expired.
    let flagged = detector.flagged();
    println!("\n--- stream end ---");
    if flagged.is_empty() {
        println!(
            "    traffic back to normal; blacklist can be compiled from the attack-phase flows"
        );
    } else {
        for (server, degree) in &flagged {
            println!("    still anomalous: server {server} (in-degree {degree})");
        }
    }

    // Sanity for the scenario: the victim must have been flagged at the
    // attack-end marker (verified again in the integration tests).
    assert!(
        stream.stats().markers == 2,
        "workload must contain both phase markers"
    );
}

//! Statistically rigorous system comparison — the methodology of §4.5.
//!
//! The paper's rule: run at least n ≥ 30 repetitions per configuration,
//! aggregate the metric, and compare 95% confidence intervals;
//! non-overlapping intervals are significantly different. This example
//! compares two configurations of the transactional store (1 event/tx vs
//! 10 events/tx) under an identical workload and identical offered rate,
//! and lets the CI95 comparison deliver the verdict.
//!
//! ```sh
//! cargo run --release --example compare_systems
//! ```

use std::time::{Duration, Instant};

use graphtides::analysis::summary::Comparison;
use graphtides::harness::{compare_metric, repeat_runs, ExperimentSpec, FactorSpace};
use graphtides::prelude::*;
use graphtides::store::{BatchingConnector, StoreConfig, TideStore};
use graphtides::workloads::Table3Workload;

/// One measured run: committed events/s for a given batch size.
fn measure_throughput(stream: &GraphStream, batch: usize) -> f64 {
    let hub = MetricsHub::new();
    let store = TideStore::start(
        StoreConfig {
            shards: 2,
            timestamper_cost_per_tx: Duration::from_micros(400),
            shard_cost_per_event: Duration::from_micros(10),
            queue_capacity: 32,
            supervised: false,
        },
        &hub,
    );
    let mut connector = BatchingConnector::new(store.client(), batch);
    let replayer = Replayer::new(ReplayerConfig {
        target_rate: 50_000.0, // offered far above both ceilings
        honor_pauses: false,
        ..Default::default()
    });
    let started = Instant::now();
    replayer
        .replay_stream(stream, &mut connector)
        .expect("replay succeeds");
    let elapsed = started.elapsed().as_secs_f64();
    let committed = store.events_committed() as f64;
    store.shutdown();
    committed / elapsed
}

fn main() {
    // Declare the experiment before measuring (Jain's methodology).
    let space = FactorSpace::new().factor("events_per_tx", [1, 10]);
    let spec = ExperimentSpec::new(
        "store-batching-comparison",
        "does transaction batching significantly raise write throughput?",
        "Table 3 workload (small), 1,500 evolution events",
    )
    .with_rate(50_000.0)
    .with_repetitions(30);
    println!("{spec}");
    println!(
        "configurations: {} (full factorial)\n",
        space.full_factorial_size()
    );

    // One fixed workload for every run: same stream, same seed.
    let stream = Table3Workload::small(1_500, 7).generate();

    let mut outcomes = Vec::new();
    for assignment in space.full_factorial() {
        let batch: usize = assignment[0].1.parse().expect("numeric level");
        let mut samples = Vec::with_capacity(spec.repetitions as usize);
        let outcome = repeat_runs(spec.repetitions, |_rep| {
            let v = measure_throughput(&stream, batch);
            samples.push(v);
            v
        });
        let ci = outcome.ci95.expect("n >= 2");
        let variability = graphtides::analysis::variability(&samples).expect("enough samples");
        println!(
            "events_per_tx = {batch:>2}: mean {:>8.0} events/s, CI95 [{:>8.0}, {:>8.0}] over {} runs (n>=30: {}, cv {:.1}%, outlier runs {})",
            outcome.summary.mean(),
            ci.lo,
            ci.hi,
            outcome.summary.count(),
            outcome.meets_n30,
            variability.cv * 100.0,
            variability.outliers,
        );
        outcomes.push((batch, outcome));
    }

    let (batch_a, a) = &outcomes[0];
    let (batch_b, b) = &outcomes[1];
    let comparison = compare_metric(a, b).expect("both sides have intervals");
    println!();
    match comparison.verdict {
        Comparison::AGreater => println!(
            "verdict: events_per_tx={batch_a} is significantly FASTER than events_per_tx={batch_b} (non-overlapping CI95)"
        ),
        Comparison::BGreater => println!(
            "verdict: events_per_tx={batch_b} is significantly FASTER than events_per_tx={batch_a} (non-overlapping CI95)"
        ),
        Comparison::NotSignificant => println!(
            "verdict: no significant difference at CI95 — more repetitions or a stronger factor needed"
        ),
    }
    if !comparison.meets_n30 {
        println!("caveat: below the paper's n >= 30 rule — the verdict is provisional");
    }
    println!(
        "\n(The paper: \"non-overlapping confidence intervals of the results from two\n\
         different systems are indeed significantly different under the given interval.\")"
    );
}

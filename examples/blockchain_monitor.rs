//! The blockchain use case (paper §2.4, third scenario): a stream of
//! per-block transaction micro-batches maintains a combined
//! transaction/wallet graph with live statistics — balances, average
//! transaction values, distribution of holdings.
//!
//! ```sh
//! cargo run --release --example blockchain_monitor
//! ```

use graphtides::algorithms::online::{DegreeTracker, StreamingTriangles};
use graphtides::algorithms::OnlineComputation;
use graphtides::prelude::*;
use graphtides::workloads::BlockchainWorkload;

fn main() {
    let workload = BlockchainWorkload {
        blocks: 40,
        txs_per_block: 60,
        ..Default::default()
    };
    let stream = workload.generate();
    println!(
        "transaction stream: {} events across {} blocks",
        stream.stats().graph_events,
        workload.blocks
    );

    let mut ledger = EvolvingGraph::new();
    let mut degrees = DegreeTracker::new();
    let mut triangles = StreamingTriangles::new();

    for entry in stream.entries() {
        match entry {
            StreamEntry::Graph(event) => {
                ledger
                    .apply(event)
                    .expect("blockchain streams apply strictly");
                degrees.apply_event(event);
                triangles.apply_event(event);
            }
            StreamEntry::Marker(name) => {
                // Live statistics at every 10th block boundary.
                let block: u64 = name
                    .strip_prefix("block-")
                    .and_then(|n| n.parse().ok())
                    .unwrap_or(0);
                if block % 10 != 9 {
                    continue;
                }
                let snapshot = degrees.result();
                let balances: Vec<f64> = ledger
                    .vertices_with_state()
                    .filter_map(|(_, s)| s.get_field("balance")?.parse().ok())
                    .collect();
                let total: f64 = balances.iter().sum();
                let richest = balances.iter().copied().fold(0.0, f64::max);
                let volumes: Vec<f64> = ledger.edges().filter_map(|(_, s)| s.as_weight()).collect();
                let mean_volume = volumes.iter().sum::<f64>() / volumes.len().max(1) as f64;
                println!(
                    "after {name}: {} wallets, {} transfer channels, \
                     circulating {total:.0}, richest wallet {richest:.0} \
                     ({:.1}% of supply), mean channel volume {mean_volume:.1}, \
                     {} counterparty triangles",
                    snapshot.vertices,
                    snapshot.edges,
                    100.0 * richest / total,
                    triangles.result(),
                );
            }
            StreamEntry::Control(_) => {}
        }
    }

    // Holdings distribution at the end.
    let mut balances: Vec<(VertexId, f64)> = ledger
        .vertices_with_state()
        .filter_map(|(id, s)| Some((id, s.get_field("balance")?.parse().ok()?)))
        .collect();
    balances.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let total: f64 = balances.iter().map(|(_, b)| b).sum();
    println!("\ntop-5 wallets by holdings:");
    for (id, balance) in balances.iter().take(5) {
        println!(
            "  wallet {id}: {balance:.1} ({:.1}% of supply)",
            100.0 * balance / total
        );
    }

    let top10: f64 = balances.iter().take(10).map(|(_, b)| b).sum();
    println!(
        "\nconcentration: top-10 wallets hold {:.1}% of all funds",
        100.0 * top10 / total
    );
}

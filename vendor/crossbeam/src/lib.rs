//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided — bounded and unbounded MPMC
//! channels built on `Mutex` + `Condvar`. Slower than lock-free
//! crossbeam but API- and semantics-compatible for the subset this
//! workspace uses: `send`, `recv`, `try_recv`, `recv_timeout`, `iter`,
//! `len`, disconnect-on-drop.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// The message could not be delivered because all receivers dropped.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// The channel is empty and all senders dropped.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Why a non-blocking send failed.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(msg) | TrySendError::Disconnected(msg) => msg,
            }
        }

        /// `true` for the at-capacity variant.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }

        /// `true` for the no-receivers variant.
        pub fn is_disconnected(&self) -> bool {
            matches!(self, TrySendError::Disconnected(_))
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    impl<T: fmt::Debug> std::error::Error for TrySendError<T> {}

    /// Why a non-blocking receive returned nothing.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// Channel currently empty; senders still connected.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Why a timed receive returned nothing.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Creates a bounded channel: `send` blocks once `cap` messages queue up.
    ///
    /// A capacity of zero is treated as one (this stand-in has no
    /// rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    /// Creates an unbounded channel: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until the message is queued or all receivers drop.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut queue = self.inner.queue.lock().unwrap();
            loop {
                if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                match self.inner.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = self.inner.not_full.wait(queue).unwrap();
                    }
                    _ => break,
                }
            }
            queue.push_back(msg);
            drop(queue);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Queues the message without blocking, or reports why it cannot.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut queue = self.inner.queue.lock().unwrap();
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.inner.capacity {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            queue.push_back(msg);
            drop(queue);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().len()
        }

        /// `true` when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake receivers so they observe disconnect.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().unwrap();
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.inner.not_empty.wait(queue).unwrap();
            }
        }

        /// Returns immediately with a message or the reason there is none.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.queue.lock().unwrap();
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.inner.queue.lock().unwrap();
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self
                    .inner
                    .not_empty
                    .wait_timeout(queue, deadline - now)
                    .unwrap();
                queue = guard;
                if result.timed_out() && queue.is_empty() {
                    if self.inner.senders.load(Ordering::SeqCst) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().len()
        }

        /// `true` when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator that ends when all senders drop.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// A non-blocking iterator that drains what is queued right now.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver gone: wake blocked senders so they error out.
                self.inner.not_full.notify_all();
            }
        }
    }

    /// Blocking channel iterator; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Non-blocking channel iterator; see [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let handle = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a recv frees a slot
            42
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(handle.join().unwrap(), 42);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn mpmc_sums_correctly() {
        let (tx, rx) = bounded(4);
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}

//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex`/`RwLock` with parking_lot's non-poisoning
//! API: `lock()`, `read()`, and `write()` return guards directly, and a
//! poisoned std lock (a panic while held) is simply entered anyway —
//! matching parking_lot's behavior of not propagating poison.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns an error.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock whose `read()`/`write()` never return errors.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
        assert!(l.try_write().is_some());
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable afterwards.
        assert_eq!(*m.lock(), 1);
    }
}

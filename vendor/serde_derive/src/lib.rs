//! Pass-through derive macros for the vendored serde stand-in.
//!
//! Both derives expand to nothing; the `Serialize`/`Deserialize` traits
//! in the companion crate have blanket impls, so emitting an impl here
//! would actually conflict. Declaring `attributes(serde)` is what makes
//! `#[serde(transparent)]`-style helper attributes parse.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the small slice of the rand 0.10 API the workspace
//! actually uses: a base [`Rng`] trait over a `u64` stream, the
//! [`RngExt`] extension trait with `random`, `random_range`,
//! `random_bool` and `random_ratio`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), and
//! [`seq::SliceRandom::shuffle`]. Determinism per seed is guaranteed,
//! which is all the framework's generators and fault injectors require;
//! cryptographic quality is explicitly a non-goal.

/// The core random-number-generator trait: everything is derived from a
/// uniformly distributed `u64` stream.
pub trait Rng {
    /// The next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ergonomic sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly distributed value of `T` (see [`Random`]).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform sample from the given range.
    ///
    /// # Panics
    /// If the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not within `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.random::<f64>() < p
    }

    /// `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    /// If `denominator` is zero or `numerator > denominator`.
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "zero denominator");
        assert!(numerator <= denominator, "ratio above 1");
        self.random_range(0..denominator) < numerator
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types that can be produced uniformly at random from an RNG.
pub trait Random: Sized {
    /// Draws one uniformly distributed value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_sint!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u: $t = Random::random(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u: $t = Random::random(rng);
                // Endpoint inclusion is a measure-zero nicety for floats;
                // the open-interval sample is accepted as-is.
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Unbiased `[0, span)` sample by rejection (Lemire-style threshold).
fn reject_sample<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// RNGs that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to full
    /// state with SplitMix64 (the reference xoshiro seeding procedure).
    fn seed_from_u64(seed: u64) -> Self;

    /// A generator seeded from the system clock — useful when
    /// reproducibility does not matter.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha12 of upstream rand, but statistically strong, fast,
    /// and — what matters here — fully deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Blackman & Vigna.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: f64 = rng.random_range(1.5..=2.5);
            assert!((1.5..=2.5).contains(&w));
            let x: usize = rng.random_range(0..1);
            assert_eq!(x, 0);
            let y: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn unit_floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // Mean of U(0,1) ~ 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}

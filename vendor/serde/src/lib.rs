//! Offline vendored stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes through a format crate (no serde_json in-tree), so
//! the traits here are empty markers with blanket impls and the derive
//! macros are pass-throughs that merely accept `#[serde(...)]`
//! attributes. Swapping in real serde later requires only a Cargo.toml
//! change — the derive surface is identical.

/// Marker for types that would be serializable under real serde.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types that would be deserializable under real serde.
pub trait Deserialize {}

impl<T: ?Sized> Deserialize for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

//! Offline vendored stand-in for `proptest`.
//!
//! Implements deterministic, generation-only property testing behind the
//! subset of the proptest 1.x API this workspace uses: the [`proptest!`],
//! [`prop_oneof!`], [`prop_assert!`] and [`prop_assert_eq!`] macros, the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`arbitrary::any`], [`collection::vec`],
//! [`string::string_regex`] (character-class regexes only), and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports its case index and seed;
//!   cases are fully deterministic per (test, case index), so failures
//!   reproduce exactly on re-run.
//! - **`.proptest-regressions` files are ignored.** Known past failures
//!   must be captured as explicit unit tests instead.
//! - Regex strategies support literal runs, character classes, and
//!   `{n}`/`{m,n}` quantifiers — the shapes used in this workspace.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Test-case outcome plumbing and run configuration.
pub mod test_runner {
    /// Why a property-test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the property is violated.
        Fail(String),
        /// The generated input was rejected (e.g. `prop_assume`).
        Reject(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds the rejection variant.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "property failed: {msg}"),
                TestCaseError::Reject(msg) => write!(f, "input rejected: {msg}"),
            }
        }
    }

    /// Result type the `proptest!`-generated body returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Run configuration; only `cases` is meaningful in this stand-in.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Matches upstream proptest's default case count.
            ProptestConfig { cases: 256 }
        }
    }

    /// The deterministic RNG handed to strategies.
    pub type TestRng = rand::rngs::StdRng;
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn DynStrategy<T>>;

    /// Object-safe mirror of [`Strategy`] used for `prop_oneof!` arms.
    pub trait DynStrategy<T> {
        /// Draws one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.as_ref().generate_dyn(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between type-erased strategies; built by
    /// `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof! needs positive total weight");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rand::RngExt::random_range(rng, 0..self.total_weight);
            for (weight, arm) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return arm.generate_dyn(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::RngExt::random_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::RngExt::random_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// A `&str` is a regex strategy over `String`s, as in real proptest.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::string_regex(self)
                .unwrap_or_else(|e| panic!("bad inline regex strategy {self:?}: {e}"))
                .generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::{Rng, RngExt};
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.random::<f64>() * 2e9 - 1e9
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy of unconstrained `T` values.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;

    /// Bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length, inclusive.
        pub min: usize,
        /// Maximum length, inclusive.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length in `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Regex-like string strategies.
pub mod string {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;

    /// Error from parsing an unsupported or malformed pattern.
    #[derive(Debug, Clone)]
    pub struct Error(String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for Error {}

    #[derive(Debug, Clone)]
    struct Atom {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Strategy generating strings matching a character-class regex.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let reps = rng.random_range(atom.min..=atom.max);
                for _ in 0..reps {
                    let idx = rng.random_range(0..atom.choices.len());
                    out.push(atom.choices[idx]);
                }
            }
            out
        }
    }

    /// Builds a strategy of strings matching `pattern`.
    ///
    /// Supported syntax: literal characters, `\`-escapes, character
    /// classes `[a-z0-9_.:-]` (ranges plus literals, trailing `-`
    /// literal), and `{n}` / `{m,n}` quantifiers. This covers every
    /// pattern used in the workspace's tests; anything else errors.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1)?;
                    i = next;
                    set
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .ok_or_else(|| Error("dangling escape".into()))?;
                    i += 2;
                    vec![c]
                }
                c @ ('(' | ')' | '|' | '*' | '+' | '?' | '.' | '^' | '$') => {
                    return Err(Error(format!(
                        "unsupported regex construct `{c}` in {pattern:?}"
                    )));
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if chars.get(i) == Some(&'{') {
                let (min, max, next) = parse_quantifier(&chars, i + 1)?;
                i = next;
                (min, max)
            } else {
                (1, 1)
            };
            if choices.is_empty() {
                return Err(Error(format!("empty character class in {pattern:?}")));
            }
            atoms.push(Atom { choices, min, max });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }

    /// Parses `[...]` starting after the `[`; returns (choices, next index).
    fn parse_class(chars: &[char], mut i: usize) -> Result<(Vec<char>, usize), Error> {
        let mut set = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = chars[i];
            if c == '\\' {
                let esc = *chars
                    .get(i + 1)
                    .ok_or_else(|| Error("dangling escape in class".into()))?;
                set.push(esc);
                i += 2;
            } else if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']')
            {
                let hi = chars[i + 2];
                if (c as u32) > (hi as u32) {
                    return Err(Error(format!("inverted range {c}-{hi}")));
                }
                for code in (c as u32)..=(hi as u32) {
                    set.push(char::from_u32(code).ok_or_else(|| Error("bad range".into()))?);
                }
                i += 3;
            } else {
                set.push(c);
                i += 1;
            }
        }
        if i >= chars.len() {
            return Err(Error("unterminated character class".into()));
        }
        Ok((set, i + 1)) // skip ']'
    }

    /// Parses `{n}` / `{m,n}` starting after the `{`; returns (min, max, next).
    fn parse_quantifier(chars: &[char], mut i: usize) -> Result<(usize, usize, usize), Error> {
        let mut first = String::new();
        let mut second = None;
        while i < chars.len() && chars[i] != '}' {
            match chars[i] {
                ',' => second = Some(String::new()),
                d if d.is_ascii_digit() => match &mut second {
                    Some(s) => s.push(d),
                    None => first.push(d),
                },
                other => return Err(Error(format!("bad quantifier char `{other}`"))),
            }
            i += 1;
        }
        if i >= chars.len() {
            return Err(Error("unterminated quantifier".into()));
        }
        let min: usize = first.parse().map_err(|_| Error("bad quantifier".into()))?;
        let max = match second {
            Some(s) => s.parse().map_err(|_| Error("bad quantifier".into()))?,
            None => min,
        };
        if max < min {
            return Err(Error("quantifier max below min".into()));
        }
        Ok((min, max, i + 1)) // skip '}'
    }
}

/// Derives the per-test base seed from the test path so different tests
/// draw different sequences, deterministically across runs.
#[doc(hidden)]
pub fn __seed_for(test_path: &str, case: u32) -> u64 {
    // FNV-1a over the path, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_path.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

#[doc(hidden)]
pub fn __rng_for(test_path: &str, case: u32) -> test_runner::TestRng {
    StdRng::seed_from_u64(__seed_for(test_path, case))
}

// Re-export so the macros can name rand paths through this crate.
#[doc(hidden)]
pub use rand as __rand;

/// Everything tests normally import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions that run a property over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        // Callers write `#[test]` themselves (upstream idiom); it arrives
        // through `$meta`, so emitting another here would register every
        // property twice with the libtest harness.
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let strategies = ($($strat,)+);
            let test_path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::__rng_for(test_path, case);
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed at case {} (seed {:#x}): {}",
                            test_path,
                            case,
                            $crate::__seed_for(test_path, case),
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Weighted (`w => strat`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn regex_strategies_match_their_class() {
        let mut rng = crate::__rng_for("self-test", 0);
        let strat = crate::string::string_regex("[a-z]{0,6}").unwrap();
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let printable = crate::string::string_regex("[ -~]{0,40}").unwrap();
        for _ in 0..200 {
            let s = printable.generate(&mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
        let ident = crate::string::string_regex("[a-zA-Z0-9_.:-]{1,24}").unwrap();
        for _ in 0..200 {
            let s = ident.generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_.:-".contains(c)));
        }
    }

    #[test]
    fn unsupported_regex_errors() {
        assert!(crate::string::string_regex("(a|b)*").is_err());
        assert!(crate::string::string_regex("[a-z").is_err());
    }

    #[test]
    fn union_respects_weights_roughly() {
        let strat = prop_oneof![
            9 => (0u64..1).prop_map(|_| true),
            1 => (0u64..1).prop_map(|_| false),
        ];
        let mut rng = crate::__rng_for("weights", 0);
        let trues = (0..10_000).filter(|_| strat.generate(&mut rng)).count();
        assert!((8_000..10_000).contains(&trues), "trues {trues}");
    }

    #[test]
    fn cases_are_deterministic() {
        let strat = crate::collection::vec(crate::arbitrary::any::<u64>(), 0..50);
        let a = strat.generate(&mut crate::__rng_for("det", 3));
        let b = strat.generate(&mut crate::__rng_for("det", 3));
        assert_eq!(a, b);
        let c = strat.generate(&mut crate::__rng_for("det", 4));
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(
            xs in crate::collection::vec(0u64..100, 1..20),
            flag in any::<bool>(),
        ) {
            prop_assert!(xs.len() < 20);
            prop_assert_eq!(xs.iter().copied().max().is_some(), true);
            let _ = flag;
        }
    }
}

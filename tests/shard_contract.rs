//! Property tests of the sharding contract both platforms advertise
//! (`shards=N` SutOption, N ∈ 1..=8):
//!
//! * **Routing purity**: the shard an event lands on is a pure function
//!   of its entity key — vertex events by vertex id, edge events by the
//!   edge's *source* — identical across calls, bounded by the shard
//!   count, and *identical between the two platforms* (both use the same
//!   Fibonacci hash), which is what lets the differential harness compare
//!   their behavior shard-for-shard.
//! * **Marker broadcast**: every marker reaches every shard exactly once
//!   — the store counts arrivals per shard slot, the engine logs one
//!   marker processing per worker — and in stream order per shard.
//! * **Per-partition order**: the subsequence of the input stream owned
//!   by shard `s` is exactly the sequence shard `s` processes, in input
//!   order (the global sequence numbers in each shard's log are the
//!   stream positions of precisely its own events, strictly increasing).

use std::time::Duration;

use graphtides::engine::{owner, route_target, EngineConfig, TideGraph};
use graphtides::metrics::MetricsHub;
use graphtides::prelude::*;
use graphtides::store::{shard_for, shard_for_key, ShardedStore, StoreConfig, Transaction};
use proptest::prelude::*;

/// A mixed event from two raw bytes: vertex ops on id `a`, edge ops on
/// `a → b` (self-loops shifted). Ids stay in a small range so streams
/// exercise every shard and collide on entities.
fn event_from(a: u8, b: u8) -> GraphEvent {
    let (src, dst) = (a as u64 % 32, b as u64 % 32);
    match b % 3 {
        0 => GraphEvent::AddVertex {
            id: VertexId(src),
            state: State::empty(),
        },
        1 => GraphEvent::AddEdge {
            id: EdgeId::from((src, (dst + 1) % 33)),
            state: State::empty(),
        },
        _ => GraphEvent::UpdateVertex {
            id: VertexId(src),
            state: State::empty(),
        },
    }
}

fn fast_config(shards: usize) -> StoreConfig {
    StoreConfig {
        shards,
        timestamper_cost_per_tx: Duration::ZERO,
        shard_cost_per_event: Duration::ZERO,
        queue_capacity: 64,
        supervised: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Routing purity, for every shard count the contract covers: pure in
    // the entity key, in range, shards=1 degenerates to a single shard,
    // and both platforms hash identically.
    #[test]
    fn routing_is_a_pure_function_of_the_entity_key(
        raw in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..80),
        shards in 1usize..=8,
    ) {
        for &(a, b) in &raw {
            let event = event_from(a, b);
            let s1 = shard_for(&event, shards as u64);
            // Pure: same event, same answer.
            prop_assert_eq!(s1, shard_for(&event, shards as u64));
            // In range, and degenerate at one shard.
            prop_assert!(s1 < shards as u64);
            prop_assert_eq!(shard_for(&event, 1), 0);
            // Keyed by the entity: vertex events by the vertex id, edge
            // events by the source vertex id.
            let key = route_target(&event).0;
            prop_assert_eq!(s1, shard_for_key(key, shards as u64));
            // Cross-platform agreement: the engine's owner() places the
            // same event on the same worker index.
            prop_assert_eq!(owner(route_target(&event), shards) as u64, s1);
        }
    }

    // The store side of broadcast + per-partition order, at every shard
    // count: markers reach all shards exactly once, and each shard's log
    // is exactly its own subsequence of the input, in input order.
    #[test]
    fn store_shards_see_their_subsequence_in_order_and_every_marker(
        raw in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..120),
        shards in 1usize..=8,
        markers in 1usize..4,
    ) {
        let events: Vec<GraphEvent> = raw.iter().map(|&(a, b)| event_from(a, b)).collect();
        let hub = MetricsHub::new();
        let store = ShardedStore::start(fast_config(shards), &hub);
        let client = store.client();
        // Interleave markers at deterministic positions.
        let marker_every = events.len().div_ceil(markers);
        for (i, event) in events.iter().enumerate() {
            client.submit(Transaction::single(event.clone())).unwrap();
            if (i + 1) % marker_every == 0 {
                client.marker(&format!("m{}", (i + 1) / marker_every - 1));
            }
        }
        prop_assert!(store.quiesce(Duration::from_secs(30)));
        let sent_markers: Vec<String> =
            (0..events.len() / marker_every).map(|i| format!("m{i}")).collect();
        let stats = store.shutdown();

        prop_assert_eq!(stats.store.events, events.len() as u64);
        prop_assert_eq!(stats.marker_skips, 0);
        // Broadcast: every marker hit every shard slot exactly once, and
        // per shard the markers appear in stream order.
        for slot in 0..shards {
            let seen: Vec<&str> = stats
                .shard_markers
                .iter()
                .filter(|(_, s)| *s == slot)
                .map(|(name, _)| name.as_str())
                .collect();
            prop_assert_eq!(seen.len(), sent_markers.len());
            for (got, want) in seen.iter().zip(&sent_markers) {
                prop_assert_eq!(*got, want.as_str());
            }
        }
        // Per-partition order: shard s processed exactly the input
        // positions it owns, in input order.
        for (slot, seqs) in stats.per_shard_seqs.iter().enumerate() {
            let owned: Vec<u64> = events
                .iter()
                .enumerate()
                .filter(|(_, e)| shard_for(e, shards as u64) == slot as u64)
                .map(|(i, _)| i as u64)
                .collect();
            prop_assert_eq!(seqs, &owned, "shard {} log != owned subsequence", slot);
        }
    }

    // The engine side: every marker is processed exactly once per worker,
    // in stream order, for every worker count the contract covers.
    #[test]
    fn engine_workers_each_process_every_marker_once_in_order(
        raw in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..80),
        workers in 1usize..=8,
        markers in 1usize..4,
    ) {
        let events: Vec<GraphEvent> = raw.iter().map(|&(a, b)| event_from(a, b)).collect();
        let hub = MetricsHub::new();
        let engine = TideGraph::start(
            EngineConfig {
                workers,
                ..Default::default()
            },
            &hub,
        );
        let marker_every = events.len().div_ceil(markers);
        for (i, event) in events.iter().enumerate() {
            engine.ingest(event.clone());
            if (i + 1) % marker_every == 0 {
                let reached = engine
                    .ingest_marker_barrier(&format!("m{}", (i + 1) / marker_every - 1),
                                            Duration::from_secs(30));
                prop_assert_eq!(reached, workers);
            }
        }
        prop_assert!(engine.quiesce(Duration::from_secs(30)));
        let sent_markers: Vec<String> =
            (0..events.len() / marker_every).map(|i| format!("m{i}")).collect();
        let log = engine.marker_log();
        engine.shutdown();

        prop_assert_eq!(log.len(), sent_markers.len() * workers);
        for w in 0..workers {
            let seen: Vec<&str> = log
                .iter()
                .filter(|(_, worker, _)| *worker == w)
                .map(|(name, _, _)| name.as_str())
                .collect();
            prop_assert_eq!(seen.len(), sent_markers.len());
            for (got, want) in seen.iter().zip(&sent_markers) {
                prop_assert_eq!(*got, want.as_str());
            }
        }
    }
}

//! Contract tests of the netem network-fault layer through the full
//! stack (load clients → fault proxy → SUT listener → platform):
//!
//! * **Determinism witness**: three runs of the same `(schedule, seed)`
//!   produce byte-identical fault journals (`signature()` equality),
//!   regardless of wall-clock noise — the property every robustness
//!   comparison in the paper's methodology rests on.
//! * **Partition mid-stream**: a timed blackhole over a subset of
//!   connections heals and the run still delivers every event and every
//!   marker in order, on *both* built-in platforms.
//! * **Kill one of four**: an abrupt RST against one client degrades
//!   typed — one failed client, a `connections_lost` count, and
//!   degradation records in the merged log — instead of hanging the
//!   marker barrier or failing the run, on both platforms.

use graphtides::harness::{
    run_load_sut_experiment, EvaluationLevel, LoadPlan, LoadSutRunOutcome, LoopModel, NetemPlan,
    NetemSchedule, RunPlan, SutOptions,
};
use graphtides::prelude::*;

/// `n` vertex events with a marker at the midpoint and one at the end.
fn marked_stream(n: u64) -> GraphStream {
    let mut stream = GraphStream::new();
    for i in 0..n {
        stream.push(StreamEntry::graph(GraphEvent::AddVertex {
            id: VertexId(i),
            state: State::empty(),
        }));
        if i == n / 2 {
            stream.push(StreamEntry::marker("mid"));
        }
    }
    stream.push(StreamEntry::marker("end"));
    stream
}

/// Runs `clients` load clients through a netem proxy against `sut` and
/// returns the outcome plus the proxy's fault-journal signature.
fn run_with_netem(
    sut: &str,
    options: &SutOptions,
    spec: &str,
    seed: u64,
    clients: usize,
    events: u64,
    rate: f64,
) -> (LoadSutRunOutcome, Vec<(u64, String)>) {
    let netem = NetemPlan::new(NetemSchedule::parse(spec, seed).unwrap());
    let journal = netem.journal.clone();
    let mut plan = RunPlan::new(marked_stream(events), 0.0)
        .at_level(EvaluationLevel::Level1)
        .with_load(LoadPlan::single(clients, rate, LoopModel::Open, 42).with_netem(netem));
    plan.sysmon = None;
    let outcome =
        run_load_sut_experiment(plan, &graphtides::builtin_registry(), sut, options).unwrap();
    (outcome, journal.signature())
}

// The acceptance criterion verbatim: three runs with one seed produce
// identical fault journals, through real TCP runs whose wall-clock
// timing differs every time. The journal seq is the *planned* offset and
// unfired events fast-forward at stop, so the witness is independent of
// scheduler noise and run length.
#[test]
fn three_runs_one_seed_produce_identical_fault_journals() {
    const SPEC: &str =
        "partition@150ms,dur=200ms,conns=0-1; delay@100ms,ms=3,jitter=2; kill@400ms,mode=rst,conns=2";
    let signatures: Vec<Vec<(u64, String)>> = (0..3)
        .map(|_| {
            let (_, signature) =
                run_with_netem("tide-store", &SutOptions::new(), SPEC, 11, 4, 1500, 3000.0);
            signature
        })
        .collect();
    // partition + its heal + delay + kill.
    assert_eq!(signatures[0].len(), 4, "{:?}", signatures[0]);
    assert_eq!(signatures[0], signatures[1]);
    assert_eq!(signatures[1], signatures[2]);
}

fn partition_mid_stream_completes_on(sut: &str, options: SutOptions) {
    const EVENTS: u64 = 1200;
    let (outcome, signature) = run_with_netem(
        sut,
        &options,
        "partition@200ms,dur=300ms,conns=0-1",
        5,
        6,
        EVENTS,
        1200.0,
    );
    // Every event rode through the blackhole-and-heal: the partitioned
    // connections' writes buffer in the proxy and drain on heal.
    assert_eq!(outcome.report.get("events"), Some(EVENTS as f64), "{sut}");
    assert!(outcome.load.client_failures.is_empty(), "{sut}");
    assert_eq!(outcome.load.listener.marker_violations, 0, "{sut}");
    let names: Vec<&str> = outcome
        .load
        .listener
        .markers
        .iter()
        .map(|(name, _)| name.as_str())
        .collect();
    assert_eq!(names, ["mid", "end"], "{sut}");
    // The journal witnessed exactly the fault and its heal.
    assert_eq!(signature.len(), 2, "{sut}: {signature:?}");
    assert!(signature[0].1.starts_with("partition("), "{sut}");
    assert!(signature[1].1.starts_with("heal(partition("), "{sut}");
}

#[test]
fn partition_mid_stream_completes_on_tide_store() {
    partition_mid_stream_completes_on("tide-store", SutOptions::new());
}

#[test]
fn partition_mid_stream_completes_on_tide_graph() {
    partition_mid_stream_completes_on("tide-graph", SutOptions::new().set("workers", 3));
}

fn kill_one_of_four_degrades_typed_on(sut: &str, options: SutOptions) {
    let (outcome, signature) = run_with_netem(
        sut,
        &options,
        "kill@250ms,mode=rst,conns=0",
        3,
        4,
        1600,
        3200.0,
    );
    // Exactly one client died to the RST; the run still completed.
    assert_eq!(outcome.load.client_failures.len(), 1, "{sut}");
    assert!(outcome.load.listener.connections_lost >= 1, "{sut}");
    assert_eq!(outcome.load.netem.as_ref().unwrap().kills_rst, 1, "{sut}");
    // The loss is typed into the merged log as degradation records, not
    // swallowed: the listener's excusal plus the client's failure.
    let degradations: Vec<&str> = outcome
        .log
        .records()
        .iter()
        .filter(|r| r.source == "load" && r.metric == "degradation")
        .filter_map(|r| match &r.value {
            graphtides::metrics::MetricValue::Text(text) => Some(text.as_str()),
            _ => None,
        })
        .collect();
    assert!(!degradations.is_empty(), "{sut}");
    // The proxy kills its 0th accepted connection, which is whichever
    // client dialed first — assert the failure is recorded, not its index.
    assert!(
        degradations.iter().any(|d| d.contains("failed")),
        "{sut}: {degradations:?}"
    );
    // The surviving quorum still carried both markers through, in order.
    let names: Vec<&str> = outcome
        .load
        .listener
        .markers
        .iter()
        .map(|(name, _)| name.as_str())
        .collect();
    assert_eq!(names, ["mid", "end"], "{sut}");
    assert_eq!(outcome.load.listener.marker_violations, 0, "{sut}");
    assert_eq!(signature.len(), 1, "{sut}: {signature:?}");
    assert!(signature[0].1.starts_with("kill(mode=rst"), "{sut}");
}

#[test]
fn kill_one_of_four_degrades_typed_on_tide_store() {
    kill_one_of_four_degrades_typed_on("tide-store", SutOptions::new());
}

#[test]
fn kill_one_of_four_degrades_typed_on_tide_graph() {
    kill_one_of_four_degrades_typed_on("tide-graph", SutOptions::new().set("workers", 3));
}

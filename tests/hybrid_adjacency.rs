//! Property tests for [`HybridAdjacency`] — the type-switching per-vertex
//! storage every layer of the stack now sits on — against a naive
//! `BTreeMap` reference model, plus the end-to-end check that matters
//! most: the serial-vs-sharded differential oracle stays bit-identical
//! over the hybrid build with hub-heavy streams.
//!
//! The op generator is deliberately biased to hover around the
//! promotion/demotion boundary (`INLINE_CAP` = 8, `DEMOTE_AT` = 4): keys
//! are drawn from a small universe so lists repeatedly cross both
//! thresholds in one run.

use std::collections::BTreeMap;

use graphtides::graph::HybridAdjacency;
use graphtides::harness::run_differential;
use graphtides::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u32),
    Remove(u64),
}

/// Ops over a key universe of `universe` vertex ids: small universes
/// keep the list crossing the inline/hub boundary in both directions.
fn ops(universe: u64, len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0..universe, any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
            2 => (0..universe).prop_map(Op::Remove),
        ],
        0..len,
    )
}

fn apply_both(ops: &[Op]) -> (HybridAdjacency<u32>, BTreeMap<VertexId, u32>) {
    let mut hybrid = HybridAdjacency::new();
    let mut reference = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let expected = reference.insert(VertexId(k), v);
                prop_assert_eq_unwrapped(hybrid.insert(VertexId(k), v), expected);
            }
            Op::Remove(k) => {
                let expected = reference.remove(&VertexId(k));
                prop_assert_eq_unwrapped(hybrid.remove(VertexId(k)), expected);
            }
        }
    }
    (hybrid, reference)
}

// proptest's prop_assert_eq! only works inside the macro body; the
// helper keeps `apply_both` usable from plain #[test] fns too.
fn prop_assert_eq_unwrapped<T: PartialEq + std::fmt::Debug>(got: T, want: T) {
    assert_eq!(got, want);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Around the promotion boundary: a 12-key universe guarantees lists
    /// that grow through INLINE_CAP and shrink back through DEMOTE_AT.
    #[test]
    fn matches_btreemap_reference_at_the_boundary(ops in ops(12, 120)) {
        let (hybrid, reference) = apply_both(&ops);
        prop_assert_eq!(hybrid.len(), reference.len());
        // Iteration: ascending id order, identical contents.
        let got: Vec<(VertexId, u32)> = hybrid.iter().map(|(k, v)| (k, *v)).collect();
        let want: Vec<(VertexId, u32)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
        // Point lookups agree everywhere in the universe.
        for k in 0..12 {
            prop_assert_eq!(hybrid.get(VertexId(k)), reference.get(&VertexId(k)));
            prop_assert_eq!(hybrid.contains(VertexId(k)), reference.contains_key(&VertexId(k)));
        }
        // Representation invariants: inline lists fit the inline array;
        // hub lists only exist above the demotion threshold.
        if hybrid.is_inline() {
            prop_assert!(hybrid.len() <= HybridAdjacency::<u32>::INLINE_CAP);
        } else {
            prop_assert!(hybrid.len() > HybridAdjacency::<u32>::DEMOTE_AT);
        }
    }

    /// Far above the boundary: hub-only behaviour over a wide universe.
    #[test]
    fn matches_btreemap_reference_for_hubs(ops in ops(400, 300)) {
        let (hybrid, reference) = apply_both(&ops);
        prop_assert_eq!(hybrid.len(), reference.len());
        let got: Vec<(VertexId, u32)> = hybrid.iter().map(|(k, v)| (k, *v)).collect();
        let want: Vec<(VertexId, u32)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// Logical equality is representation-independent: the same contents
    /// reached along different op orders (one path promoted and demoted,
    /// the other stayed inline) compare equal.
    #[test]
    fn equality_ignores_representation_history(raw in proptest::collection::vec(0u64..64, 1..=8)) {
        let keys: std::collections::BTreeSet<u64> = raw.into_iter().collect();
        // Path A: plain inserts — stays inline (<= 8 distinct keys).
        let direct: HybridAdjacency<u32> =
            keys.iter().map(|&k| (VertexId(k), k as u32)).collect();
        prop_assert!(direct.is_inline());

        // Path B: overfill past INLINE_CAP to force promotion, then
        // remove the scaffolding again.
        let mut via_hub = HybridAdjacency::new();
        for extra in 1000..1016 {
            via_hub.insert(VertexId(extra), 0);
        }
        for &k in &keys {
            via_hub.insert(VertexId(k), k as u32);
        }
        for extra in 1000..1016 {
            via_hub.remove(VertexId(extra));
        }

        prop_assert_eq!(&direct, &via_hub);
    }
}

/// A stream that manufactures hubs: `hubs` sources fan out to `fanout`
/// targets (far past `INLINE_CAP`), the rest stay low-degree, and
/// removals drag some hubs back down through the demotion threshold.
fn hub_heavy_stream(hubs: u64, fanout: u64, leaves: u64, markers: usize) -> GraphStream {
    let vertices = hubs + leaves.max(fanout);
    let mut entries: Vec<StreamEntry> = (0..vertices)
        .map(|i| {
            StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(i),
                state: State::empty(),
            })
        })
        .collect();
    for h in 0..hubs {
        for t in 0..fanout {
            let dst = hubs + t;
            if h != dst {
                entries.push(StreamEntry::graph(GraphEvent::AddEdge {
                    id: EdgeId::from((h, dst)),
                    state: State::weight(((h + t) % 9 + 1) as f64),
                }));
            }
        }
    }
    let mut x = 0x5EED_CAFEu64;
    for _ in 0..leaves * 2 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let src = hubs + (x >> 33) % leaves;
        let dst = hubs + (x >> 13) % leaves;
        if src != dst {
            entries.push(StreamEntry::graph(GraphEvent::AddEdge {
                id: EdgeId::from((src, dst)),
                state: State::weight(((x >> 7) % 9 + 1) as f64),
            }));
        }
    }
    // Demote every even hub back through DEMOTE_AT: remove all but 3 of
    // its fan-out edges.
    for h in (0..hubs).step_by(2) {
        for t in 3..fanout {
            entries.push(StreamEntry::graph(GraphEvent::RemoveEdge {
                id: EdgeId::from((h, hubs + t)),
            }));
        }
    }
    let step = entries.len() / (markers + 1);
    for m in (1..=markers).rev() {
        entries.insert(m * step, StreamEntry::marker(format!("window-{m}")));
    }
    entries.into_iter().collect()
}

fn store_options() -> SutOptions {
    SutOptions::new()
        .set("timestamper_cost_us", 0)
        .set("shard_cost_us", 0)
        .set("batch_size", 8)
}

/// The PR's end-to-end acceptance check: with every layer on hybrid
/// storage, the serial (`shards=1`) and sharded (`shards=4`) builds must
/// still digest bit-identically over a stream engineered to exercise
/// promotion *and* demotion inside the run.
#[test]
fn differential_oracle_passes_over_the_hybrid_build() {
    let stream = hub_heavy_stream(8, 24, 60, 3);
    let registry = graphtides::builtin_registry();
    for serial in ["tide-store", "tide-graph"] {
        let sharded = format!("{serial}-sharded");
        let outcome = run_differential(
            &stream,
            400_000.0,
            &registry,
            (serial, &store_options().set("shards", 1)),
            (&sharded, &store_options().set("shards", 4)),
        )
        .unwrap();
        assert!(
            outcome.matches(),
            "{serial}: {}",
            outcome.mismatch.as_deref().unwrap_or_default()
        );
        assert_eq!(outcome.baseline_digest.windows.len(), 3, "{serial}");
        assert!(
            !outcome.baseline_digest.final_adjacency.is_empty(),
            "{serial}"
        );
    }
}

/// What makes hybrid adoption invisible to the oracle: the canonical
/// adjacency dump of a hub-heavy replay is stable across repeated
/// replays — promotion order, demotion timing, and representation never
/// leak into the digested state.
#[test]
fn hybrid_adjacency_dumps_are_replay_stable() {
    let stream = hub_heavy_stream(4, 16, 30, 2);
    let dump = || {
        let mut graph = EvolvingGraph::new();
        for entry in stream.entries() {
            if let StreamEntry::Graph(event) = entry {
                let _ = graph.apply(event);
            }
        }
        let mut adj: Vec<(u64, Vec<(u64, u64)>)> = graph
            .vertices()
            .map(|v| {
                let mut out: Vec<(u64, u64)> = graph
                    .out_edges(v)
                    .map(|(dst, state)| (dst.0, state.as_weight().unwrap_or(1.0).to_bits()))
                    .collect();
                out.sort_unstable();
                (v.0, out)
            })
            .collect();
        adj.sort_unstable_by_key(|(v, _)| *v);
        adj
    };
    let first = dump();
    assert!(!first.is_empty());
    assert_eq!(first, dump());
}

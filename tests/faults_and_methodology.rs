//! Cross-crate tests of the fault-injection path (§3.2) and the
//! statistical methodology (§4.5).

use graphtides::faults::{
    DropFaults, DuplicateFaults, FaultInjector, FaultPipeline, ShuffleWindows,
};
use graphtides::graph::ApplyPolicy;
use graphtides::harness::{compare_metric, repeat_runs};
use graphtides::prelude::*;
use graphtides::workloads::SnbWorkload;

#[test]
fn faulty_streams_survive_a_lenient_consumer_end_to_end() {
    let stream = SnbWorkload {
        persons: 100,
        connections: 500,
        seed: 2,
    }
    .generate();
    let faulty = FaultPipeline::new()
        .then(DuplicateFaults { probability: 0.15 })
        .then(ShuffleWindows { window: 32 })
        .then(DropFaults { probability: 0.15 })
        .inject(stream.clone(), 77);

    // A strict consumer rejects the faulty stream…
    let strict_fails = faulty
        .graph_events()
        .try_fold(EvolvingGraph::new(), |mut g, e| {
            g.apply(e)?;
            Ok::<_, graphtides::graph::ApplyError>(g)
        })
        .is_err();
    assert!(strict_fails, "heavy fault injection must break strictness");

    // …while a lenient one ingests it and stays internally consistent.
    let mut lenient = EvolvingGraph::new();
    for event in faulty.graph_events() {
        let _ = lenient.apply_with(event, ApplyPolicy::Lenient);
    }
    lenient.check_invariants().unwrap();
    // Drops cannot create vertices out of thin air.
    let reference = EvolvingGraph::from_stream(&stream).unwrap();
    assert!(lenient.vertex_count() <= reference.vertex_count());
}

#[test]
fn fault_injection_is_reproducible_for_reruns() {
    // Popper-style re-execution: the same spec (stream + seed) must give
    // the same faulty stream, byte for byte.
    let stream = SnbWorkload {
        persons: 50,
        connections: 200,
        seed: 3,
    }
    .generate();
    let make = || {
        FaultPipeline::new()
            .then(DropFaults { probability: 0.3 })
            .then(DuplicateFaults { probability: 0.3 })
            .inject(stream.clone(), 123)
    };
    assert_eq!(make().to_csv_string(), make().to_csv_string());
}

#[test]
fn ci95_comparison_separates_configurations() {
    // Two replayer configurations measured 30× each: 50k events/s vs 10k
    // events/s on the same stream. The CI95 comparison must call the
    // faster one significantly faster; same-vs-same must not.
    let stream: GraphStream = (0..300u64)
        .map(|i| {
            StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(i),
                state: State::empty(),
            })
        })
        .collect();

    let measure = |rate: f64| {
        let stream = stream.clone();
        move |_rep: u32| -> f64 {
            let replayer = Replayer::new(ReplayerConfig {
                target_rate: rate,
                ..Default::default()
            });
            let mut sink = CollectSink::new();
            let report = replayer.replay_stream(&stream, &mut sink).unwrap();
            report.achieved_rate
        }
    };

    let fast = repeat_runs(30, measure(50_000.0));
    let slow = repeat_runs(30, measure(10_000.0));
    assert!(fast.meets_n30 && slow.meets_n30);
    let verdict = compare_metric(&fast, &slow).expect("both sides have intervals");
    assert_eq!(
        verdict.verdict,
        graphtides::analysis::summary::Comparison::AGreater
    );
    assert!(verdict.meets_n30);
}

#[test]
fn stream_file_roundtrip_through_replayer() {
    // Write a workload to disk, stream it through the decoupled file
    // reader into the replayer, and verify nothing is lost or reordered.
    let stream = SnbWorkload {
        persons: 80,
        connections: 400,
        seed: 9,
    }
    .generate();
    let dir = std::env::temp_dir().join("gt-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snb.csv");
    stream.write_to_file(&path).unwrap();

    let (rx, reader) = graphtides::replayer::spawn_file_reader(&path, 1024);
    let replayer = Replayer::new(ReplayerConfig {
        target_rate: 1e6,
        ..Default::default()
    });
    let mut sink = CollectSink::new();
    let report = replayer.replay(rx.iter(), &mut sink).unwrap();
    assert_eq!(reader.join().unwrap().unwrap(), stream.len() as u64);
    assert_eq!(report.graph_events as usize, stream.stats().graph_events);
    assert_eq!(sink.entries, stream.entries());
    std::fs::remove_file(path).ok();
}

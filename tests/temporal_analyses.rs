//! Cross-crate tests of the temporal-analysis pipeline: property
//! timelines over evolving workloads, densification trends, and the
//! centrality/SCC additions on realistic streams.

use graphtides::algorithms::online::PropertyTimeline;
use graphtides::algorithms::OnlineComputation;
use graphtides::analysis::{densification_exponent, linear_trend};
use graphtides::generator::{ForestFireModel, StreamGenerator};
use graphtides::prelude::*;

#[test]
fn forest_fire_stream_densifies() {
    let mut generator = StreamGenerator::new(ForestFireModel::densifying(), 11);
    generator
        .bootstrap(&graphtides::graph::builders::ring(5))
        .unwrap();
    let result = generator.evolve(6_000);

    let mut timeline = PropertyTimeline::new(500);
    for event in result.stream.graph_events() {
        timeline.apply_event(event);
    }
    timeline.sample_now();

    // Densification law: edges grow superlinearly in vertices.
    let exponent = densification_exponent(&timeline.growth_samples()).expect("enough samples");
    assert!(exponent > 1.02, "densification exponent {exponent}");

    // Mean degree rises over time (another way to see the same law).
    let degree_series = timeline.series(|p| p.mean_degree);
    let trend = linear_trend(&degree_series).expect("enough samples");
    assert!(trend.is_growing(0.5), "mean-degree trend {trend:?}");
}

#[test]
fn snb_stream_growth_is_near_linear() {
    // The SNB workload interleaves persons and connections at a fixed
    // ratio, so edges grow ~linearly in vertices (exponent ≈ 1), clearly
    // below the forest-fire regime — the trend analysis distinguishes
    // evolution models.
    let stream = graphtides::workloads::SnbWorkload {
        persons: 400,
        connections: 4_000,
        seed: 6,
    }
    .generate();
    let mut timeline = PropertyTimeline::new(400);
    for event in stream.graph_events() {
        timeline.apply_event(event);
    }
    timeline.sample_now();
    let exponent = densification_exponent(&timeline.growth_samples()).unwrap();
    // The head of the stream is edge-starved (few persons), so growth
    // looks superlinear early; overall it must stay well under the
    // forest-fire regime's slope on the same sample grid.
    assert!(exponent < 3.0, "snb exponent {exponent}");
}

#[test]
fn scc_and_centrality_on_social_graph() {
    use graphtides::algorithms::centrality::{approx_betweenness, betweenness_centrality};
    use graphtides::algorithms::scc::strongly_connected_components;

    let stream = graphtides::workloads::SnbWorkload {
        persons: 150,
        connections: 1_200,
        seed: 44,
    }
    .generate();
    let graph = EvolvingGraph::from_stream(&stream).unwrap();
    let csr = CsrSnapshot::from_graph(&graph);

    let scc = strongly_connected_components(&csr);
    let wcc = graphtides::algorithms::components::weakly_connected_components(&csr);
    assert!(scc.count >= wcc.count);
    assert!(scc.count <= csr.vertex_count());

    // The pivot approximation must correlate with the exact ranking.
    let exact = betweenness_centrality(&csr);
    let approx = approx_betweenness(&csr, 40);
    let pearson = graphtides::analysis::pearson(&exact, &approx).expect("variance exists");
    assert!(pearson > 0.8, "betweenness correlation {pearson}");
}

#[test]
fn timeline_tracks_churn_composition() {
    // The DDoS workload has a known composition: updates happen in every
    // phase, topology changes dominate.
    let stream = graphtides::workloads::DdosWorkload::default().generate();
    let mut timeline = PropertyTimeline::new(200);
    for event in stream.graph_events() {
        timeline.apply_event(event);
    }
    timeline.sample_now();
    let last = timeline.points().last().unwrap();
    assert_eq!(
        last.topology_events + last.update_events,
        stream.stats().graph_events as u64
    );
    assert!(last.update_events > 0);
    assert!(last.topology_events > last.update_events);
}

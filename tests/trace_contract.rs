//! Property tests of the Level-2 tracing contract at the SUT boundary:
//! attaching a tracer at *any* sampling rate is observation, not
//! interference. For any random interleaving of graph events and markers
//! delivered in arbitrary chunk sizes,
//!
//! * the batched-sink marker contract holds exactly as it does untraced
//!   (markers flush all prior events, nothing lost or duplicated);
//! * the platform's stream metrics are unchanged — a traced run commits
//!   the same events, transactions, and vertices as an untraced run of
//!   the same stream;
//! * the only new output is the trace itself: `connector_to_apply_micros`
//!   latency records for exactly the 1-in-N sampled events, with no
//!   stamps dropped at these stream sizes.

use std::sync::Arc;
use std::time::Duration;

use graphtides::metrics::{Clock, MetricsHub, WallClock};
use graphtides::prelude::*;
use graphtides::replayer::EventSink;
use graphtides::store::{BatchingConnector, StoreConfig, TideStore};
use graphtides::trace::{Stage, TraceConfig, Tracer};
use proptest::prelude::*;

/// One random stream: `ops[i] < 2` becomes a marker, anything else a
/// fresh `AddVertex`. Returns the shared entries and the graph-event
/// count.
fn build_stream(ops: &[u8]) -> (Vec<SharedEntry>, u64) {
    let mut entries = Vec::with_capacity(ops.len());
    let mut events = 0u64;
    let mut markers = 0u64;
    for &op in ops {
        if op < 2 {
            entries.push(SharedEntry::new(StreamEntry::marker(format!("m{markers}"))));
            markers += 1;
        } else {
            entries.push(SharedEntry::new(StreamEntry::graph(
                GraphEvent::AddVertex {
                    id: VertexId(events),
                    state: State::empty(),
                },
            )));
            events += 1;
        }
    }
    (entries, events)
}

fn zero_cost_store(hub: &MetricsHub) -> TideStore {
    TideStore::start(
        StoreConfig {
            shards: 2,
            timestamper_cost_per_tx: Duration::ZERO,
            shard_cost_per_event: Duration::ZERO,
            queue_capacity: 64,
            supervised: false,
        },
        hub,
    )
}

/// Streams `entries` into a fresh store in `chunk`-sized batches,
/// checking the marker-flush invariant after every batch, and returns
/// `(committed_events, committed_transactions, vertices)`.
fn run_store(
    entries: &[SharedEntry],
    chunk: usize,
    batch_size: usize,
    tracer: Option<&Tracer>,
) -> Result<(u64, u64, u64), TestCaseError> {
    let hub = MetricsHub::new();
    let store = zero_cost_store(&hub);
    let mut connector = BatchingConnector::new(store.client(), batch_size);
    if let Some(tracer) = tracer {
        store.tracer_cell().install(tracer);
        connector = connector.with_trace_probe(tracer.probe(Stage::ConnectorRecv));
    }

    let mut sent_events = 0u64;
    let mut last_marker_events = 0u64;
    for chunk_entries in entries.chunks(chunk) {
        connector.send_batch(chunk_entries).unwrap();
        for entry in chunk_entries {
            match entry.as_ref() {
                StreamEntry::Graph(_) => sent_events += 1,
                StreamEntry::Marker(_) => last_marker_events = sent_events,
                StreamEntry::Control(_) => {}
            }
        }
        // Conservation and the marker contract, exactly as untraced.
        prop_assert_eq!(
            connector.submitted_events() + connector.pending_len() as u64,
            sent_events
        );
        prop_assert!(connector.submitted_events() >= last_marker_events);
    }
    connector.close().unwrap();
    prop_assert_eq!(connector.pending_len(), 0);
    drop(connector);
    let stats = store.shutdown();
    Ok((
        stats.events,
        stats.transactions,
        stats.graph.vertex_count() as u64,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tracing_preserves_the_stream_contract_at_any_sampling_rate(
        ops in proptest::collection::vec(0u8..10, 10..160),
        chunk in 1usize..17,
        batch_size in 1usize..8,
        sample_every in 1u64..129,
    ) {
        let (entries, total_events) = build_stream(&ops);

        // Baseline: the same stream, untraced.
        let untraced = run_store(&entries, chunk, batch_size, None)?;

        // Traced at 1-in-`sample_every`.
        let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
        let trace_hub = MetricsHub::new();
        let tracer = Tracer::new(
            TraceConfig::default().sampling(sample_every),
            clock,
            &trace_hub,
        );
        let traced = run_store(&entries, chunk, batch_size, Some(&tracer))?;
        let trace = tracer.stop();

        // Observation, not interference: identical stream metrics.
        prop_assert_eq!(traced, untraced);
        prop_assert_eq!(traced.0, total_events);

        // The trace adds exactly the sampled latency pairs and nothing
        // else: without a replayer there is no emit stamp, so the only
        // matchable stage pair is connector receive → engine apply.
        prop_assert!(trace
            .records
            .iter()
            .all(|r| r.source == "trace" && r.metric == "connector_to_apply_micros"));
        let expected_sampled = total_events.div_ceil(sample_every);
        prop_assert_eq!(trace.matched, expected_sampled);
        prop_assert_eq!(trace.records.len() as u64, expected_sampled);
        prop_assert_eq!(trace.dropped, 0);
        prop_assert_eq!(trace.evicted, 0);
    }
}

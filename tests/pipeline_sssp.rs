//! End-to-end pipeline for the engine's second vertex program: online
//! SSSP over the evolving road-traffic workload, including the staleness
//! hazards the KickStarter line of work exists to repair.

use std::sync::Arc;
use std::time::Duration;

use graphtides::algorithms::shortest::bellman_ford;
use graphtides::engine::{start_sssp, EngineConfig, EngineConnector};
use graphtides::prelude::*;
use graphtides::workloads::TrafficWorkload;

#[test]
fn online_sssp_tracks_batch_oracle_on_growing_graph() {
    // Additions and weight decreases only: the monotone regime where the
    // online program is exact after quiescence. Take just the bootstrap
    // (grid + initial weights) of the traffic workload.
    let workload = TrafficWorkload {
        rows: 6,
        cols: 6,
        ticks: 0,
        ..Default::default()
    };
    let stream = workload.generate();

    let hub = MetricsHub::new();
    let engine = Arc::new(start_sssp(EngineConfig::default(), &hub, VertexId(0)));
    let mut connector = EngineConnector::new(Arc::clone(&engine));
    let replayer = Replayer::new(ReplayerConfig {
        target_rate: 1e6,
        ..Default::default()
    });
    replayer.replay_stream(&stream, &mut connector).unwrap();
    assert!(engine.quiesce(Duration::from_secs(30)));
    drop(connector);
    let engine = Arc::try_unwrap(engine).ok().expect("sole owner");
    let stats = engine.shutdown();

    let graph = EvolvingGraph::from_stream(&stream).unwrap();
    let csr = CsrSnapshot::from_graph(&graph);
    let oracle = bellman_ford(&csr, csr.index_of(VertexId(0)).unwrap()).unwrap();
    for idx in csr.indices() {
        let id = csr.id_of(idx);
        let online = stats.ranks[&id];
        let exact = oracle.dist[idx as usize];
        assert!(
            (online - exact).abs() < 1e-9,
            "junction {id}: online {online}, exact {exact}"
        );
    }
}

#[test]
fn churn_accumulates_stale_hazards() {
    use graphtides::engine::{DistancePartition, Partition};

    // Full traffic run: rush-hour weight *increases* and closures are the
    // non-monotone operations online relaxation cannot repair. The
    // program must count every such hazard so an analyst knows when a
    // restart is due.
    let workload = TrafficWorkload {
        rows: 5,
        cols: 5,
        ticks: 40,
        updates_per_tick: 20,
        closure_prob: 0.3,
        ..Default::default()
    };
    let stream = workload.generate();
    let mut partition = DistancePartition::new(VertexId(0));
    let mut dirty = Vec::new();
    let mut out = Vec::new();
    for event in stream.graph_events() {
        partition.apply_event_deferred(event, &mut dirty);
        partition.flush_dirty(&dirty, &mut out);
        dirty.clear();
        out.clear();
    }
    assert!(
        partition.stale_hazards() > 0,
        "rush hour must raise weights somewhere"
    );
}

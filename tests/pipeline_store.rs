//! End-to-end pipeline: workload generation → rate-controlled replay →
//! transactional store (the Weaver-class SUT) → metrics → verification.

use std::time::{Duration, Instant};

use graphtides::generator::{MixModel, StreamGenerator};
use graphtides::graph::builders::BarabasiAlbert;
use graphtides::prelude::*;
use graphtides::store::{BatchingConnector, StoreConfig, TideStore};

fn table3_small(seed: u64, evolution: usize) -> GraphStream {
    let bootstrap = BarabasiAlbert {
        n: 300,
        m0: 10,
        m: 3,
        seed,
    }
    .generate();
    let mut generator = StreamGenerator::new(MixModel::table3(), seed);
    generator.bootstrap(&bootstrap).unwrap();
    let evolution = generator.evolve(evolution);
    let mut stream = bootstrap;
    stream.extend(evolution.stream);
    stream
}

fn zero_cost_store(hub: &MetricsHub) -> TideStore {
    TideStore::start(
        StoreConfig {
            shards: 3,
            timestamper_cost_per_tx: Duration::ZERO,
            shard_cost_per_event: Duration::ZERO,
            queue_capacity: 128,
            supervised: false,
        },
        hub,
    )
}

#[test]
fn store_reconstructs_exactly_the_streamed_graph() {
    let stream = table3_small(11, 3_000);
    let reference = EvolvingGraph::from_stream(&stream).unwrap();

    let hub = MetricsHub::new();
    let store = zero_cost_store(&hub);
    let mut connector = BatchingConnector::new(store.client(), 10);
    let replayer = Replayer::new(ReplayerConfig {
        target_rate: 1e6,
        ..Default::default()
    });
    let report = replayer.replay_stream(&stream, &mut connector).unwrap();
    connector.flush().unwrap();
    let stats = store.shutdown();

    assert_eq!(report.graph_events, stats.events);
    assert_eq!(stats.graph.vertex_count(), reference.vertex_count());
    assert_eq!(stats.graph.edge_count(), reference.edge_count());
    stats.graph.check_invariants().unwrap();
    // Full state equality, not only counts.
    let got: Vec<_> = stats.graph.edges().map(|(e, s)| (e, s.clone())).collect();
    let want: Vec<_> = reference.edges().map(|(e, s)| (e, s.clone())).collect();
    assert_eq!(got, want);
}

#[test]
fn store_backpressure_caps_achieved_rate() {
    // A 1 ms/tx timestamper caps the store near 1k tx/s; a replayer
    // offering 50k events/s with 1 event/tx must get backthrottled.
    let stream = table3_small(5, 1_200);
    let hub = MetricsHub::new();
    let store = TideStore::start(
        StoreConfig {
            shards: 2,
            timestamper_cost_per_tx: Duration::from_millis(1),
            shard_cost_per_event: Duration::ZERO,
            queue_capacity: 8,
            supervised: false,
        },
        &hub,
    );
    let mut connector = BatchingConnector::new(store.client(), 1);
    let replayer = Replayer::new(ReplayerConfig {
        target_rate: 50_000.0,
        ..Default::default()
    });
    let started = Instant::now();
    let report = replayer.replay_stream(&stream, &mut connector).unwrap();
    let elapsed = started.elapsed().as_secs_f64();
    store.shutdown();

    let achieved = report.graph_events as f64 / elapsed;
    assert!(
        achieved < 2_500.0,
        "backpressure failed: achieved {achieved} events/s"
    );
}

#[test]
fn batching_multiplies_the_ceiling_end_to_end() {
    let run = |batch: usize| -> f64 {
        let stream = table3_small(6, 1_500);
        let hub = MetricsHub::new();
        let store = TideStore::start(
            StoreConfig {
                shards: 2,
                timestamper_cost_per_tx: Duration::from_micros(500),
                shard_cost_per_event: Duration::ZERO,
                queue_capacity: 8,
                supervised: false,
            },
            &hub,
        );
        let mut connector = BatchingConnector::new(store.client(), batch);
        let replayer = Replayer::new(ReplayerConfig {
            target_rate: 1e6,
            ..Default::default()
        });
        let started = Instant::now();
        let report = replayer.replay_stream(&stream, &mut connector).unwrap();
        connector.flush().unwrap();
        let elapsed = started.elapsed().as_secs_f64();
        store.shutdown();
        report.graph_events as f64 / elapsed
    };
    let single = run(1);
    let batched = run(10);
    assert!(
        batched > single * 3.0,
        "batch=10 gave {batched}, batch=1 gave {single}"
    );
}

#[test]
fn level0_process_sampler_observes_the_run() {
    use graphtides::metrics::{ProcessSampler, WallClock};
    use std::sync::Arc;

    // Level-0 evaluation (§4): black-box process observation only — the
    // in-process analogue of pidstat. Skipped gracefully off-Linux.
    let stream = table3_small(3, 2_000);
    let hub = MetricsHub::new();
    let store = zero_cost_store(&hub);
    let mut connector = BatchingConnector::new(store.client(), 5);

    let clock = Arc::new(WallClock::start());
    let plan = graphtides::harness::RunPlan {
        sampling_interval: Duration::from_millis(20),
        ..graphtides::harness::RunPlan::new(stream, 20_000.0)
    }
    .with_logger(Box::new(ProcessSampler::new(clock, "store-process")));

    let outcome = graphtides::harness::run_experiment(plan, &mut connector).unwrap();
    store.shutdown();

    let rss = outcome.log.series("store-process", "rss_bytes");
    if rss.is_empty() {
        eprintln!("skipping Level-0 assertions: /proc/self not readable");
        return;
    }
    assert!(rss.iter().all(|&(_, v)| v > 0.0));
    // CPU% appears from the second sample onward.
    let cpu = outcome.log.series("store-process", "cpu_percent");
    assert!(!cpu.is_empty());
    assert!(cpu.iter().all(|&(_, v)| v >= 0.0));
}

#[test]
fn harness_collects_store_metrics_during_run() {
    use graphtides::metrics::{HubSampler, WallClock};
    use std::sync::Arc;

    let stream = table3_small(9, 2_000);
    let hub = MetricsHub::new();
    let store = zero_cost_store(&hub);
    let mut connector = BatchingConnector::new(store.client(), 5);

    let clock = Arc::new(WallClock::start());
    let plan = graphtides::harness::RunPlan {
        sampling_interval: Duration::from_millis(20),
        ..graphtides::harness::RunPlan::new(stream, 30_000.0)
    }
    .with_logger(Box::new(HubSampler::new(hub.clone(), clock, "store")));

    let outcome = graphtides::harness::run_experiment(plan, &mut connector).unwrap();
    store.shutdown();

    // The log holds a growing store.events series.
    let series = outcome.log.series("store", "store.events");
    assert!(series.len() >= 2, "sampled {} points", series.len());
    let last = series.last().unwrap().1;
    assert!(last > 0.0);
    // Monotone counter.
    assert!(series.windows(2).all(|w| w[0].1 <= w[1].1));
}

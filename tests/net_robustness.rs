//! Robustness of the ingest framing layer against hostile bytes:
//!
//! * **Parser totality** (property): `parse_line_ref` never panics on
//!   arbitrary input — malformed lines are `Err`, blank/comment lines
//!   are `Ok(None)`, and nothing else escapes.
//! * **Listener framing** (property): arbitrary garbage — including
//!   invalid UTF-8 — interleaved with valid events and markers on a live
//!   TCP connection is *counted* (`parse_errors`) and never fatal: every
//!   valid event still applies and the markers around the garbage still
//!   deliver in stream order.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use graphtides::core::format::entry_to_line;
use graphtides::load::{ListenerConfig, LoadListener};
use graphtides::metrics::{Clock, WallClock};
use graphtides::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Totality over arbitrary unicode: the parser classifies every line
    // without panicking.
    #[test]
    fn parse_line_ref_never_panics_on_any_string(
        codes in proptest::collection::vec(any::<u32>(), 0..128),
    ) {
        let line: String = codes
            .iter()
            .filter_map(|&c| char::from_u32(c % 0x0011_0000))
            .collect();
        let _ = graphtides::core::parse_line_ref(&line);
    }

    // Totality over arbitrary bytes as they arrive off a socket: the
    // listener lossily decodes or rejects, so feed the parser both the
    // lossy decoding and the raw-latin1 reading of random bytes.
    #[test]
    fn parse_line_ref_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let lossy = String::from_utf8_lossy(&bytes);
        let _ = graphtides::core::parse_line_ref(&lossy);
        let latin1: String = bytes.iter().map(|&b| b as char).collect();
        let _ = graphtides::core::parse_line_ref(&latin1);
    }
}

/// One garbage line that can never parse: forced out of the
/// blank/comment classes and newline-free so it frames as exactly one
/// line on the wire.
fn poison_line(mut bytes: Vec<u8>) -> Vec<u8> {
    for b in &mut bytes {
        if *b == b'\n' || *b == b'\r' {
            *b = b'.';
        }
    }
    let mut line = b"zz".to_vec();
    line.extend(bytes);
    line.push(b'\n');
    line
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The listener survives garbage framing end to end: a single
    // connection sends valid-event / garbage / marker sandwiches and the
    // run completes with the garbage counted and the markers in order.
    #[test]
    fn listener_counts_garbage_and_keeps_marker_order(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..4),
    ) {
        let listener = LoadListener::bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
        let config = ListenerConfig {
            read_timeout: Duration::from_millis(10),
            stall_warn: Duration::from_millis(200),
            stall_limit: Duration::from_secs(2),
            barrier_deadline: Duration::from_secs(2),
        };
        let handle = listener
            .start_with_config(
                1,
                Box::new(|| Ok(Box::new(CollectSink::new()) as Box<dyn EventSink + Send>)),
                clock,
                config,
            )
            .unwrap();

        let mut stream = TcpStream::connect(addr).unwrap();
        let vertex = |i: u64| {
            let mut line = entry_to_line(&StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(i),
                state: State::empty(),
            }));
            line.push('\n');
            line
        };
        let marker = |name: &str| {
            let mut line = entry_to_line(&StreamEntry::marker(name));
            line.push('\n');
            line
        };

        // valid, garbage…, marker, garbage…, valid, marker.
        stream.write_all(vertex(1).as_bytes()).unwrap();
        for chunk in &chunks {
            stream.write_all(&poison_line(chunk.clone())).unwrap();
        }
        stream.write_all(marker("first").as_bytes()).unwrap();
        for chunk in &chunks {
            stream.write_all(&poison_line(chunk.clone())).unwrap();
        }
        stream.write_all(vertex(2).as_bytes()).unwrap();
        stream.write_all(marker("second").as_bytes()).unwrap();
        drop(stream);

        let report = handle.join().unwrap();
        // Both valid events applied; every garbage line was counted as a
        // parse error (a poison line is never blank or a comment), and
        // nothing was fatal.
        prop_assert_eq!(report.graph_events, 2);
        prop_assert_eq!(report.parse_errors, 2 * chunks.len() as u64);
        prop_assert_eq!(report.connections_lost, 0);
        // The markers around the garbage delivered exactly once, in order.
        let names: Vec<&str> = report.markers.iter().map(|(n, _)| n.as_str()).collect();
        prop_assert_eq!(names, vec!["first", "second"]);
        prop_assert_eq!(report.marker_violations, 0);
    }
}

//! End-to-end pipeline: social workload → replay → vertex-centric online
//! engine (the Chronograph-class SUT) → accuracy analysis against the
//! batch reference.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use graphtides::algorithms::pagerank::{pagerank, PageRankConfig};
use graphtides::analysis::top_k_overlap;
use graphtides::engine::{EngineConfig, EngineConnector, TideGraph};
use graphtides::prelude::*;
use graphtides::workloads::SnbWorkload;

fn exact_ranks(stream: &GraphStream) -> BTreeMap<VertexId, f64> {
    let graph = EvolvingGraph::from_stream(stream).unwrap();
    let csr = CsrSnapshot::from_graph(&graph);
    let result = pagerank(&csr, &PageRankConfig::default());
    csr.indices()
        .map(|i| (csr.id_of(i), result.ranks[i as usize]))
        .collect()
}

#[test]
fn engine_converges_toward_batch_reference() {
    let stream = SnbWorkload {
        persons: 120,
        connections: 1_200,
        seed: 21,
    }
    .generate();

    let hub = MetricsHub::new();
    // The default epsilon (1e-3) balances accuracy against push-cascade
    // volume; see DESIGN.md ("Queue discipline" and epsilon ablation).
    let engine = Arc::new(TideGraph::start(EngineConfig::default(), &hub));
    let mut connector = EngineConnector::new(Arc::clone(&engine));
    let replayer = Replayer::new(ReplayerConfig {
        target_rate: 1e6,
        ..Default::default()
    });
    replayer.replay_stream(&stream, &mut connector).unwrap();
    assert!(engine.quiesce(Duration::from_secs(60)));
    drop(connector);
    let engine = Arc::try_unwrap(engine).ok().expect("sole owner");
    let stats = engine.shutdown();

    assert_eq!(stats.events, 1_320);
    let online = TideGraph::normalized(&stats.ranks);
    let exact = exact_ranks(&stream);
    assert_eq!(online.len(), exact.len());
    let overlap = top_k_overlap(&online, &exact, 10);
    assert!(overlap >= 0.4, "top-10 overlap only {overlap}");
}

#[test]
fn backlog_grows_under_burst_and_fully_drains() {
    let stream = SnbWorkload {
        persons: 200,
        connections: 2_000,
        seed: 4,
    }
    .generate();

    let hub = MetricsHub::new();
    // A coarse push threshold keeps the share volume test-sized while the
    // event cost alone already saturates two workers under the burst.
    let engine = Arc::new(TideGraph::start(
        EngineConfig {
            workers: 2,
            rank: graphtides::engine::RankParams {
                epsilon: 1e-2,
                ..Default::default()
            },
            event_cost: Duration::from_micros(200),
            share_cost: Duration::from_micros(5),
            ..Default::default()
        },
        &hub,
    ));
    let mut connector = EngineConnector::new(Arc::clone(&engine));
    // Unthrottled burst: workers cannot keep up.
    let replayer = Replayer::new(ReplayerConfig {
        target_rate: 1e6,
        ..Default::default()
    });
    replayer.replay_stream(&stream, &mut connector).unwrap();
    let backlog = engine.total_queue_len();
    assert!(backlog > 50, "expected a backlog, got {backlog}");

    assert!(engine.quiesce(Duration::from_secs(120)));
    assert_eq!(engine.total_queue_len(), 0);
    drop(connector);
    let engine = Arc::try_unwrap(engine).ok().expect("sole owner");
    let stats = engine.shutdown();
    assert_eq!(stats.events, 2_200);
}

#[test]
fn marker_correlation_measures_ingestion_latency() {
    use graphtides::generator::StreamComposer;

    // Watermark pattern (§4.5): a marker every 500 events; the replayer
    // timestamps each one, and the engine-side events counter confirms
    // everything before the marker arrived.
    let base = SnbWorkload {
        persons: 100,
        connections: 900,
        seed: 8,
    }
    .generate();
    let stream = StreamComposer::new()
        .segment_with_markers(base, 500, "wm")
        .build();

    let hub = MetricsHub::new();
    let engine = Arc::new(TideGraph::start(EngineConfig::default(), &hub));
    let mut connector = EngineConnector::new(Arc::clone(&engine));
    let plan = graphtides::harness::RunPlan::new(stream, 100_000.0);
    let outcome = graphtides::harness::run_experiment(plan, &mut connector).unwrap();

    // Two watermarks expected (1000 events / 500).
    assert_eq!(outcome.report.markers.len(), 2);
    let names: Vec<&str> = outcome
        .report
        .markers
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    assert_eq!(names, ["wm-0", "wm-1"]);
    // Marker records land in the merged result log too.
    assert!(outcome.log.marker("wm-1").is_some());

    engine.quiesce(Duration::from_secs(60));
    // The engine side processed each watermark on every worker, after
    // everything queued ahead of it.
    let processed = engine.marker_log();
    assert_eq!(processed.len(), 2 * engine.workers());
    let wm0_done = processed
        .iter()
        .filter(|(n, _, _)| n == "wm-0")
        .map(|(_, _, t)| *t)
        .max()
        .unwrap();
    let wm1_done = processed
        .iter()
        .filter(|(n, _, _)| n == "wm-1")
        .map(|(_, _, t)| *t)
        .max()
        .unwrap();
    assert!(wm0_done <= wm1_done, "watermark order preserved");
    drop(connector);
    Arc::try_unwrap(engine).ok().expect("sole owner").shutdown();
}

//! Offline (snapshot-based) computation pipeline: the paper's §4.4.2
//! "offline computations are executed on graph snapshots that are
//! reconstructed from the event stream" — epoch snapshots feeding batch
//! reference computations while the stream keeps flowing.

use graphtides::algorithms::pagerank::{pagerank, PageRankConfig};
use graphtides::graph::SnapshotStore;
use graphtides::prelude::*;
use graphtides::workloads::SnbWorkload;

#[test]
fn epoch_snapshots_track_the_stream() {
    let stream = SnbWorkload {
        persons: 150,
        connections: 1_350,
        seed: 12,
    }
    .generate();
    let mut store = SnapshotStore::new(300, 16);
    for event in stream.graph_events() {
        store.ingest(event);
    }
    assert_eq!(store.epochs().len(), 5);
    // The live graph equals a strict reconstruction.
    let reference = EvolvingGraph::from_stream(&stream).unwrap();
    assert_eq!(store.live().vertex_count(), reference.vertex_count());
    assert_eq!(store.live().edge_count(), reference.edge_count());
    // Epoch growth is monotone for an add-only stream.
    let sizes: Vec<usize> = store
        .epochs()
        .iter()
        .map(|e| e.snapshot.vertex_count())
        .collect();
    assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "{sizes:?}");
}

#[test]
fn per_epoch_offline_pagerank_stabilizes() {
    // As the social graph grows, the top-ranked vertex computed *offline
    // on each snapshot* should stabilize once the hub structure forms —
    // exactly the kind of periodic batch computation Kineograph runs.
    let stream = SnbWorkload {
        persons: 120,
        connections: 2_400,
        seed: 31,
    }
    .generate();
    let mut store = SnapshotStore::new(400, 16);
    let mut top_per_epoch = Vec::new();
    for event in stream.graph_events() {
        if store.ingest(event).is_some() {
            let epoch = store.latest().unwrap();
            let result = pagerank(&epoch.snapshot, &PageRankConfig::default());
            let top = result.top_k(1)[0];
            top_per_epoch.push(epoch.snapshot.id_of(top));
        }
    }
    assert!(top_per_epoch.len() >= 5);
    // The last epochs agree on the most influential vertex.
    let last = top_per_epoch.last().unwrap();
    let stable_tail = top_per_epoch
        .iter()
        .rev()
        .take(3)
        .filter(|v| *v == last)
        .count();
    assert!(
        stable_tail >= 2,
        "top vertex never stabilized: {top_per_epoch:?}"
    );
}

#[test]
fn snapshot_property_series_feeds_trend_analysis() {
    let stream = SnbWorkload {
        persons: 200,
        connections: 1_800,
        seed: 3,
    }
    .generate();
    let mut store = SnapshotStore::new(250, 32);
    for event in stream.graph_events() {
        store.ingest(event);
    }
    let edges = store.property_series(|s| s.edge_count() as f64);
    let trend = graphtides::analysis::linear_trend(&edges).unwrap();
    assert!(trend.is_growing(0.8), "edge growth trend {trend:?}");
}

//! The serial-vs-sharded differential oracle: the same seeded stream
//! replayed through a `shards=1` serial baseline and a `shards=N`
//! candidate must leave **bit-identical** observable state — the final
//! adjacency, every per-marker-window adjacency, and the reference
//! computations (WCC, SSSP, PageRank) derived from them — on *both*
//! built-in platforms.
//!
//! The oracle is exercised three ways:
//!
//! * **clean** — the plain A/B over a mixed add/remove stream with
//!   marker-cut windows;
//! * **under a-priori stream faults** — the same `drop`+`dup` derived
//!   stream (gt-faults, seeded) fed to both sides: an unreliable stream
//!   weakens *what* the platforms see, never whether sharding preserves
//!   it;
//! * **under live chaos** — a single shard is crashed mid-run and
//!   supervised-restarted on the *candidate only*; its retained-event
//!   replay must converge back to the serial baseline's state, while the
//!   degradation counters (excluded from the diff by design) record the
//!   incident.
//!
//! Engine chaos caveat: markers are not retained, so a worker restarted
//! after a marker misses that marker's snapshot — the engine chaos case
//! therefore streams without markers and compares final state, which is
//! exactly the convergence claim.

use graphtides::faults::{parse_pipeline, FaultInjector};
use graphtides::harness::{
    run_differential, run_sut_experiment_with_timeout, window_computations, ChaosPlan,
    EvaluationLevel, FaultSchedule, RunPlan, StateDigest, DEFAULT_QUIESCE_TIMEOUT,
};
use graphtides::prelude::*;

const RATE: f64 = 400_000.0;

/// A deterministic mixed stream: vertices, cross-linking weighted edges,
/// a sprinkle of removals, and `markers` evenly spaced marker cuts.
fn seeded_stream(vertices: u64, edges: u64, markers: usize) -> GraphStream {
    let mut entries: Vec<StreamEntry> = Vec::new();
    for i in 0..vertices {
        entries.push(StreamEntry::graph(GraphEvent::AddVertex {
            id: VertexId(i),
            state: State::empty(),
        }));
    }
    let mut x = 0x9E37_79B9u64;
    for _ in 0..edges {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let src = (x >> 33) % vertices;
        let dst = (x >> 13) % vertices;
        if src != dst {
            entries.push(StreamEntry::graph(GraphEvent::AddEdge {
                id: EdgeId::from((src, dst)),
                state: State::weight(((x >> 7) % 9 + 1) as f64),
            }));
        }
    }
    for i in (0..vertices / 10).map(|i| i * 7 % vertices) {
        entries.push(StreamEntry::graph(GraphEvent::RemoveVertex {
            id: VertexId(i),
        }));
    }
    // Space the markers evenly through the whole stream.
    let step = entries.len() / (markers + 1);
    for m in (1..=markers).rev() {
        entries.insert(m * step, StreamEntry::marker(format!("window-{m}")));
    }
    entries.into_iter().collect()
}

fn store_options() -> SutOptions {
    SutOptions::new()
        .set("timestamper_cost_us", 0)
        .set("shard_cost_us", 0)
        .set("batch_size", 8)
}

/// Runs the clean A/B for one platform pair and asserts bit-identity.
fn assert_clean_differential(stream: &GraphStream, serial: &str, base_options: SutOptions) {
    let registry = graphtides::builtin_registry();
    let sharded = format!("{serial}-sharded");
    let outcome = run_differential(
        stream,
        RATE,
        &registry,
        (serial, &base_options.clone().set("shards", 1)),
        (&sharded, &base_options.set("shards", 4)),
    )
    .unwrap();
    assert!(
        outcome.matches(),
        "{serial}: {}",
        outcome.mismatch.as_deref().unwrap_or_default()
    );
    // The oracle actually looked at something: every marker window was
    // digested and computed on both sides.
    assert_eq!(outcome.baseline_digest.windows.len(), 3, "{serial}");
    assert_eq!(outcome.candidate_digest.windows.len(), 3, "{serial}");
    assert_eq!(outcome.baseline_computations.len(), 4, "{serial}");
    assert!(
        !outcome.baseline_digest.final_adjacency.is_empty(),
        "{serial}"
    );
}

#[test]
fn store_sharded_matches_serial_on_a_clean_stream() {
    assert_clean_differential(&seeded_stream(300, 900, 3), "tide-store", store_options());
}

#[test]
fn engine_sharded_matches_serial_on_a_clean_stream() {
    assert_clean_differential(&seeded_stream(300, 900, 3), "tide-graph", SutOptions::new());
}

#[test]
fn differential_holds_under_a_priori_drop_and_dup_faults() {
    // Derive ONE unreliable stream (drop 5%, duplicate 2%, seeded) and
    // feed the identical derived stream to both sides of both platforms:
    // the weakened stream changes what state is built, not whether the
    // sharded build matches the serial one.
    let pipeline = parse_pipeline("drop:0.05,dup:0.02").unwrap();
    let faulty = pipeline.inject(seeded_stream(300, 900, 3), 11);
    assert_clean_differential(&faulty, "tide-store", store_options());
    assert_clean_differential(&faulty, "tide-graph", SutOptions::new());
}

/// One digest-mode run, optionally with a chaos schedule on the run.
fn digest_run(
    stream: &GraphStream,
    sut: &str,
    options: SutOptions,
    chaos: Option<&str>,
) -> (StateDigest, graphtides::harness::SutReport) {
    let registry = graphtides::builtin_registry();
    let mut plan = RunPlan::new(stream.clone(), RATE).at_level(EvaluationLevel::Level0);
    plan.sysmon = None;
    if let Some(spec) = chaos {
        plan = plan.with_chaos(ChaosPlan::new(FaultSchedule::parse(spec, 5).unwrap()));
    }
    let outcome = run_sut_experiment_with_timeout(
        plan,
        &registry,
        sut,
        &options.set("digest", 1),
        DEFAULT_QUIESCE_TIMEOUT,
    )
    .unwrap();
    assert!(outcome.quiesced, "{sut} failed to quiesce");
    (
        outcome.digest.expect("digest=1 returns a digest"),
        outcome.report,
    )
}

#[test]
fn store_differential_holds_under_single_shard_crash_and_restart() {
    let stream = seeded_stream(300, 900, 3);
    let (serial, _) = digest_run(
        &stream,
        "tide-store",
        store_options().set("shards", 1),
        None,
    );
    // Candidate: kill shard 1 at event 300, supervised restart 400 events
    // later; the replayed shard log carries the original global sequence
    // numbers, so the merged state — and every marker cut recorded at the
    // router — must still equal the undisturbed serial run.
    let (sharded, report) = digest_run(
        &stream,
        "tide-store-sharded",
        store_options().set("shards", 4).set("supervised", 1),
        Some("crash@300,worker=1,restart=400"),
    );
    assert_eq!(serial.diff(&sharded), None);
    assert_eq!(window_computations(&serial), window_computations(&sharded));
    // The incident is on the record — as degradation, not as divergence.
    assert_eq!(report.get("crashes"), Some(1.0));
    assert_eq!(report.get("restarts"), Some(1.0));
    assert_eq!(sharded.degradation("crashes"), Some(1));
    assert_eq!(sharded.degradation("restarts"), Some(1));
}

#[test]
fn engine_final_state_converges_after_single_worker_crash_and_restart() {
    // No markers: the engine does not retain markers for replay, so a
    // restarted worker would legitimately miss pre-crash snapshots. The
    // convergence claim is about final state.
    let stream = seeded_stream(300, 900, 0);
    let (serial, _) = digest_run(
        &stream,
        "tide-graph",
        SutOptions::new().set("shards", 1),
        None,
    );
    let (sharded, report) = digest_run(
        &stream,
        "tide-graph-sharded",
        SutOptions::new().set("shards", 4).set("supervised", 1),
        Some("crash@300,worker=1,restart=400"),
    );
    assert_eq!(serial.diff(&sharded), None);
    assert_eq!(window_computations(&serial), window_computations(&sharded));
    assert_eq!(report.get("crashes"), Some(1.0));
    assert_eq!(report.get("restarts"), Some(1.0));
}

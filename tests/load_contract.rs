//! Contract tests of the multi-client load layer (`gt-load`):
//!
//! * **Coordinated-omission guard** (property): an open-loop client's
//!   emitted arrival schedule is bit-identical whether the sink acks
//!   promptly or stalls — the schedule is a function of the plan, never
//!   of the SUT.
//! * **Marker total order**: a stream fanned across many connections
//!   still delivers every marker exactly once, in stream order, after
//!   all events that preceded it — verified end to end on *both*
//!   built-in platforms through the harness load runner.
//! * **Open-loop stall visibility** (the acceptance demo): under an
//!   injected 200 ms sink stall the open-loop client reports its offered
//!   schedule unchanged and a p999 sojourn spike; the closed-loop client
//!   absorbs the stall into a collapsed offered rate instead.

use std::io;
use std::sync::Arc;
use std::time::Duration;

use graphtides::analysis::TailQuantiles;
use graphtides::harness::{
    run_load_sut_experiment, EvaluationLevel, LoadPlan, LoopModel, RunPlan, SutOptions,
};
use graphtides::load::{run_client, ClientConfig};
use graphtides::metrics::{Clock, WallClock};
use graphtides::prelude::*;
use proptest::prelude::*;

/// A sink that acks instantly, optionally stalling once for `stall` at
/// graph event number `stall_at` (counted across send/send_batch).
struct MaybeStallingSink {
    seen: u64,
    stall_at: Option<u64>,
    stall: Duration,
}

impl MaybeStallingSink {
    fn prompt() -> Self {
        MaybeStallingSink {
            seen: 0,
            stall_at: None,
            stall: Duration::ZERO,
        }
    }

    fn stalling(stall_at: u64, stall: Duration) -> Self {
        MaybeStallingSink {
            seen: 0,
            stall_at: Some(stall_at),
            stall,
        }
    }

    fn tick(&mut self) {
        if Some(self.seen) == self.stall_at {
            std::thread::sleep(self.stall);
        }
        self.seen += 1;
    }
}

impl EventSink for MaybeStallingSink {
    fn send(&mut self, entry: &StreamEntry) -> io::Result<()> {
        if matches!(entry, StreamEntry::Graph(_)) {
            self.tick();
        }
        Ok(())
    }

    fn send_batch(&mut self, batch: &[SharedEntry]) -> io::Result<()> {
        for entry in batch {
            self.send(entry)?;
        }
        Ok(())
    }
}

fn vertices(n: u64) -> Vec<StreamEntry> {
    (0..n)
        .map(|i| {
            StreamEntry::graph(GraphEvent::AddVertex {
                id: VertexId(i),
                state: State::empty(),
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The coordinated-omission guard: a stalling SUT must not be able to
    // edit the offered arrival schedule out of the record.
    #[test]
    fn open_loop_schedule_is_sink_independent(
        rate in 2_000.0f64..20_000.0,
        events in 20u64..150,
        seed in 0u64..1_000,
        stall_at in 0u64..20,
    ) {
        let entries = vertices(events);
        let config = ClientConfig::new("main", LoopModel::Open, rate, seed);
        let clock: Arc<dyn Clock> = Arc::new(WallClock::start());

        let prompt = run_client(
            &entries,
            &config,
            Box::new(MaybeStallingSink::prompt()),
            Arc::clone(&clock),
        ).unwrap();
        let stalled = run_client(
            &entries,
            &config,
            Box::new(MaybeStallingSink::stalling(stall_at.min(events - 1), Duration::from_millis(30))),
            Arc::clone(&clock),
        ).unwrap();

        // Bit-identical emitted schedules, equal to the pure plan schedule.
        prop_assert_eq!(&prompt.schedule_micros, &stalled.schedule_micros);
        let pure = config.schedule(entries.len());
        prop_assert_eq!(prompt.schedule_micros.as_slice(), pure.offsets_micros());
        prop_assert_eq!(prompt.offered, events);
        prop_assert_eq!(stalled.offered, events);
    }
}

/// A stream with two interleaved markers, sized so every one of many
/// substreams carries events on both sides of each marker.
fn marked_stream(n: u64) -> GraphStream {
    let mut stream = GraphStream::new();
    for i in 0..n {
        stream.push(StreamEntry::graph(GraphEvent::AddVertex {
            id: VertexId(i),
            state: State::empty(),
        }));
        if i == n / 3 {
            stream.push(StreamEntry::marker("phase-one"));
        }
    }
    stream.push(StreamEntry::marker("stream-end"));
    stream
}

fn marker_order_holds_on(sut: &str, options: SutOptions) {
    let mut plan = RunPlan::new(marked_stream(900), 0.0)
        .at_level(EvaluationLevel::Level1)
        .with_load(LoadPlan::single(9, 300_000.0, LoopModel::Open, 42));
    plan.sysmon = None;
    let outcome =
        run_load_sut_experiment(plan, &graphtides::builtin_registry(), sut, &options).unwrap();

    // Every event arrived exactly once across the 9 connections...
    assert_eq!(outcome.report.get("events"), Some(900.0), "{sut}");
    // ...and both markers crossed the multi-connection boundary exactly
    // once, in stream order, with no ordering violation on any reader.
    assert_eq!(outcome.load.listener.marker_violations, 0, "{sut}");
    let names: Vec<&str> = outcome
        .load
        .listener
        .markers
        .iter()
        .map(|(name, _)| name.as_str())
        .collect();
    assert_eq!(names, ["phase-one", "stream-end"], "{sut}");
    assert!(outcome.log.marker("phase-one").is_some(), "{sut}");
    assert!(outcome.log.marker("stream-end").is_some(), "{sut}");
}

#[test]
fn markers_stay_totally_ordered_across_connections_on_tide_store() {
    marker_order_holds_on(
        "tide-store",
        SutOptions::new()
            .set("timestamper_cost_us", 0)
            .set("shard_cost_us", 0)
            .set("batch_size", 16),
    );
}

#[test]
fn markers_stay_totally_ordered_across_connections_on_tide_graph() {
    marker_order_holds_on("tide-graph", SutOptions::new().set("workers", 3));
}

// The sharded variants honour the same contract at shards=4: the marker
// barrier broadcasts behind every connection's flushed events, so the
// listener's total order survives both hash-partitioned fabrics.
#[test]
fn markers_stay_totally_ordered_across_connections_on_sharded_store() {
    marker_order_holds_on(
        "tide-store-sharded",
        SutOptions::new()
            .set("shards", 4)
            .set("timestamper_cost_us", 0)
            .set("shard_cost_us", 0)
            .set("batch_size", 16),
    );
}

#[test]
fn markers_stay_totally_ordered_across_connections_on_sharded_graph() {
    marker_order_holds_on("tide-graph-sharded", SutOptions::new().set("shards", 4));
}

// The acceptance demo, client-level: a 200 ms stall is *charged to the
// SUT* by the open-loop client (offered unchanged, p999 sojourn spike)
// and *erased* by the closed-loop client (offered collapses, sojourn
// stays flat) — the two halves of the coordinated-omission story.
#[test]
fn open_loop_charges_a_200ms_stall_where_closed_loop_absorbs_it() {
    const EVENTS: u64 = 400;
    const RATE: f64 = 2_000.0;
    let entries = vertices(EVENTS);
    let clock: Arc<dyn Clock> = Arc::new(WallClock::start());
    let stall = Duration::from_millis(200);

    let open = run_client(
        &entries,
        &ClientConfig::new("main", LoopModel::Open, RATE, 7),
        Box::new(MaybeStallingSink::stalling(EVENTS / 2, stall)),
        Arc::clone(&clock),
    )
    .unwrap();
    let closed = run_client(
        &entries,
        &ClientConfig::new("main", LoopModel::Closed, RATE, 7),
        Box::new(MaybeStallingSink::stalling(EVENTS / 2, stall)),
        Arc::clone(&clock),
    )
    .unwrap();

    // Open loop: the offered schedule is untouched by the stall...
    assert_eq!(open.offered, EVENTS);
    assert_eq!(
        open.schedule_micros.as_slice(),
        ClientConfig::new("main", LoopModel::Open, RATE, 7)
            .schedule(entries.len())
            .offsets_micros()
    );
    // ...and the stall surfaces as a tail-latency spike: every event that
    // was scheduled to arrive during the 200 ms stall is charged its full
    // queueing delay, so roughly half the samples sit above 80 ms.
    let open_sojourns: Vec<f64> = open.sojourn.iter().map(|&(_, s)| s as f64).collect();
    let open_tail = TailQuantiles::of(&open_sojourns).unwrap();
    assert!(
        open_tail.max >= 150_000.0,
        "open-loop max sojourn {} us must expose the 200 ms stall",
        open_tail.max
    );
    assert!(
        open_tail.p95 >= 80_000.0,
        "open-loop p95 {} us must charge the backlog its queueing delay",
        open_tail.p95
    );
    let open_hit = open_sojourns.iter().filter(|&&s| s >= 50_000.0).count();
    assert!(
        open_hit >= 50,
        "open loop charged only {open_hit} events for the stall"
    );

    // Closed loop: each send is timed after the previous ack, so only the
    // one stalled write measures the stall — every event queued behind it
    // is silently re-scheduled and its wait erased from the latency
    // record. The stall survives only as a collapsed offered rate; this
    // is the coordinated-omission bias the open loop exists to avoid.
    let closed_sojourns: Vec<f64> = closed.sojourn.iter().map(|&(_, s)| s as f64).collect();
    let closed_tail = TailQuantiles::of(&closed_sojourns).unwrap();
    let closed_hit = closed_sojourns.iter().filter(|&&s| s >= 50_000.0).count();
    assert!(
        closed_hit <= 3,
        "closed loop should hide the stall from all but the stalled write, saw {closed_hit}"
    );
    assert!(
        closed_tail.p95 < 50_000.0,
        "closed-loop p95 {} us should not see the stall",
        closed_tail.p95
    );
    assert!(
        closed.offered_rate() < open.offered_rate(),
        "closed-loop offered rate {} must collapse below open-loop {}",
        closed.offered_rate(),
        open.offered_rate()
    );

    // Measured numbers quoted in EXPERIMENTS.md; run with `--nocapture`.
    println!(
        "# 200 ms stall at event {}/{EVENTS}, target {RATE:.0} e/s",
        EVENTS / 2
    );
    println!("loop     offered[e/s]   p50[us]   p95[us]  p999[us]   max[us]  >=50ms",);
    for (name, report, tail, hit) in [
        ("open", &open, &open_tail, open_hit),
        ("closed", &closed, &closed_tail, closed_hit),
    ] {
        println!(
            "{name:<8} {:>12.0} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>7}",
            report.offered_rate(),
            tail.p50,
            tail.p95,
            tail.p999,
            tail.max,
            hit
        );
    }
}

//! Property tests of the batched sink contract at the SUT boundary
//! (§4.5's marker semantics under batching): for any random interleaving
//! of graph events and markers, delivered through [`EventSink::send_batch`]
//! in arbitrary chunk sizes,
//!
//! * **tide-store**: a marker flushes every graph event streamed before
//!   it into a committed transaction — nothing streamed before a marker
//!   may still sit in the connector when the marker has passed — and no
//!   event is lost or duplicated end to end;
//! * **tide-graph**: markers are observable *after* the events that
//!   preceded them — each worker processes every marker exactly once, in
//!   stream order, behind its FIFO mailbox;
//! * **tide-store-sharded**: the same flush/conservation contract holds
//!   through the sharded frontend at `shards=4` — and additionally every
//!   marker cut equals the number of events sequenced before it, and
//!   every marker is broadcast to every shard exactly once.

use std::time::Duration;

use graphtides::engine::sut::SUT_NAME as GRAPH_SUT;
use graphtides::engine::TideGraphSut;
use graphtides::prelude::*;
use graphtides::replayer::EventSink;
use graphtides::store::BatchingConnector;
use graphtides::store::{ShardedStore, StoreConfig, TideStore};
use proptest::prelude::*;

/// One random stream: `ops[i] < 2` becomes a marker, anything else a
/// fresh `AddVertex`. Returns the shared entries plus the positions of
/// markers (counted in graph events seen before each).
fn build_stream(ops: &[u8]) -> (Vec<SharedEntry>, Vec<u64>, u64) {
    let mut entries = Vec::with_capacity(ops.len());
    let mut events_before_marker = Vec::new();
    let mut events = 0u64;
    let mut markers = 0u64;
    for &op in ops {
        if op < 2 {
            entries.push(SharedEntry::new(StreamEntry::marker(format!("m{markers}"))));
            events_before_marker.push(events);
            markers += 1;
        } else {
            entries.push(SharedEntry::new(StreamEntry::graph(
                GraphEvent::AddVertex {
                    id: VertexId(events),
                    state: State::empty(),
                },
            )));
            events += 1;
        }
    }
    (entries, events_before_marker, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn store_markers_flush_all_prior_events(
        ops in proptest::collection::vec(0u8..10, 10..200),
        chunk in 1usize..17,
        batch_size in 1usize..8,
    ) {
        let (entries, _, total_events) = build_stream(&ops);
        let hub = MetricsHub::new();
        let store = TideStore::start(
            StoreConfig {
                shards: 2,
                timestamper_cost_per_tx: Duration::ZERO,
                shard_cost_per_event: Duration::ZERO,
                queue_capacity: 64,
                supervised: false,
            },
            &hub,
        );
        let mut connector = BatchingConnector::new(store.client(), batch_size);

        let mut sent_events = 0u64;
        let mut last_marker_events = 0u64;
        for chunk_entries in entries.chunks(chunk) {
            connector.send_batch(chunk_entries).unwrap();
            for entry in chunk_entries {
                match entry.as_ref() {
                    StreamEntry::Graph(_) => sent_events += 1,
                    StreamEntry::Marker(_) => last_marker_events = sent_events,
                    StreamEntry::Control(_) => {}
                }
            }
            // Conservation: every event sent is either committed or pending.
            prop_assert_eq!(
                connector.submitted_events() + connector.pending_len() as u64,
                sent_events
            );
            // Marker contract: everything streamed before the last marker
            // has left the connector (a full batch may have pushed more).
            prop_assert!(connector.submitted_events() >= last_marker_events);
        }
        connector.close().unwrap();
        prop_assert_eq!(connector.submitted_events(), total_events);
        prop_assert_eq!(connector.pending_len(), 0);

        drop(connector);
        let stats = store.shutdown();
        // End to end: nothing lost, nothing duplicated.
        prop_assert_eq!(stats.events, total_events);
        prop_assert_eq!(stats.graph.vertex_count() as u64, total_events);
    }

    #[test]
    fn sharded_store_markers_flush_and_conserve_at_four_shards(
        ops in proptest::collection::vec(0u8..10, 10..200),
        chunk in 1usize..17,
        batch_size in 1usize..8,
    ) {
        const SHARDS: usize = 4;
        let (entries, events_before_marker, total_events) = build_stream(&ops);
        let hub = MetricsHub::new();
        let store = ShardedStore::start(
            StoreConfig {
                shards: SHARDS,
                timestamper_cost_per_tx: Duration::ZERO,
                shard_cost_per_event: Duration::ZERO,
                queue_capacity: 64,
                supervised: false,
            },
            &hub,
        );
        let mut connector = BatchingConnector::new(store.client(), batch_size);

        let mut sent_events = 0u64;
        let mut last_marker_events = 0u64;
        for chunk_entries in entries.chunks(chunk) {
            connector.send_batch(chunk_entries).unwrap();
            for entry in chunk_entries {
                match entry.as_ref() {
                    StreamEntry::Graph(_) => sent_events += 1,
                    StreamEntry::Marker(_) => last_marker_events = sent_events,
                    StreamEntry::Control(_) => {}
                }
            }
            prop_assert_eq!(
                connector.submitted_events() + connector.pending_len() as u64,
                sent_events
            );
            prop_assert!(connector.submitted_events() >= last_marker_events);
        }
        connector.close().unwrap();
        prop_assert_eq!(connector.submitted_events(), total_events);

        drop(connector);
        prop_assert!(store.quiesce(Duration::from_secs(30)));
        let stats = store.shutdown();
        // Conservation across the sharded fabric: nothing lost, nothing
        // duplicated, and the merged graph is complete.
        prop_assert_eq!(stats.store.events, total_events);
        prop_assert_eq!(stats.store.graph.vertex_count() as u64, total_events);
        // Marker cuts: the flush-before-marker contract means the global
        // sequence at each marker equals the events streamed before it.
        let cuts: Vec<u64> = stats.store.markers.iter().map(|(_, cut)| *cut).collect();
        prop_assert_eq!(cuts, events_before_marker.clone());
        // Broadcast: every marker reached every shard exactly once.
        prop_assert_eq!(stats.marker_skips, 0);
        for i in 0..events_before_marker.len() {
            let name = format!("m{i}");
            let reached = stats
                .shard_markers
                .iter()
                .filter(|(n, _)| *n == name)
                .count();
            prop_assert_eq!(reached, SHARDS, "marker {} reached {} shards", name, reached);
        }
    }

    #[test]
    fn engine_markers_follow_their_events_per_worker(
        ops in proptest::collection::vec(0u8..10, 10..120),
        chunk in 1usize..17,
        workers in 1usize..4,
    ) {
        let (entries, events_before_marker, total_events) = build_stream(&ops);
        let marker_count = events_before_marker.len();

        let registry = graphtides::builtin_registry();
        let options = SutOptions::new().set("workers", workers);
        let mut sut = registry.start(GRAPH_SUT, &options).unwrap();
        let mut connector = sut.connector().unwrap();
        for chunk_entries in entries.chunks(chunk) {
            connector.send_batch(chunk_entries).unwrap();
        }
        connector.close().unwrap();
        prop_assert!(sut.quiesce(Duration::from_secs(30)));

        let engine_sut = sut
            .as_any()
            .downcast_mut::<TideGraphSut>()
            .expect("tide-graph SUT");
        let log = engine_sut.engine().marker_log();
        // Every marker is processed exactly once per worker...
        prop_assert_eq!(log.len(), marker_count * workers);
        // ...and each worker sees the markers in stream order (the FIFO
        // mailbox guarantees they queued behind their preceding events).
        for w in 0..workers {
            let seen: Vec<&str> = log
                .iter()
                .filter(|(_, worker, _)| *worker == w)
                .map(|(name, _, _)| name.as_str())
                .collect();
            let expected: Vec<String> =
                (0..marker_count).map(|i| format!("m{i}")).collect();
            prop_assert_eq!(seen.len(), marker_count);
            for (got, want) in seen.iter().zip(&expected) {
                prop_assert_eq!(*got, want.as_str());
            }
        }

        drop(connector);
        let report = sut.shutdown();
        prop_assert_eq!(report.get("events"), Some(total_events as f64));
    }
}
